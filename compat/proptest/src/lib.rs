//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! This workspace builds with no crates.io access, so external dependencies
//! are replaced by local implementations of exactly the API surface the
//! workspace uses (see `compat/README.md`). Supported here:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `name in strategy` argument bindings;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * range strategies over the integer types and `f64`;
//! * `&str` strategies for the `"[class]{lo,hi}"` regex subset;
//! * tuple strategies, [`collection::vec`], [`sample::select`],
//!   [`bool::ANY`], [`Just`], and [`Strategy::prop_map`].
//!
//! Differences from upstream: cases are generated from a fixed per-test seed
//! (fully reproducible runs), and failing cases are reported but **not
//! shrunk** — failure output prints the generated arguments instead.

use rand::rngs::StdRng;
use rand::Rng;
pub use rand::SeedableRng;

/// Runner configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property within a generated case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Derives the per-test base seed from the test's name. Deterministic across
/// runs so failures are reproducible by re-running the same test binary.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

/// A generator of test inputs. (No shrinking in this stand-in.)
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `&str` strategies: the `"[class]{lo,hi}"` regex subset, where the class
/// lists literal characters, `a-b` ranges, and `\n`/`\t`/`\\` escapes.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = rng.gen_range(lo..=hi);
        (0..len).map(|_| chars[rng.gen_range(0..chars.len())]).collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi). Returns `None` for any
/// pattern outside the supported subset.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, counts) = rest.split_at(close);
    let counts = counts.strip_prefix(']')?.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    let mut chars: Vec<char> = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        let c = if c == '\\' {
            match it.next()? {
                'n' => '\n',
                't' => '\t',
                other => other,
            }
        } else {
            c
        };
        if it.peek() == Some(&'-') {
            let mut ahead = it.clone();
            ahead.next(); // the '-'
            match ahead.next() {
                Some(end) if end != ']' => {
                    it = ahead;
                    for code in (c as u32)..=(end as u32) {
                        chars.push(char::from_u32(code)?);
                    }
                    continue;
                }
                _ => {}
            }
        }
        chars.push(c);
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

/// Size specification for [`collection::vec`]: an exact length or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let SizeRange { lo, hi } = self.size;
            let len = rng.gen_range(lo..=hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy selecting uniformly from a fixed set.
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniformly selects one of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.gen_bool(0.5)
        }
    }
}

/// The `prop` namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with its generated inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng: $crate::TestRng = <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case),
                );
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)*
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed for `{}`: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_pattern_parser() {
        let (chars, lo, hi) = super::parse_class_pattern("[01ab]{0,20}").unwrap();
        assert_eq!(chars, vec!['0', '1', 'a', 'b']);
        assert_eq!((lo, hi), (0, 20));
        let (chars, _, _) = super::parse_class_pattern("[ -~\\n]{0,400}").unwrap();
        assert!(chars.contains(&' ') && chars.contains(&'~') && chars.contains(&'\n'));
        assert_eq!(chars.len(), 96, "95 printable ASCII + newline");
        assert!(super::parse_class_pattern("plain text").is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..40, f in -1.0f64..1.0, b in 1u8..=5) {
            prop_assert!((3..40).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((1..=5).contains(&b));
        }

        #[test]
        fn vec_and_tuple_strategies(mut v in prop::collection::vec((0u32..4, 0.0f64..1.0), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            v.sort_by_key(|a| a.0);
            for (n, f) in v {
                prop_assert!(n < 4);
                prop_assert!((0.0..1.0).contains(&f));
            }
        }

        #[test]
        fn string_strategy_respects_class(s in "[01ab]{0,20}") {
            prop_assert!(s.len() <= 20);
            prop_assert!(s.chars().all(|c| "01ab".contains(c)), "{s:?}");
        }

        #[test]
        fn select_and_bool(choice in prop::sample::select(vec![2, 4, 8]), flag in prop::bool::ANY) {
            prop_assert!([2, 4, 8].contains(&choice));
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn prop_map_applies(doubled in (1u32..50).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!((2..100).contains(&doubled));
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
    }
}
