//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds with no crates.io access, so external dependencies
//! are replaced by local implementations of exactly the API surface the
//! workspace uses (see `compat/README.md`). The benches compile unchanged
//! against this crate: [`black_box`], [`criterion_group!`],
//! [`criterion_main!`], [`Criterion::benchmark_group`], group
//! `throughput`/`sample_size`/`bench_function`/`bench_with_input`/`finish`,
//! [`BenchmarkId::new`], and `Bencher::iter`.
//!
//! Instead of upstream's statistical analysis, each benchmark is calibrated
//! to a per-sample time budget and reports the **median** per-iteration time
//! over `sample_size` samples (plus throughput when declared). That is
//! enough to compare implementations in this repo's BENCH runs; it makes no
//! attempt at criterion's outlier analysis or HTML reports.

use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared units of work per iteration, used for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier `function_name/parameter` for parameterized benchmarks.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { full: format!("{function_name}/{parameter}") }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of `f`; the harness reads back the elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver. One instance is shared by every target in a
/// [`criterion_group!`].
pub struct Criterion {
    sample_size: usize,
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Far smaller than upstream's 100-sample default: this harness
            // reports a median for trend tracking, not a full distribution.
            sample_size: 10,
            sample_budget: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup { criterion: self, name, throughput: None, sample_size: None }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let (sample_size, budget) = (self.sample_size, self.sample_budget);
        run_benchmark(id, None, sample_size, budget, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.throughput,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.sample_budget,
            f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (No-op here; upstream finalizes reports.)
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    sample_budget: Duration,
    mut f: F,
) {
    // Calibrate: grow the iteration count until one sample meets the budget.
    let mut iters: u64 = 1;
    let per_iter_estimate = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= sample_budget || iters >= 1 << 20 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        // Aim straight for the budget, with padding for timer noise.
        let scale = sample_budget.as_secs_f64() / b.elapsed.as_secs_f64().max(1e-9);
        iters = (iters as f64 * scale.clamp(2.0, 100.0)).ceil() as u64;
    };
    let iters_per_sample = ((sample_budget.as_secs_f64() / per_iter_estimate.max(1e-12)).ceil()
        as u64)
        .clamp(1, 1 << 20);

    let mut per_iter_secs: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters_per_sample as f64
        })
        .collect();
    per_iter_secs.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_secs[per_iter_secs.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {} elem/s", human_rate(n as f64 / median)),
        Some(Throughput::Bytes(n)) => format!("  {}B/s", human_rate(n as f64 / median)),
        None => String::new(),
    };
    println!("bench: {name:<55} {:>12}/iter{rate}", human_time(median));
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn human_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} k", per_sec / 1e3)
    } else {
        format!("{per_sec:.0} ")
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each group. Ignores harness CLI flags (cargo
/// passes `--bench`; upstream parses filters, this stand-in runs everything).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { sample_size: 3, sample_budget: Duration::from_micros(200) };
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0u64;
        group.throughput(Throughput::Elements(64));
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| {
                runs += 1;
                (0..64u64).sum::<u64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("scaled", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
        assert!(runs > 3, "calibration plus samples must run the closure");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(human_time(5e-9), "5.0 ns");
        assert_eq!(human_time(2.5e-3), "2.50 ms");
        assert_eq!(human_rate(2_500_000.0), "2.50 M");
        assert_eq!(BenchmarkId::new("pack", 4).to_string(), "pack/4");
    }
}
