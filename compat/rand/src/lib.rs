//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments with no crates.io access, so every
//! external dependency is replaced by a local implementation of exactly the
//! API surface the workspace uses (see `compat/README.md`). For `rand` that
//! is:
//!
//! * [`SeedableRng::seed_from_u64`]
//! * [`rngs::StdRng`]
//! * [`Rng::gen_range`] over integer and float ranges
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`]
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — statistically solid
//! and deterministic per seed, but **not** bit-compatible with upstream
//! `rand`'s ChaCha12-based `StdRng`. Everything in this workspace treats the
//! RNG as an opaque deterministic source, so only determinism matters.

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Rejection-free modulo is fine here: spans are tiny compared
                // with 2^64 in every call site, so bias is negligible.
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i64);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        // Closed-interval draw: scale by 2^53 inclusive of the top.
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..10).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(1u8..=255);
            assert!(i >= 1);
        }
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap()] = true;
        }
        assert!(seen[1..].iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
