//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! This workspace builds with no crates.io access, so external dependencies
//! are replaced by local implementations of exactly the API surface the
//! workspace uses (see `compat/README.md`). For `crossbeam` that is:
//!
//! * [`channel::bounded`] / [`channel::unbounded`] MPMC channels with
//!   cloneable [`channel::Sender`]/[`channel::Receiver`] ends, blocking
//!   `send`/`recv`, non-blocking `try_send`/`try_recv`, and a blocking
//!   `iter()`;
//! * [`thread::scope`] scoped spawning (a thin wrapper over
//!   `std::thread::scope`).
//!
//! The channel is a `Mutex` + two-`Condvar` ring buffer — simple rather than
//! lock-free, but it preserves the semantics the engine relies on: FIFO
//! order per channel, backpressure on `send` when a bounded channel is full,
//! and disconnect detection when all peers on the other side are dropped.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel. Cloning adds another producer.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel. Cloning adds another consumer.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]; the unsent message is handed
    /// back in either case.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity; sending would block.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty but senders remain.
        Empty,
        /// Channel is empty and every sender is gone.
        Disconnected,
    }

    /// Creates a channel holding at most `cap` in-flight messages; `send`
    /// blocks (backpressure) while the channel is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be positive");
        with_cap(Some(cap))
    }

    /// Creates a channel with no capacity limit; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `msg`. Errors (returning
        /// the message) once every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                match state.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.inner.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(msg);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: enqueues `msg` if there is room right now,
        /// otherwise hands it back immediately instead of blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = state.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            state.queue.push_back(msg);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently sitting in the channel. Exact at the
        /// instant of the call (taken under the channel lock), like the real
        /// crossbeam `Sender::len`; for a bounded channel it never exceeds
        /// the capacity.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the channel currently holds no messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Errors once the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().unwrap();
            match state.queue.pop_front() {
                Some(msg) => {
                    drop(state);
                    self.inner.not_full.notify_one();
                    Ok(msg)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator over incoming messages; ends when the channel is
        /// empty and every sender has been dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.inner.state.lock().unwrap();
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.inner.state.lock().unwrap();
                state.receivers -= 1;
                state.receivers
            };
            if remaining == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }
}

/// Scoped thread spawning, mirroring `crossbeam::thread`.
pub mod thread {
    use std::thread as stdthread;

    /// Handle passed to the [`scope`] closure; spawns threads that may borrow
    /// from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> stdthread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns. Unlike upstream crossbeam, a panic in an unjoined
    /// spawned thread propagates (via `std::thread::scope`) instead of being
    /// returned in the `Err` arm — every caller here unwraps immediately, so
    /// the observable behaviour is the same.
    pub fn scope<'env, F, R>(f: F) -> stdthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};
    use std::time::Duration;

    #[test]
    fn fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // Channel full: a third send must block until the consumer drains.
        let producer = std::thread::spawn(move || {
            tx.send(3).unwrap();
            "sent"
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!producer.is_finished(), "send must block while full");
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(producer.join().unwrap(), "sent");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)), "full channel hands msg back");
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = bounded::<u64>(8);
        let n_workers = 4;
        let per_producer = 100u64;
        crate::thread::scope(|s| {
            for p in 0..n_workers {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..per_producer {
                        tx.send(p * per_producer + i).unwrap();
                    }
                });
            }
            drop(tx);
            let consumers: Vec<_> = (0..n_workers)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| rx.iter().collect::<Vec<u64>>())
                })
                .collect();
            let mut all: Vec<u64> = consumers.into_iter().flat_map(|h| h.join().unwrap()).collect();
            all.sort_unstable();
            let expect: Vec<u64> = (0..n_workers * per_producer).collect();
            assert_eq!(all, expect);
        })
        .unwrap();
    }

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u32, 2, 3];
        let sum = crate::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<u32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }
}
