//! Fixed-resolution alphabets of binary symbols.
//!
//! An alphabet of resolution `b` bits contains the `2^b` binary strings of
//! length `b`, ordered by rank — the leaves at depth `b` of the recursive
//! range-halving tree of Fig. 1. The paper evaluates alphabet sizes 2–16,
//! i.e. resolutions 1–4 bits; we support up to 16 bits.

use crate::error::{Error, Result};
use crate::symbol::{Symbol, MAX_RESOLUTION_BITS};

/// An alphabet `A = {a_1, ..., a_k}` with `k = 2^resolution_bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alphabet {
    resolution_bits: u8,
}

impl Alphabet {
    /// Alphabet with `2^bits` symbols; `bits` in `1..=16`.
    pub fn with_resolution(bits: u8) -> Result<Self> {
        if bits == 0 || bits > MAX_RESOLUTION_BITS {
            return Err(Error::InvalidResolution(bits));
        }
        Ok(Alphabet { resolution_bits: bits })
    }

    /// Alphabet of exactly `k` symbols; `k` must be a power of two in
    /// `[2, 65536]` (paper: "as our symbols are stored as binary numbers, we
    /// used only the power of 2").
    pub fn with_size(k: usize) -> Result<Self> {
        if !(2..=(1usize << MAX_RESOLUTION_BITS)).contains(&k) || !k.is_power_of_two() {
            return Err(Error::InvalidAlphabetSize(k));
        }
        Ok(Alphabet { resolution_bits: k.trailing_zeros() as u8 })
    }

    /// Number of symbols `k`.
    pub fn size(self) -> usize {
        1usize << self.resolution_bits
    }

    /// Resolution in bits (`log2 k`).
    pub fn resolution_bits(self) -> u8 {
        self.resolution_bits
    }

    /// The `i`-th symbol (rank order). Errors when `i >= k`.
    pub fn symbol(self, i: usize) -> Result<Symbol> {
        if i >= self.size() {
            return Err(Error::InvalidParameter {
                name: "i",
                reason: format!("rank {i} out of range for alphabet of {}", self.size()),
            });
        }
        Symbol::from_rank(i as u16, self.resolution_bits)
    }

    /// Iterates all symbols in rank order.
    pub fn symbols(self) -> impl Iterator<Item = Symbol> {
        let bits = self.resolution_bits;
        (0..self.size() as u32)
            .map(move |r| Symbol::from_rank(r as u16, bits).expect("rank within alphabet size"))
    }

    /// The coarser alphabet one bit shorter, or `None` at 1 bit.
    pub fn coarsen(self) -> Option<Alphabet> {
        (self.resolution_bits > 1).then(|| Alphabet { resolution_bits: self.resolution_bits - 1 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_size_accepts_only_powers_of_two() {
        for k in [2usize, 4, 8, 16, 256, 65536] {
            let a = Alphabet::with_size(k).unwrap();
            assert_eq!(a.size(), k);
        }
        for k in [0usize, 1, 3, 5, 6, 7, 9, 100, 65537, 131072] {
            assert!(Alphabet::with_size(k).is_err(), "k={k} should be rejected");
        }
    }

    #[test]
    fn resolution_and_size_agree() {
        let a = Alphabet::with_resolution(4).unwrap();
        assert_eq!(a.size(), 16);
        assert_eq!(a.resolution_bits(), 4);
        assert!(Alphabet::with_resolution(0).is_err());
        assert!(Alphabet::with_resolution(17).is_err());
    }

    #[test]
    fn symbols_enumerate_in_rank_order() {
        let a = Alphabet::with_size(8).unwrap();
        let syms: Vec<String> = a.symbols().map(|s| s.to_string()).collect();
        assert_eq!(syms, vec!["000", "001", "010", "011", "100", "101", "110", "111"]);
        assert_eq!(a.symbol(5).unwrap().to_string(), "101");
        assert!(a.symbol(8).is_err());
    }

    #[test]
    fn coarsen_halves_alphabet() {
        let a = Alphabet::with_size(16).unwrap();
        let c = a.coarsen().unwrap();
        assert_eq!(c.size(), 8);
        assert!(Alphabet::with_size(2).unwrap().coarsen().is_none());
    }
}
