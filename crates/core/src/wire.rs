//! Compact binary wire format for the sensor→server protocol.
//!
//! The paper's §2.3 notes that "communication and storage overhead, induced
//! for example by protocols and indexes should also be taken into account
//! for a real system". The JSON encoding of [`crate::encoder::SensorMessage`]
//! is convenient for debugging but costs ~75 bytes per symbol; this module
//! provides a length-prefixed binary framing that gets a window message down
//! to 20 bytes (15-byte payload + 5-byte header) and supports streaming
//! decode — the representation a real deployment would ship.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [u8 tag] [u32 payload length] [payload…]
//! tag 0x01 = lookup table:  payload = bincode-free hand-rolled table body
//! tag 0x02 = window:        payload = i64 window_start, u8 bits, u16 rank,
//!                                      u32 samples
//! ```

use crate::alphabet::Alphabet;
use crate::encoder::{EncodedWindow, SensorMessage};
use crate::error::{Error, Result};
use crate::lookup::LookupTable;
use crate::separators::SeparatorMethod;
use crate::symbol::Symbol;

const TAG_TABLE: u8 = 0x01;
const TAG_WINDOW: u8 = 0x02;

/// Little-endian cursor over a frame payload.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        let bytes: [u8; N] =
            self.data[self.pos..self.pos + N].try_into().expect("length checked by caller");
        self.pos += N;
        bytes
    }

    fn get_u8(&mut self) -> u8 {
        self.take::<1>()[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take())
    }
}

fn method_code(m: SeparatorMethod) -> u8 {
    match m {
        SeparatorMethod::Uniform => 0,
        SeparatorMethod::Median => 1,
        SeparatorMethod::DistinctMedian => 2,
    }
}

fn method_from(code: u8) -> Result<SeparatorMethod> {
    Ok(match code {
        0 => SeparatorMethod::Uniform,
        1 => SeparatorMethod::Median,
        2 => SeparatorMethod::DistinctMedian,
        other => return Err(Error::WireFormat(format!("unknown method code {other}"))),
    })
}

fn put_table(buf: &mut Vec<u8>, table: &LookupTable) {
    buf.push(method_code(table.method()));
    buf.push(table.resolution_bits());
    let (lo, hi) = table.value_range();
    buf.extend_from_slice(&lo.to_le_bytes());
    buf.extend_from_slice(&hi.to_le_bytes());
    for &s in table.separators() {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    for &m in table.bin_means() {
        buf.extend_from_slice(&m.to_le_bytes());
    }
    for &c in table.bin_counts() {
        buf.extend_from_slice(&c.to_le_bytes());
    }
}

fn get_table(buf: &mut Reader<'_>) -> Result<LookupTable> {
    if buf.remaining() < 2 + 16 {
        return Err(Error::WireFormat("table frame truncated".to_string()));
    }
    let method = method_from(buf.get_u8())?;
    let bits = buf.get_u8();
    let alphabet = Alphabet::with_resolution(bits)?;
    let k = alphabet.size();
    let need = 16 + 8 * (k - 1) + 8 * k + 8 * k;
    if buf.remaining() < need {
        return Err(Error::WireFormat(format!(
            "table frame truncated: need {need} bytes, have {}",
            buf.remaining()
        )));
    }
    let lo = buf.get_f64_le();
    let hi = buf.get_f64_le();
    let separators: Vec<f64> = (0..k - 1).map(|_| buf.get_f64_le()).collect();
    let means: Vec<f64> = (0..k).map(|_| buf.get_f64_le()).collect();
    let counts: Vec<u64> = (0..k).map(|_| buf.get_u64_le()).collect();
    LookupTable::from_wire_parts(method, alphabet, separators, means, counts, lo, hi)
}

/// Encodes one message as a binary frame.
pub fn encode_message(msg: &SensorMessage) -> Result<Vec<u8>> {
    let mut payload = Vec::new();
    let tag = match msg {
        SensorMessage::Table(t) => {
            put_table(&mut payload, t);
            TAG_TABLE
        }
        SensorMessage::Window(w) => {
            payload.extend_from_slice(&w.window_start.to_le_bytes());
            payload.push(w.symbol.resolution_bits());
            payload.extend_from_slice(&w.symbol.rank().to_le_bytes());
            payload.extend_from_slice(&w.samples.to_le_bytes());
            TAG_WINDOW
        }
    };
    let mut frame = Vec::with_capacity(5 + payload.len());
    frame.push(tag);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Streaming frame decoder: feed bytes in arbitrary chunks, drain complete
/// messages as they become available.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (incomplete frame remainder).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Decodes the next complete message, or `None` if more bytes are needed.
    pub fn next_message(&mut self) -> Result<Option<SensorMessage>> {
        if self.buf.len() < 5 {
            return Ok(None);
        }
        let tag = self.buf[0];
        let len = u32::from_le_bytes([self.buf[1], self.buf[2], self.buf[3], self.buf[4]]) as usize;
        if self.buf.len() < 5 + len {
            return Ok(None);
        }
        let payload_bytes: Vec<u8> = self.buf.drain(..5 + len).skip(5).collect();
        let mut payload = Reader::new(&payload_bytes);
        match tag {
            TAG_TABLE => Ok(Some(SensorMessage::Table(get_table(&mut payload)?))),
            TAG_WINDOW => {
                if payload.remaining() < 8 + 1 + 2 + 4 {
                    return Err(Error::WireFormat("window frame truncated".to_string()));
                }
                let window_start = payload.get_i64_le();
                let bits = payload.get_u8();
                let rank = payload.get_u16_le();
                let samples = payload.get_u32_le();
                Ok(Some(SensorMessage::Window(EncodedWindow {
                    window_start,
                    symbol: Symbol::from_rank(rank, bits)?,
                    samples,
                })))
            }
            other => Err(Error::WireFormat(format!("unknown frame tag {other:#x}"))),
        }
    }

    /// Drains all currently complete messages.
    pub fn drain(&mut self) -> Result<Vec<SensorMessage>> {
        let mut out = Vec::new();
        while let Some(m) = self.next_message()? {
            out.push(m);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LookupTable {
        let values: Vec<f64> = (0..500).map(|i| ((i * 37) % 300) as f64).collect();
        LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(16).unwrap(), &values)
            .unwrap()
    }

    fn window(t: i64, rank: u16) -> SensorMessage {
        SensorMessage::Window(EncodedWindow {
            window_start: t,
            symbol: Symbol::from_rank(rank, 4).unwrap(),
            samples: 900,
        })
    }

    #[test]
    fn roundtrip_table_and_windows() {
        let msgs = vec![SensorMessage::Table(table()), window(0, 3), window(900, 15)];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend(encode_message(m).unwrap());
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let out = dec.drain().unwrap();
        assert_eq!(out, msgs);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_handles_arbitrary_chunking() {
        let msgs = vec![SensorMessage::Table(table()), window(0, 1), window(900, 2)];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend(encode_message(m).unwrap());
        }
        // Feed one byte at a time.
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for &b in &wire {
            dec.feed(&[b]);
            out.extend(dec.drain().unwrap());
        }
        assert_eq!(out, msgs);
    }

    #[test]
    fn window_frame_is_small() {
        let frame = encode_message(&window(86_400, 7)).unwrap();
        assert_eq!(frame.len(), 5 + 15, "15-byte payload + 5-byte header");
        // Versus JSON:
        let json = window(86_400, 7).to_json().unwrap();
        assert!(json.len() > frame.len() * 3, "binary ≪ JSON: {} vs {}", frame.len(), json.len());
    }

    #[test]
    fn errors_on_garbage() {
        let mut dec = FrameDecoder::new();
        dec.feed(&[0xFF, 1, 0, 0, 0, 0]);
        assert!(dec.next_message().is_err(), "unknown tag");

        let mut dec = FrameDecoder::new();
        dec.feed(&[TAG_WINDOW, 3, 0, 0, 0, 1, 2, 3]); // payload too short
        assert!(dec.next_message().is_err());

        let mut dec = FrameDecoder::new();
        dec.feed(&[TAG_TABLE, 1, 0, 0, 0, 9]); // truncated table
        assert!(dec.next_message().is_err());
    }

    #[test]
    fn incomplete_frames_wait_for_more_bytes() {
        let frame = encode_message(&window(0, 0)).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&frame[..4]);
        assert_eq!(dec.next_message().unwrap(), None);
        dec.feed(&frame[4..frame.len() - 1]);
        assert_eq!(dec.next_message().unwrap(), None);
        dec.feed(&frame[frame.len() - 1..]);
        assert!(dec.next_message().unwrap().is_some());
    }

    #[test]
    fn day_of_windows_wire_cost() {
        // 96 windows/day at 15 min: binary cost per §2.3 discussion.
        let mut wire = Vec::new();
        for i in 0..96 {
            wire.extend(encode_message(&window(i * 900, (i % 16) as u16)).unwrap());
        }
        assert_eq!(wire.len(), 96 * 20);
        // Still far below the raw day (86 400 × 8 B), including all framing.
        assert!(wire.len() * 300 < 86_400 * 8);
    }
}
