//! Compact binary wire format for the sensor→server protocol.
//!
//! The paper's §2.3 notes that "communication and storage overhead, induced
//! for example by protocols and indexes should also be taken into account
//! for a real system". The JSON encoding of [`crate::encoder::SensorMessage`]
//! is convenient for debugging but costs ~75 bytes per symbol; this module
//! provides a length-prefixed binary framing that gets a window message down
//! to 20 bytes (15-byte payload + 5-byte header) and supports streaming
//! decode — the representation a real deployment would ship.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [u8 tag] [u32 payload length] [payload…]
//! tag 0x01 = lookup table:  payload = bincode-free hand-rolled table body
//! tag 0x02 = window:        payload = i64 window_start, u8 bits, u16 rank,
//!                                      u32 samples
//! tag 0x03 = epoch table:   payload = u32 epoch, then the tag-0x01 table
//!                                      body (drift cutover, see
//!                                      `crate::adaptive`)
//! ```
//!
//! Tag 0x03 versions the table without breaking old decoders' *captures*:
//! a tag-0x01 frame is still emitted by non-adaptive sensors and still
//! decodes byte-for-byte — old epochs (and pre-epoch streams) remain
//! decodable forever; the epoch tag only adds a monotonic version so stored
//! segments can record which table encoded them.

use crate::alphabet::Alphabet;
use crate::encoder::{EncodedWindow, SensorMessage};
use crate::error::{Error, Result};
use crate::lookup::LookupTable;
use crate::separators::SeparatorMethod;
use crate::symbol::Symbol;

const TAG_TABLE: u8 = 0x01;
const TAG_WINDOW: u8 = 0x02;
const TAG_EPOCH_TABLE: u8 = 0x03;

/// Bytes the epoch prefix adds to a table body in a tag-0x03 payload.
const EPOCH_PREFIX_LEN: usize = 4;

/// Frame header size: one tag byte plus a little-endian `u32` payload length.
pub const HEADER_LEN: usize = 5;

/// Exact payload length of a window frame (`i64` start + `u8` bits +
/// `u16` rank + `u32` samples).
const WINDOW_PAYLOAD_LEN: usize = 8 + 1 + 2 + 4;

/// Exact payload length of a table frame for a `bits`-bit alphabet:
/// method + bits + lo/hi + `k-1` separators + `k` means + `k` counts.
fn table_payload_len(bits: u8) -> usize {
    let k = 1usize << bits;
    2 + 16 + 8 * (k - 1) + 8 * k + 8 * k
}

/// Default [`FrameDecoder`] payload cap: 2 MiB, comfortably above the
/// largest legitimate frame (a 16-bit table is ~1.5 MiB) while refusing the
/// up-to-4-GiB allocations an adversarial header could otherwise demand.
pub const DEFAULT_MAX_FRAME_LEN: usize = 2 << 20;

/// Little-endian cursor over a frame payload.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        let bytes: [u8; N] =
            self.data[self.pos..self.pos + N].try_into().expect("length checked by caller");
        self.pos += N;
        bytes
    }

    fn get_u8(&mut self) -> u8 {
        self.take::<1>()[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take())
    }
}

fn method_code(m: SeparatorMethod) -> u8 {
    match m {
        SeparatorMethod::Uniform => 0,
        SeparatorMethod::Median => 1,
        SeparatorMethod::DistinctMedian => 2,
    }
}

fn method_from(code: u8) -> Result<SeparatorMethod> {
    Ok(match code {
        0 => SeparatorMethod::Uniform,
        1 => SeparatorMethod::Median,
        2 => SeparatorMethod::DistinctMedian,
        other => return Err(Error::WireFormat(format!("unknown method code {other}"))),
    })
}

fn put_table(buf: &mut Vec<u8>, table: &LookupTable) {
    buf.push(method_code(table.method()));
    buf.push(table.resolution_bits());
    let (lo, hi) = table.value_range();
    buf.extend_from_slice(&lo.to_le_bytes());
    buf.extend_from_slice(&hi.to_le_bytes());
    for &s in table.separators() {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    for &m in table.bin_means() {
        buf.extend_from_slice(&m.to_le_bytes());
    }
    for &c in table.bin_counts() {
        buf.extend_from_slice(&c.to_le_bytes());
    }
}

fn get_table(buf: &mut Reader<'_>) -> Result<LookupTable> {
    if buf.remaining() < 2 + 16 {
        return Err(Error::WireFormat("table frame truncated".to_string()));
    }
    let method = method_from(buf.get_u8())?;
    let bits = buf.get_u8();
    let alphabet = Alphabet::with_resolution(bits)?;
    let k = alphabet.size();
    let need = 16 + 8 * (k - 1) + 8 * k + 8 * k;
    if buf.remaining() < need {
        return Err(Error::WireFormat(format!(
            "table frame truncated: need {need} bytes, have {}",
            buf.remaining()
        )));
    }
    let lo = buf.get_f64_le();
    let hi = buf.get_f64_le();
    let separators: Vec<f64> = (0..k - 1).map(|_| buf.get_f64_le()).collect();
    let means: Vec<f64> = (0..k).map(|_| buf.get_f64_le()).collect();
    let counts: Vec<u64> = (0..k).map(|_| buf.get_u64_le()).collect();
    LookupTable::from_wire_parts(method, alphabet, separators, means, counts, lo, hi)
}

/// Encodes one message as a binary frame.
pub fn encode_message(msg: &SensorMessage) -> Result<Vec<u8>> {
    let mut frame = Vec::new();
    encode_message_into(msg, &mut frame)?;
    Ok(frame)
}

/// Validates a payload length against the 4-byte header field, returning the
/// little-endian header bytes.
///
/// The header stores the payload length as a `u32`; a payload above
/// [`u32::MAX`] bytes used to be written as `payload_len as u32`, silently
/// truncating the announced length and emitting a frame no decoder could
/// ever reconcile with its actual size. Such a payload is now a typed
/// [`Error::FrameTooLarge`] at **encode** time, mirroring the decode-side
/// cap.
fn header_len_bytes(payload_len: usize) -> Result<[u8; 4]> {
    let len = u32::try_from(payload_len)
        .map_err(|_| Error::FrameTooLarge { len: payload_len, max: u32::MAX as usize })?;
    Ok(len.to_le_bytes())
}

/// Zero-copy variant of [`encode_message`]: **appends** the frame straight
/// into `out` (no intermediate payload buffer, no post-hoc copy), so a
/// sensor batching many windows writes every frame into one caller-owned
/// buffer. The 4 length bytes are reserved up front and patched once the
/// payload is in place; the emitted bytes are identical to
/// [`encode_message`]'s.
pub fn encode_message_into(msg: &SensorMessage, out: &mut Vec<u8>) -> Result<()> {
    let frame_start = out.len();
    let tag = match msg {
        SensorMessage::Table(t) => {
            out.reserve(HEADER_LEN + table_payload_len(t.resolution_bits()));
            TAG_TABLE
        }
        SensorMessage::Window(_) => {
            out.reserve(HEADER_LEN + WINDOW_PAYLOAD_LEN);
            TAG_WINDOW
        }
        SensorMessage::EpochTable { table, .. } => {
            out.reserve(HEADER_LEN + EPOCH_PREFIX_LEN + table_payload_len(table.resolution_bits()));
            TAG_EPOCH_TABLE
        }
    };
    out.push(tag);
    let len_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    let payload_start = out.len();
    match msg {
        SensorMessage::Table(t) => put_table(out, t),
        SensorMessage::EpochTable { epoch, table } => {
            out.extend_from_slice(&epoch.to_le_bytes());
            put_table(out, table);
        }
        SensorMessage::Window(w) => {
            out.extend_from_slice(&w.window_start.to_le_bytes());
            out.push(w.symbol.resolution_bits());
            out.extend_from_slice(&w.symbol.rank().to_le_bytes());
            out.extend_from_slice(&w.samples.to_le_bytes());
        }
    }
    let payload_len = out.len() - payload_start;
    let len_bytes = match header_len_bytes(payload_len) {
        Ok(bytes) => bytes,
        Err(e) => {
            // Roll the partial frame back so a batching caller's buffer is
            // left exactly as it was — no undecodable half-frame appended.
            out.truncate(frame_start);
            return Err(e);
        }
    };
    out[len_at..len_at + 4].copy_from_slice(&len_bytes);
    Ok(())
}

/// Decodes one payload whose frame header (tag + announced length) already
/// checked out.
fn decode_payload(tag: u8, payload_bytes: &[u8]) -> Result<SensorMessage> {
    let mut payload = Reader::new(payload_bytes);
    match tag {
        TAG_TABLE => Ok(SensorMessage::Table(get_table(&mut payload)?)),
        TAG_EPOCH_TABLE => {
            if payload.remaining() < EPOCH_PREFIX_LEN {
                return Err(Error::WireFormat("epoch-table frame truncated".to_string()));
            }
            let epoch = payload.get_u32_le();
            Ok(SensorMessage::EpochTable { epoch, table: get_table(&mut payload)? })
        }
        TAG_WINDOW => {
            if payload.remaining() != WINDOW_PAYLOAD_LEN {
                return Err(Error::WireFormat(format!(
                    "window frame has {} payload bytes, expected {WINDOW_PAYLOAD_LEN}",
                    payload.remaining()
                )));
            }
            let window_start = payload.get_i64_le();
            let bits = payload.get_u8();
            let rank = payload.get_u16_le();
            let samples = payload.get_u32_le();
            Ok(SensorMessage::Window(EncodedWindow {
                window_start,
                symbol: Symbol::from_rank(rank, bits)?,
                samples,
            }))
        }
        other => Err(Error::WireFormat(format!("unknown frame tag {other:#x}"))),
    }
}

/// Whether `buf` could be the start of a valid frame — the resync predicate.
///
/// Checks everything the buffered bytes allow: tag, announced length against
/// `max_frame_len` and the tag's structural length (windows are fixed-size;
/// a table's length is fully determined by its resolution byte), and — when
/// the whole frame is buffered — an actual payload decode. Prefix-only
/// matches are accepted tentatively; later bytes may still disprove them,
/// which simply triggers another resync.
fn plausible_frame_at(buf: &[u8], max_frame_len: usize) -> bool {
    let Some(&tag) = buf.first() else { return false };
    if tag != TAG_TABLE && tag != TAG_WINDOW && tag != TAG_EPOCH_TABLE {
        return false;
    }
    if buf.len() < HEADER_LEN {
        return true; // tag checks out; length bytes not yet received
    }
    let len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
    if len > max_frame_len {
        return false;
    }
    match tag {
        TAG_WINDOW if len != WINDOW_PAYLOAD_LEN => return false,
        TAG_TABLE | TAG_EPOCH_TABLE => {
            // method byte ≤ 2, resolution in 1..=16, and the announced
            // length must match the one the resolution dictates. An epoch
            // table carries a 4-byte epoch before the table body, shifting
            // those bytes (any u32 is a valid epoch, so it is not checked).
            let body =
                if tag == TAG_EPOCH_TABLE { HEADER_LEN + EPOCH_PREFIX_LEN } else { HEADER_LEN };
            let prefix = body - HEADER_LEN;
            if buf.len() > body && buf[body] > 2 {
                return false;
            }
            if buf.len() > body + 1 {
                let bits = buf[body + 1];
                if !(1..=16).contains(&bits) || len != prefix + table_payload_len(bits) {
                    return false;
                }
            }
        }
        _ => {}
    }
    if buf.len() >= HEADER_LEN + len {
        decode_payload(tag, &buf[HEADER_LEN..HEADER_LEN + len]).is_ok()
    } else {
        true
    }
}

/// Streaming frame decoder: feed bytes in arbitrary chunks, drain complete
/// messages as they become available.
///
/// Decoding is cursor-based: consumed frames advance a read offset instead
/// of draining the front of the buffer, and the consumed prefix is compacted
/// away on the next [`feed`](FrameDecoder::feed) — one amortized copy per
/// byte, where the previous per-frame `Vec::drain` re-copied the whole
/// remaining buffer for every frame (quadratic over large batched feeds).
///
/// The decoder is hardened against untrusted producers:
///
/// * a header announcing more than [`max_frame_len`](Self::max_frame_len)
///   payload bytes yields [`Error::FrameTooLarge`] instead of waiting
///   (potentially forever) for up to 4 GiB to arrive;
/// * an invalid tag is reported as soon as the byte arrives;
/// * after any error, [`resync`](Self::resync) skips to the next plausible
///   frame boundary so decoding can continue past corruption.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read offset: `buf[..pos]` is consumed, awaiting compaction.
    pos: usize,
    max_frame_len: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// Creates an empty decoder with the [`DEFAULT_MAX_FRAME_LEN`] cap.
    pub fn new() -> Self {
        Self::with_max_frame_len(DEFAULT_MAX_FRAME_LEN)
    }

    /// Creates an empty decoder rejecting payloads above `max_frame_len`
    /// bytes. Deployments whose meters only send window frames (and small
    /// re-issued tables) can set this far below the default.
    pub fn with_max_frame_len(max_frame_len: usize) -> Self {
        FrameDecoder { buf: Vec::new(), pos: 0, max_frame_len }
    }

    /// The largest payload length this decoder accepts.
    pub fn max_frame_len(&self) -> usize {
        self.max_frame_len
    }

    /// Appends received bytes, first compacting away the consumed prefix.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            let remaining = self.buf.len() - self.pos;
            self.buf.copy_within(self.pos.., 0);
            self.buf.truncate(remaining);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (incomplete frame remainder).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete message, or `None` if more bytes are
    /// needed.
    ///
    /// On error the offending bytes are **not** consumed: calling
    /// `next_message` again returns the same error. Callers that want to
    /// continue past corruption call [`resync`](Self::resync) and retry;
    /// [`crate::ingest::MeterIngest`] packages that loop with counters.
    pub fn next_message(&mut self) -> Result<Option<SensorMessage>> {
        let avail = &self.buf[self.pos..];
        let Some(&tag) = avail.first() else { return Ok(None) };
        if tag != TAG_TABLE && tag != TAG_WINDOW && tag != TAG_EPOCH_TABLE {
            return Err(Error::WireFormat(format!("unknown frame tag {tag:#x}")));
        }
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[1], avail[2], avail[3], avail[4]]) as usize;
        if len > self.max_frame_len {
            return Err(Error::FrameTooLarge { len, max: self.max_frame_len });
        }
        if avail.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let msg = decode_payload(tag, &avail[HEADER_LEN..HEADER_LEN + len])?;
        self.pos += HEADER_LEN + len;
        Ok(Some(msg))
    }

    /// Recovers from a corrupt frame: skips at least one byte, then scans to
    /// the next offset that could plausibly start a frame (valid tag, sane
    /// length, and — when fully buffered — a payload that actually decodes).
    /// Returns the number of bytes discarded. Progress is guaranteed, so a
    /// `next_message`/`resync` loop always terminates.
    pub fn resync(&mut self) -> usize {
        let start = self.pos;
        if self.pos < self.buf.len() {
            self.pos += 1;
        }
        while self.pos < self.buf.len()
            && !plausible_frame_at(&self.buf[self.pos..], self.max_frame_len)
        {
            self.pos += 1;
        }
        self.pos - start
    }

    /// Drains all currently complete messages, stopping at the first error.
    pub fn drain(&mut self) -> Result<Vec<SensorMessage>> {
        let mut out = Vec::new();
        while let Some(m) = self.next_message()? {
            out.push(m);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LookupTable {
        let values: Vec<f64> = (0..500).map(|i| ((i * 37) % 300) as f64).collect();
        LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(16).unwrap(), &values)
            .unwrap()
    }

    fn window(t: i64, rank: u16) -> SensorMessage {
        SensorMessage::Window(EncodedWindow {
            window_start: t,
            symbol: Symbol::from_rank(rank, 4).unwrap(),
            samples: 900,
        })
    }

    #[test]
    fn roundtrip_table_and_windows() {
        let msgs = vec![SensorMessage::Table(table()), window(0, 3), window(900, 15)];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend(encode_message(m).unwrap());
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let out = dec.drain().unwrap();
        assert_eq!(out, msgs);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_handles_arbitrary_chunking() {
        let msgs = vec![SensorMessage::Table(table()), window(0, 1), window(900, 2)];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend(encode_message(m).unwrap());
        }
        // Feed one byte at a time.
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for &b in &wire {
            dec.feed(&[b]);
            out.extend(dec.drain().unwrap());
        }
        assert_eq!(out, msgs);
    }

    #[test]
    fn roundtrip_epoch_tables_interleaved_with_legacy_frames() {
        // Epoch cutover mid-stream: legacy tag-0x01 table, symbols under it,
        // then epoch-versioned tables. All tags decode from one stream.
        let msgs = vec![
            SensorMessage::Table(table()),
            window(0, 3),
            SensorMessage::EpochTable { epoch: 1, table: table() },
            window(900, 9),
            SensorMessage::EpochTable { epoch: u32::MAX, table: table() },
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend(encode_message(m).unwrap());
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(dec.drain().unwrap(), msgs);
        assert_eq!(dec.buffered(), 0);

        // An epoch frame costs exactly 4 bytes more than the legacy frame.
        let legacy = encode_message(&SensorMessage::Table(table())).unwrap();
        let epoch =
            encode_message(&SensorMessage::EpochTable { epoch: 1, table: table() }).unwrap();
        assert_eq!(epoch.len(), legacy.len() + 4);
    }

    #[test]
    fn truncated_epoch_table_frame_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.feed(&[TAG_EPOCH_TABLE, 3, 0, 0, 0, 1, 0, 0]); // payload < epoch prefix
        assert!(dec.next_message().is_err());
        let mut dec = FrameDecoder::new();
        dec.feed(&[TAG_EPOCH_TABLE, 5, 0, 0, 0, 1, 0, 0, 0, 9]); // table body truncated
        assert!(dec.next_message().is_err());
    }

    #[test]
    fn resync_lands_on_epoch_table_frames() {
        let msgs = vec![
            window(0, 1),
            SensorMessage::EpochTable { epoch: 2, table: table() },
            window(900, 2),
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend(encode_message(m).unwrap());
        }
        wire[0] = 0xEE; // corrupt the first frame's tag
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let mut out = Vec::new();
        loop {
            match dec.next_message() {
                Ok(Some(m)) => out.push(m),
                Ok(None) => break,
                Err(_) => {
                    dec.resync();
                }
            }
        }
        assert_eq!(out, msgs[1..], "resync must recover the epoch table and what follows");
    }

    #[test]
    fn window_frame_is_small() {
        let frame = encode_message(&window(86_400, 7)).unwrap();
        assert_eq!(frame.len(), 5 + 15, "15-byte payload + 5-byte header");
        // Versus JSON:
        let json = window(86_400, 7).to_json().unwrap();
        assert!(json.len() > frame.len() * 3, "binary ≪ JSON: {} vs {}", frame.len(), json.len());
    }

    #[test]
    fn errors_on_garbage() {
        let mut dec = FrameDecoder::new();
        dec.feed(&[0xFF, 1, 0, 0, 0, 0]);
        assert!(dec.next_message().is_err(), "unknown tag");

        let mut dec = FrameDecoder::new();
        dec.feed(&[TAG_WINDOW, 3, 0, 0, 0, 1, 2, 3]); // payload too short
        assert!(dec.next_message().is_err());

        let mut dec = FrameDecoder::new();
        dec.feed(&[TAG_TABLE, 1, 0, 0, 0, 9]); // truncated table
        assert!(dec.next_message().is_err());
    }

    #[test]
    fn incomplete_frames_wait_for_more_bytes() {
        let frame = encode_message(&window(0, 0)).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&frame[..4]);
        assert_eq!(dec.next_message().unwrap(), None);
        dec.feed(&frame[4..frame.len() - 1]);
        assert_eq!(dec.next_message().unwrap(), None);
        dec.feed(&frame[frame.len() - 1..]);
        assert!(dec.next_message().unwrap().is_some());
    }

    #[test]
    fn oversized_header_is_rejected_not_buffered() {
        // The adversarial header: len = 0xFFFF_FFFF. The old decoder would
        // return Ok(None) forever, buffering everything it was fed.
        let mut dec = FrameDecoder::new();
        dec.feed(&[TAG_WINDOW, 0xFF, 0xFF, 0xFF, 0xFF]);
        assert_eq!(
            dec.next_message(),
            Err(Error::FrameTooLarge { len: 0xFFFF_FFFF, max: DEFAULT_MAX_FRAME_LEN })
        );

        // A tighter cap rejects frames the default would accept.
        let frame = encode_message(&SensorMessage::Table(table())).unwrap();
        let mut dec = FrameDecoder::with_max_frame_len(64);
        dec.feed(&frame);
        assert!(matches!(dec.next_message(), Err(Error::FrameTooLarge { .. })));
        // ... while windows (15-byte payloads) still pass.
        let mut dec = FrameDecoder::with_max_frame_len(64);
        dec.feed(&encode_message(&window(0, 3)).unwrap());
        assert_eq!(dec.next_message().unwrap(), Some(window(0, 3)));
    }

    #[test]
    fn unknown_tag_fails_fast_without_waiting_for_header() {
        let mut dec = FrameDecoder::new();
        dec.feed(&[0x7F]);
        assert!(dec.next_message().is_err(), "garbage tag must not buffer quietly");
    }

    #[test]
    fn resync_skips_corruption_and_recovers_following_frames() {
        let msgs = vec![window(0, 1), window(900, 2), window(1800, 3), window(2700, 4)];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend(encode_message(m).unwrap());
        }
        wire[20] = 0xEE; // corrupt the second frame's tag
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let mut out = Vec::new();
        let mut resyncs = 0;
        loop {
            match dec.next_message() {
                Ok(Some(m)) => out.push(m),
                Ok(None) => break,
                Err(_) => {
                    resyncs += 1;
                    assert!(resyncs < 100, "resync loop must make progress");
                    dec.resync();
                }
            }
        }
        assert!(resyncs >= 1);
        assert!(out.contains(&msgs[0]));
        assert!(out.contains(&msgs[2]), "frames after the corruption must decode");
        assert!(out.contains(&msgs[3]));
    }

    #[test]
    fn resync_rejects_implausible_table_structure() {
        // tag TABLE, len consistent-looking, but resolution byte of 200:
        // structurally impossible, so resync must skip past it.
        let mut bad = vec![TAG_TABLE, 40, 0, 0, 0, 0, 200];
        bad.extend(vec![0u8; 40]);
        let good = encode_message(&window(0, 5)).unwrap();
        let mut wire = vec![0xFFu8]; // force an initial error + resync
        wire.extend(&bad);
        wire.extend(&good);
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let mut out = Vec::new();
        loop {
            match dec.next_message() {
                Ok(Some(m)) => out.push(m),
                Ok(None) => break,
                Err(_) => {
                    dec.resync();
                }
            }
        }
        assert_eq!(out, vec![window(0, 5)]);
    }

    #[test]
    fn tampered_table_frames_are_rejected() {
        // Regression: `get_table` used to accept wire tables whose
        // separators were not strictly increasing or whose lo > hi,
        // bypassing the invariant `learn_separators` enforces locally.
        let frame = encode_message(&SensorMessage::Table(table())).unwrap();
        // Payload layout: [5 header][1 method][1 bits][8 lo][8 hi][seps…].
        let (hi_at, seps_at) = (5 + 2 + 8, 5 + 2 + 16);

        // Tamper 1: inverted value range (hi below any training value).
        let mut inverted = frame.clone();
        inverted[hi_at..hi_at + 8].copy_from_slice(&(-1e12f64).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&inverted);
        match dec.next_message() {
            Err(Error::WireFormat(msg)) => assert!(msg.contains("inverted"), "{msg}"),
            other => panic!("inverted range must be rejected, got {other:?}"),
        }

        // Tamper 2: duplicate separator (β2 := β1) — no longer strictly
        // increasing.
        let mut duped = frame.clone();
        let first: [u8; 8] = duped[seps_at..seps_at + 8].try_into().unwrap();
        duped[seps_at + 8..seps_at + 16].copy_from_slice(&first);
        let mut dec = FrameDecoder::new();
        dec.feed(&duped);
        match dec.next_message() {
            Err(Error::WireFormat(msg)) => {
                assert!(msg.contains("strictly increasing"), "{msg}")
            }
            other => panic!("duplicate separators must be rejected, got {other:?}"),
        }

        // The untampered frame still round-trips.
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        assert_eq!(dec.next_message().unwrap(), Some(SensorMessage::Table(table())));
    }

    #[test]
    fn cursor_compaction_keeps_buffered_accounting_exact() {
        let frame = encode_message(&window(0, 1)).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        dec.feed(&frame[..7]); // one full frame + a partial one
        assert_eq!(dec.buffered(), frame.len() + 7);
        assert!(dec.next_message().unwrap().is_some());
        assert_eq!(dec.buffered(), 7, "consumed bytes no longer count");
        dec.feed(&frame[7..]); // compacts, then completes the second frame
        assert_eq!(dec.buffered(), frame.len());
        assert_eq!(dec.next_message().unwrap(), Some(window(0, 1)));
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn oversized_payload_is_a_typed_encode_error_not_a_truncated_header() {
        // Regression: the header writer used to emit `payload_len as u32`,
        // so a payload over u32::MAX bytes wrote a silently wrapped length
        // and produced an undecodable frame. The length computation is
        // checked directly — no 4 GiB allocation needed to hit the path.
        assert_eq!(header_len_bytes(0).unwrap(), [0, 0, 0, 0]);
        assert_eq!(header_len_bytes(WINDOW_PAYLOAD_LEN).unwrap(), [15, 0, 0, 0]);
        assert_eq!(header_len_bytes(u32::MAX as usize).unwrap(), [0xFF; 4]);
        assert_eq!(
            header_len_bytes(u32::MAX as usize + 1),
            Err(Error::FrameTooLarge { len: u32::MAX as usize + 1, max: u32::MAX as usize })
        );
        // The wrapped value the old cast would have produced: 2^32 + 20
        // became a 20-byte announcement. That exact corruption is now the
        // error above rather than [20, 0, 0, 0].
        assert_ne!(header_len_bytes((1usize << 32) + 20).ok(), Some([20, 0, 0, 0]));
        // Every legitimate message stays far below the limit and still
        // encodes; a failed encode leaves the caller's buffer untouched
        // (asserted indirectly: encode_message_into never rolls back here).
        let mut buf = b"prefix".to_vec();
        encode_message_into(&window(0, 1), &mut buf).unwrap();
        assert!(buf.starts_with(b"prefix"));
        assert_eq!(buf.len(), 6 + HEADER_LEN + WINDOW_PAYLOAD_LEN);
    }

    #[test]
    fn day_of_windows_wire_cost() {
        // 96 windows/day at 15 min: binary cost per §2.3 discussion.
        let mut wire = Vec::new();
        for i in 0..96 {
            wire.extend(encode_message(&window(i * 900, (i % 16) as u16)).unwrap());
        }
        assert_eq!(wire.len(), 96 * 20);
        // Still far below the raw day (86 400 × 8 B), including all framing.
        assert!(wire.len() * 300 < 86_400 * 8);
    }
}
