//! The lookup table `L = (A, B)` of Definition 3: an alphabet plus
//! separators, mapping real values to symbols and symbols back to
//! representative real values.
//!
//! The paper builds the table once at the sensor from historical data, ships
//! it to the aggregation server, and optionally rebuilds it when the
//! distribution drifts (§2, §4). Reconstruction uses either the *center* of
//! a symbol's range (the forecasting semantics of §3.2) or the *mean of the
//! training values* that fell into the range (the reconstruction semantics
//! of §2: "match each symbol to the average real value of it corresponding
//! range").

use crate::alphabet::Alphabet;
use crate::error::{Error, Result};
use crate::json::{self, JsonValue, JsonWriter};
use crate::separators::{
    def3_bin_index, learn_separators, learn_separators_from_sample, FlatSeparators,
    SeparatorMethod, SortedSample, ENCODE_CHUNK,
};
use crate::stats::QuantileSketch;
use crate::symbol::Symbol;

/// Boundary count at or below which the batch encode uses the columnar
/// per-boundary kernel; above it the fixed branchless search wins (the
/// columnar kernel's cost is linear in `k`, the search's is constant).
const COLUMNAR_MAX_SEPARATORS: usize = 7;

/// How to map a symbol back to a real value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolSemantics {
    /// Midpoint of the symbol's value range (§3.2: "we define semantics of a
    /// symbol as the center of its range").
    RangeCenter,
    /// Mean of the training values that fell in the range (§2's lookup-table
    /// reconstruction). Falls back to the range center for empty bins.
    RangeMean,
}

/// A fully specified lookup table: alphabet, separators, and per-bin
/// statistics gathered at training time.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupTable {
    method: SeparatorMethod,
    alphabet: Alphabet,
    /// `k - 1` non-decreasing boundaries.
    separators: Vec<f64>,
    /// Mean training value per bin (NaN-free; empty bins hold the center).
    bin_means: Vec<f64>,
    /// Training observations per bin (used to re-weight when coarsening).
    bin_counts: Vec<u64>,
    /// Smallest training value (lower edge of bin 0's effective range).
    value_min: f64,
    /// Largest training value (upper edge of the last bin's effective range).
    value_max: f64,
    /// Branchless search form of `separators` for k ≤ 32 (a pure function
    /// of `separators`, rebuilt on construction — derived `PartialEq` stays
    /// consistent). `None` for larger alphabets, which keep binary search.
    flat: Option<FlatSeparators>,
}

impl LookupTable {
    /// Learns a table of `k = alphabet.size()` symbols from historical
    /// `values` with the given separator `method`.
    pub fn learn(method: SeparatorMethod, alphabet: Alphabet, values: &[f64]) -> Result<Self> {
        let separators = learn_separators(method, values, alphabet.size())?;
        Self::from_parts(method, alphabet, separators, values)
    }

    /// [`LookupTable::learn`] from a pre-sorted sample: bit-identical output
    /// (separator quantiles from the cached sort, bin statistics summed in
    /// the sample's original value order), but learning a whole grid of
    /// alphabet sizes from one sample pays the sort only once.
    pub fn learn_from_sample(
        method: SeparatorMethod,
        alphabet: Alphabet,
        sample: &SortedSample,
    ) -> Result<Self> {
        let separators = learn_separators_from_sample(method, sample, alphabet.size())?;
        Self::from_parts(method, alphabet, separators, sample.values())
    }

    /// Learns a table from a bounded-memory [`QuantileSketch`] instead of a
    /// retained sample — the drift path's constructor, since no raw history
    /// survives at fleet scale.
    ///
    /// Separators come from sketch quantiles (`Median`: the `j/k` rank
    /// quantiles; `Uniform`: an even grid over the sketch's value range;
    /// `DistinctMedian` falls back to `Median`-over-the-sketch — a mergeable
    /// sketch cannot track distinct values, and once ranks are approximate
    /// the duplicate-bias correction is noise). Bin means come from mid-mass
    /// quantiles, bin counts from the sketch's rank mass per bin. Collapsed
    /// boundaries (constant runs, heavy duplicates) are nudged apart by ULPs
    /// so the result keeps the strictly-increasing wire invariant.
    ///
    /// Errors on an empty sketch or one whose value range reaches ±∞ (the
    /// sketch accepts infinities as data, but a table's range must be
    /// finite).
    pub fn learn_from_sketch(
        method: SeparatorMethod,
        alphabet: Alphabet,
        sketch: &QuantileSketch,
    ) -> Result<Self> {
        if sketch.is_empty() {
            return Err(Error::EmptyInput("learn_from_sketch"));
        }
        let k = alphabet.size();
        let lo = sketch.quantile(0.0).expect("non-empty sketch");
        let hi = sketch.quantile(1.0).expect("non-empty sketch");
        if !(lo.is_finite() && hi.is_finite()) {
            return Err(Error::InvalidParameter {
                name: "sketch",
                reason: format!("value range [{lo}, {hi}] is not finite"),
            });
        }
        let mut separators: Vec<f64> = Vec::with_capacity(k - 1);
        for j in 1..k {
            let s = match method {
                SeparatorMethod::Uniform => lo + (hi - lo) * j as f64 / k as f64,
                SeparatorMethod::Median | SeparatorMethod::DistinctMedian => {
                    sketch.quantile(j as f64 / k as f64).expect("non-empty sketch")
                }
            };
            let s = match separators.last() {
                Some(&prev) if s <= prev => next_up(prev),
                _ => s,
            };
            separators.push(s);
        }

        let mut t = Self::from_parts(method, alphabet, separators, &[])?;
        t.value_min = lo;
        t.value_max = hi.max(t.separators[k - 2]);

        // Rank-mass boundaries per bin (monotone by construction).
        let total = sketch.count();
        let mut cum = Vec::with_capacity(k + 1);
        cum.push(0u64);
        for i in 0..k - 1 {
            let r = sketch.rank(t.separators[i]).min(total);
            cum.push(r.max(cum[i]));
        }
        cum.push(total);
        for i in 0..k {
            t.bin_counts[i] = cum[i + 1] - cum[i];
            t.bin_means[i] = if t.bin_counts[i] > 0 {
                let mid = (cum[i] + cum[i + 1]) as f64 / 2.0 / total as f64;
                let m = sketch.quantile(mid).expect("non-empty sketch");
                m.max(t.lower_edge(i)).min(t.upper_edge(i))
            } else {
                t.center_of_bin(i)
            };
        }
        Ok(t)
    }

    /// Builds a table from pre-computed separators, filling bin statistics
    /// from `values` (which may be empty — bins then use range centers).
    pub fn from_parts(
        method: SeparatorMethod,
        alphabet: Alphabet,
        separators: Vec<f64>,
        values: &[f64],
    ) -> Result<Self> {
        let k = alphabet.size();
        if separators.len() != k - 1 {
            return Err(Error::SeparatorCount { expected: k - 1, got: separators.len() });
        }
        for (i, w) in separators.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(Error::NonMonotonicSeparators { index: i + 1 });
            }
        }
        for (i, s) in separators.iter().enumerate() {
            if !s.is_finite() {
                return Err(Error::InvalidParameter {
                    name: "separators",
                    reason: format!("separator {i} is not finite: {s}"),
                });
            }
        }

        let (mut value_min, mut value_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0u64; k];
        for &v in values {
            if !v.is_finite() {
                return Err(Error::InvalidParameter {
                    name: "values",
                    reason: format!("training value is not finite: {v}"),
                });
            }
            value_min = value_min.min(v);
            value_max = value_max.max(v);
            let idx = def3_bin_index(&separators, v);
            sums[idx] += v;
            counts[idx] += 1;
        }
        if values.is_empty() {
            // No training data: derive a plausible range from the separators.
            value_min = separators.first().copied().unwrap_or(0.0).min(0.0);
            value_max = separators.last().copied().unwrap_or(1.0);
            let span = (value_max - value_min).abs().max(1.0);
            value_max += span / k as f64;
        }

        let flat = FlatSeparators::new(&separators);
        let mut table = LookupTable {
            method,
            alphabet,
            separators,
            bin_means: vec![0.0; k],
            bin_counts: counts,
            value_min,
            value_max,
            flat,
        };
        for (i, &sum) in sums.iter().enumerate() {
            table.bin_means[i] = if table.bin_counts[i] > 0 {
                sum / table.bin_counts[i] as f64
            } else {
                table.center_of_bin(i)
            };
        }
        Ok(table)
    }

    /// Reassembles a table from wire-decoded parts (see [`crate::wire`]).
    ///
    /// The wire is untrusted, so this validates *more* than
    /// [`LookupTable::from_parts`]: separators must be **strictly**
    /// increasing (the invariant `separators::learn_separators` guarantees
    /// for every locally learned table — equal boundaries would let two bins
    /// claim the same range), the value range must satisfy
    /// `value_min ≤ value_max`, and bin means must be finite.
    pub fn from_wire_parts(
        method: SeparatorMethod,
        alphabet: Alphabet,
        separators: Vec<f64>,
        bin_means: Vec<f64>,
        bin_counts: Vec<u64>,
        value_min: f64,
        value_max: f64,
    ) -> Result<Self> {
        let k = alphabet.size();
        if bin_means.len() != k || bin_counts.len() != k {
            return Err(Error::WireFormat(format!(
                "table body has {} means / {} counts for k = {k}",
                bin_means.len(),
                bin_counts.len()
            )));
        }
        if !(value_min.is_finite() && value_max.is_finite()) {
            return Err(Error::WireFormat("non-finite value range".to_string()));
        }
        if value_min > value_max {
            return Err(Error::WireFormat(format!(
                "inverted value range: min {value_min} > max {value_max}"
            )));
        }
        for (i, w) in separators.windows(2).enumerate() {
            if w[1] <= w[0] {
                return Err(Error::WireFormat(format!(
                    "separators must be strictly increasing on the wire \
                     (separator {} = {} does not exceed separator {} = {})",
                    i + 1,
                    w[1],
                    i,
                    w[0]
                )));
            }
        }
        for (i, m) in bin_means.iter().enumerate() {
            if !m.is_finite() {
                return Err(Error::WireFormat(format!("bin mean {i} is not finite: {m}")));
            }
        }
        let mut table = Self::from_parts(method, alphabet, separators, &[])?;
        table.bin_means = bin_means;
        table.bin_counts = bin_counts;
        table.value_min = value_min;
        table.value_max = value_max;
        Ok(table)
    }

    /// Builds an expert/custom table from hand-chosen separators (the §3.2
    /// "low/high consumption" example is `custom(&[threshold], lo, hi)` with
    /// a 2-symbol alphabet).
    pub fn custom(separators: &[f64], value_min: f64, value_max: f64) -> Result<Self> {
        let k = separators.len() + 1;
        let alphabet = Alphabet::with_size(k)?;
        let mut t = Self::from_parts(SeparatorMethod::Uniform, alphabet, separators.to_vec(), &[])?;
        t.value_min = value_min;
        t.value_max = value_max;
        for i in 0..k {
            t.bin_means[i] = t.center_of_bin(i);
        }
        Ok(t)
    }

    /// The separator method the table was learned with.
    pub fn method(&self) -> SeparatorMethod {
        self.method
    }

    /// The table's alphabet.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// Alphabet size `k`.
    pub fn size(&self) -> usize {
        self.alphabet.size()
    }

    /// Symbol resolution in bits.
    pub fn resolution_bits(&self) -> u8 {
        self.alphabet.resolution_bits()
    }

    /// The separators `β_1 ≤ … ≤ β_{k-1}`.
    pub fn separators(&self) -> &[f64] {
        &self.separators
    }

    /// Observed training range `(min, max)`.
    pub fn value_range(&self) -> (f64, f64) {
        (self.value_min, self.value_max)
    }

    /// Encodes one value per Definition 3:
    /// `v ≤ β_1 ⇒ a_1`; `v > β_{k-1} ⇒ a_k`; else `β_{j-1} < v ≤ β_j ⇒ a_j`.
    ///
    /// `±∞` encode deterministically to the outermost bins (`-∞ ⇒ a_1`,
    /// `+∞ ⇒ a_k`). `NaN` is rejected with [`Error::NonFiniteValue`]:
    /// every separator comparison is false for NaN, so the search would
    /// silently emit `a_1` for a value that belongs to *no* bin (NaN can
    /// still reach here via `TimeSeries::from_samples_unchecked` and the
    /// public API even though the normal ingest paths reject it).
    pub fn encode_value(&self, v: f64) -> Result<Symbol> {
        if v.is_nan() {
            return Err(Error::NonFiniteValue { index: 0 });
        }
        Ok(Symbol::from_rank_unchecked(self.bin_of(v) as u16, self.resolution_bits()))
    }

    /// The 0-based bin of a non-NaN `v`: the flat branchless scan for
    /// k ≤ 32, binary search above, with the search kept as the
    /// debug-assert reference for the flat path.
    #[inline]
    fn bin_of(&self, v: f64) -> usize {
        match &self.flat {
            Some(flat) => {
                let idx = flat.bin_index(v);
                debug_assert_eq!(
                    idx,
                    def3_bin_index(&self.separators, v),
                    "flat scan diverged from the binary-search reference at v={v}"
                );
                idx
            }
            None => def3_bin_index(&self.separators, v),
        }
    }

    /// Batch [`encode_value`](Self::encode_value) over a whole column:
    /// clears `out` and fills it with one symbol per value, in order.
    ///
    /// This is the encode hot path: the NaN screen runs as one branchless
    /// pass over the column (the index of the first NaN is only located
    /// after the scan, in the error case), and the per-value
    /// `Symbol::from_rank` range re-validation is dropped — the bin index
    /// of a `k`-bin table always fits the table's own resolution.
    /// Output is bit-identical to the scalar loop for every non-NaN input,
    /// `±∞` and subnormals included.
    pub fn encode_batch_into(&self, values: &[f64], out: &mut Vec<Symbol>) -> Result<()> {
        self.encode_column_into(values.iter().copied(), values.len(), out)
    }

    /// Allocating convenience for [`encode_batch_into`](Self::encode_batch_into).
    pub fn encode_slice(&self, values: &[f64]) -> Result<Vec<Symbol>> {
        let mut out = Vec::new();
        self.encode_batch_into(values, &mut out)?;
        Ok(out)
    }

    /// [`encode_batch_into`](Self::encode_batch_into) over the value column
    /// of interleaved samples, so `horizontal_segmentation_into` can feed
    /// its `(t, v)` storage straight through the batch path without
    /// gathering a separate `f64` column first.
    pub(crate) fn encode_samples_into(
        &self,
        samples: &[crate::timeseries::Sample],
        out: &mut Vec<Symbol>,
    ) -> Result<()> {
        self.encode_column_into(samples.iter().map(|s| s.v), samples.len(), out)
    }

    /// The shared batch-encode body: a branchless NaN screen over the whole
    /// column, then one unvalidated symbol per value (see
    /// [`encode_batch_into`](Self::encode_batch_into) for the contract).
    #[inline]
    fn encode_column_into<I>(&self, values: I, len: usize, out: &mut Vec<Symbol>) -> Result<()>
    where
        I: Iterator<Item = f64> + Clone,
    {
        let mut nan_seen = false;
        for v in values.clone() {
            nan_seen |= v.is_nan();
        }
        if nan_seen {
            let index = values.clone().position(f64::is_nan).expect("NaN was seen");
            debug_assert!(false, "NaN reached the batch encode path at index {index}");
            return Err(Error::NonFiniteValue { index });
        }
        out.clear();
        out.reserve(len);
        let bits = self.resolution_bits();
        match &self.flat {
            // Few boundaries: the columnar kernel's `k−1` vectorized passes
            // beat everything. Gather the iterator into a stack chunk, bin
            // the whole chunk, then mint the symbols
            // (see `FlatSeparators::bin_indices`).
            Some(flat) if flat.len() <= COLUMNAR_MAX_SEPARATORS => {
                let mut buf = [0.0f64; ENCODE_CHUNK];
                let mut counts = [0u64; ENCODE_CHUNK];
                let mut values = values;
                loop {
                    let mut m = 0;
                    for v in values.by_ref() {
                        buf[m] = v;
                        m += 1;
                        if m == ENCODE_CHUNK {
                            break;
                        }
                    }
                    if m == 0 {
                        break;
                    }
                    flat.bin_indices(&buf[..m], &mut counts);
                    for (&idx, &v) in counts[..m].iter().zip(&buf[..m]) {
                        debug_assert_eq!(
                            idx as usize,
                            def3_bin_index(&self.separators, v),
                            "columnar kernel diverged from the reference at v={v}"
                        );
                        out.push(Symbol::from_rank_unchecked(idx as u16, bits));
                    }
                    if m < ENCODE_CHUNK {
                        break;
                    }
                }
            }
            // 8–15 boundaries: the four-step branchless search (one
            // dependent load shorter than the full ladder). The dispatch
            // happens here, once per batch — a per-value `len` guard inside
            // the ladder was measured 4× slower.
            Some(flat) if flat.len() <= 15 => {
                self.ladder_chunks(values, bits, out, |v| flat.bin_index_narrow(v));
            }
            // More boundaries, still ≤ 32 slots: the fixed five-step
            // branchless search. Chunking through a stack buffer lets the
            // independent per-value searches pipeline and the bulk `extend`
            // skip the per-push capacity check.
            Some(flat) => {
                self.ladder_chunks(values, bits, out, |v| flat.bin_index(v));
            }
            None => {
                for v in values {
                    let idx = def3_bin_index(&self.separators, v);
                    out.push(Symbol::from_rank_unchecked(idx as u16, bits));
                }
            }
        }
        Ok(())
    }

    /// The chunked drive loop shared by both branchless-ladder regimes:
    /// gathers the iterator into a stack buffer, bins each value with
    /// `bin` (monomorphized per ladder, so each call site compiles to its
    /// own straight-line loop), and bulk-extends `out`.
    #[inline]
    fn ladder_chunks<I, F>(&self, mut values: I, bits: u8, out: &mut Vec<Symbol>, bin: F)
    where
        I: Iterator<Item = f64>,
        F: Fn(f64) -> usize,
    {
        let mut buf = [0.0f64; ENCODE_CHUNK];
        loop {
            let mut m = 0;
            for v in values.by_ref() {
                buf[m] = v;
                m += 1;
                if m == ENCODE_CHUNK {
                    break;
                }
            }
            if m == 0 {
                break;
            }
            out.extend(buf[..m].iter().map(|&v| {
                let idx = bin(v);
                debug_assert_eq!(
                    idx,
                    def3_bin_index(&self.separators, v),
                    "flat search diverged from the reference at v={v}"
                );
                Symbol::from_rank_unchecked(idx as u16, bits)
            }));
            if m < ENCODE_CHUNK {
                break;
            }
        }
    }

    /// Decodes a symbol of the table's own resolution (or any coarser
    /// resolution, thanks to the prefix structure) back to a real value.
    pub fn decode_symbol(&self, sym: Symbol, semantics: SymbolSemantics) -> Result<f64> {
        let bits = self.resolution_bits();
        if sym.resolution_bits() > bits {
            return Err(Error::ResolutionMismatch { left: sym.resolution_bits(), right: bits });
        }
        // A coarser symbol covers a contiguous run of this table's bins.
        let shift = bits - sym.resolution_bits();
        let first_bin = (sym.rank() as usize) << shift;
        let last_bin = first_bin + (1usize << shift) - 1;
        match semantics {
            SymbolSemantics::RangeCenter => {
                let lo = self.lower_edge(first_bin);
                let hi = self.upper_edge(last_bin);
                Ok((lo + hi) / 2.0)
            }
            SymbolSemantics::RangeMean => {
                let total: u64 = self.bin_counts[first_bin..=last_bin].iter().sum();
                if total == 0 {
                    let lo = self.lower_edge(first_bin);
                    let hi = self.upper_edge(last_bin);
                    return Ok((lo + hi) / 2.0);
                }
                let weighted: f64 = (first_bin..=last_bin)
                    .map(|i| self.bin_means[i] * self.bin_counts[i] as f64)
                    .sum();
                Ok(weighted / total as f64)
            }
        }
    }

    /// The value range `(lo, hi]`-style covered by `sym` (edges clamped to
    /// the observed training range for the outer bins).
    pub fn range_of(&self, sym: Symbol) -> Result<(f64, f64)> {
        let bits = self.resolution_bits();
        if sym.resolution_bits() > bits {
            return Err(Error::ResolutionMismatch { left: sym.resolution_bits(), right: bits });
        }
        let shift = bits - sym.resolution_bits();
        let first_bin = (sym.rank() as usize) << shift;
        let last_bin = first_bin + (1usize << shift) - 1;
        Ok((self.lower_edge(first_bin), self.upper_edge(last_bin)))
    }

    fn lower_edge(&self, bin: usize) -> f64 {
        if bin == 0 {
            self.value_min.min(self.separators.first().copied().unwrap_or(self.value_min))
        } else {
            self.separators[bin - 1]
        }
    }

    fn upper_edge(&self, bin: usize) -> f64 {
        if bin == self.size() - 1 {
            self.value_max.max(self.separators.last().copied().unwrap_or(self.value_max))
        } else {
            self.separators[bin]
        }
    }

    fn center_of_bin(&self, bin: usize) -> f64 {
        (self.lower_edge(bin) + self.upper_edge(bin)) / 2.0
    }

    /// Training observation count per bin.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bin_counts
    }

    /// Mean training value per bin.
    pub fn bin_means(&self) -> &[f64] {
        &self.bin_means
    }

    /// Derives the coarser table with `to_bits` resolution by keeping every
    /// second separator (works because quantile and uniform boundaries nest
    /// when `k` halves). Satisfies: encoding with the coarse table equals
    /// encoding with this table then truncating the symbol (§4 flexibility;
    /// property-tested).
    pub fn coarsen(&self, to_bits: u8) -> Result<LookupTable> {
        let bits = self.resolution_bits();
        if to_bits == 0 || to_bits > bits {
            return Err(Error::InvalidResolution(to_bits));
        }
        if to_bits == bits {
            return Ok(self.clone());
        }
        let step = 1usize << (bits - to_bits);
        let new_k = 1usize << to_bits;
        // Keep separators at original (1-based) positions step, 2*step, ...
        let separators: Vec<f64> = (1..new_k).map(|j| self.separators[j * step - 1]).collect();
        let mut bin_means = Vec::with_capacity(new_k);
        let mut bin_counts = Vec::with_capacity(new_k);
        for j in 0..new_k {
            let bins = j * step..(j + 1) * step;
            let total: u64 = self.bin_counts[bins.clone()].iter().sum();
            let mean = if total > 0 {
                self.bin_counts[bins.clone()]
                    .iter()
                    .zip(&self.bin_means[bins.clone()])
                    .map(|(&c, &m)| c as f64 * m)
                    .sum::<f64>()
                    / total as f64
            } else {
                f64::NAN // fixed below once we can call center_of_bin
            };
            bin_means.push(mean);
            bin_counts.push(total);
        }
        let flat = FlatSeparators::new(&separators);
        let mut out = LookupTable {
            method: self.method,
            alphabet: Alphabet::with_resolution(to_bits)?,
            separators,
            bin_means,
            bin_counts,
            value_min: self.value_min,
            value_max: self.value_max,
            flat,
        };
        for i in 0..new_k {
            if out.bin_means[i].is_nan() {
                out.bin_means[i] = out.center_of_bin(i);
            }
        }
        Ok(out)
    }

    /// Entropy (bits) of the symbol distribution this table induced on its
    /// training data. Median tables maximize this by construction (§2.2b:
    /// "aims to maximize the entropy of the generated symbols").
    pub fn training_entropy_bits(&self) -> f64 {
        let total: u64 = self.bin_counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.bin_counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.log2()
            })
            .sum()
    }

    /// Serializes to the JSON wire format used when shipping the table from
    /// the sensor to the aggregation server.
    pub fn to_json(&self) -> Result<String> {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        Ok(w.finish())
    }

    /// Parses the JSON wire format.
    pub fn from_json(s: &str) -> Result<Self> {
        let doc = json::parse(s).map_err(Error::Serde)?;
        Self::from_json_value(&doc)
    }

    /// Writes this table as one JSON value into `w` (shared with the
    /// [`crate::encoder::SensorMessage`] wire encoding).
    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("method").string(method_variant(self.method));
        w.key("alphabet").begin_object();
        w.key("resolution_bits").u64(self.alphabet.resolution_bits() as u64);
        w.end_object();
        w.key("separators").f64_array(&self.separators);
        w.key("bin_means").f64_array(&self.bin_means);
        w.key("bin_counts").u64_array(&self.bin_counts);
        w.key("value_min").f64(self.value_min);
        w.key("value_max").f64(self.value_max);
        w.end_object();
    }

    /// Rebuilds a table from a parsed JSON value, validating shapes and
    /// separator monotonicity like [`LookupTable::from_wire_parts`].
    pub(crate) fn from_json_value(doc: &JsonValue) -> Result<Self> {
        let field =
            |key: &str| doc.get(key).ok_or_else(|| Error::Serde(format!("missing field `{key}`")));
        let method = field("method")?
            .as_str()
            .and_then(method_from_variant)
            .ok_or_else(|| Error::Serde("invalid `method`".to_string()))?;
        let bits = field("alphabet")?
            .get("resolution_bits")
            .and_then(JsonValue::as_u64)
            .filter(|&b| b <= u8::MAX as u64)
            .ok_or_else(|| Error::Serde("invalid `alphabet`".to_string()))?;
        let f64_field = |key: &str| -> Result<Vec<f64>> {
            field(key)?
                .as_array()
                .ok_or_else(|| Error::Serde(format!("`{key}` is not an array")))?
                .iter()
                .map(|v| v.as_f64().ok_or_else(|| Error::Serde(format!("non-number in `{key}`"))))
                .collect()
        };
        let bin_counts: Vec<u64> = field("bin_counts")?
            .as_array()
            .ok_or_else(|| Error::Serde("`bin_counts` is not an array".to_string()))?
            .iter()
            .map(|v| {
                v.as_u64().ok_or_else(|| Error::Serde("non-integer in `bin_counts`".to_string()))
            })
            .collect::<Result<_>>()?;
        let value_min = field("value_min")?
            .as_f64()
            .ok_or_else(|| Error::Serde("invalid `value_min`".to_string()))?;
        let value_max = field("value_max")?
            .as_f64()
            .ok_or_else(|| Error::Serde("invalid `value_max`".to_string()))?;
        Self::from_wire_parts(
            method,
            Alphabet::with_resolution(bits as u8)?,
            f64_field("separators")?,
            f64_field("bin_means")?,
            bin_counts,
            value_min,
            value_max,
        )
    }

    /// Approximate wire size in bytes of the serialized table (for the §2.3
    /// compression accounting, where the table cost "can be amortized over
    /// time").
    pub fn wire_size_bytes(&self) -> usize {
        self.to_json().map(|s| s.len()).unwrap_or(0)
    }
}

/// JSON tag for a method (the Rust variant name, matching what serde's
/// derive produced before the offline rewrite — old captures keep parsing).
fn method_variant(m: SeparatorMethod) -> &'static str {
    match m {
        SeparatorMethod::Uniform => "Uniform",
        SeparatorMethod::Median => "Median",
        SeparatorMethod::DistinctMedian => "DistinctMedian",
    }
}

fn method_from_variant(s: &str) -> Option<SeparatorMethod> {
    Some(match s {
        "Uniform" => SeparatorMethod::Uniform,
        "Median" => SeparatorMethod::Median,
        "DistinctMedian" => SeparatorMethod::DistinctMedian,
        _ => return None,
    })
}

/// Smallest float strictly greater than finite `x` (bit-increment nudge used
/// to pull collapsed sketch separators apart).
fn next_up(x: f64) -> f64 {
    if x == 0.0 {
        return f64::from_bits(1); // smallest positive subnormal
    }
    if x > 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        f64::from_bits(x.to_bits() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alphabet(k: usize) -> Alphabet {
        Alphabet::with_size(k).unwrap()
    }

    #[test]
    fn learn_from_sample_is_bit_identical_to_learn() {
        let values: Vec<f64> =
            (0..500).map(|i| ((i * 37) % 97) as f64 + f64::from(i % 3) * 0.125).collect();
        let sample = SortedSample::new(&values).unwrap();
        for method in SeparatorMethod::ALL {
            for k in [2, 4, 16, 64] {
                let direct = LookupTable::learn(method, alphabet(k), &values).unwrap();
                let cached = LookupTable::learn_from_sample(method, alphabet(k), &sample).unwrap();
                assert_eq!(direct.separators(), cached.separators(), "{method} k={k}");
                assert_eq!(direct.bin_means(), cached.bin_means(), "{method} k={k}");
            }
        }
    }

    #[test]
    fn learn_from_sketch_tracks_exact_learn() {
        let values: Vec<f64> = (0..4000).map(|i| ((i * 37) % 997) as f64).collect();
        let mut sk = QuantileSketch::new(256).unwrap();
        for &v in &values {
            sk.update(v).unwrap();
        }
        for method in [SeparatorMethod::Median, SeparatorMethod::Uniform] {
            let exact = LookupTable::learn(method, alphabet(8), &values).unwrap();
            let approx = LookupTable::learn_from_sketch(method, alphabet(8), &sk).unwrap();
            let (elo, ehi) = exact.value_range();
            let (alo, ahi) = approx.value_range();
            assert_eq!((alo, ahi), (elo, ehi), "{method}: range is exact (min/max survive)");
            for (e, a) in exact.separators().iter().zip(approx.separators()) {
                assert!(
                    (e - a).abs() < 997.0 * 0.1,
                    "{method}: separator {a} strays from exact {e}"
                );
            }
            // Every separator strictly increasing — the wire invariant.
            for w in approx.separators().windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn learn_from_sketch_handles_constant_and_duplicate_streams() {
        let mut sk = QuantileSketch::new(32).unwrap();
        for _ in 0..5000 {
            sk.update(42.0).unwrap();
        }
        let t = LookupTable::learn_from_sketch(SeparatorMethod::Median, alphabet(4), &sk).unwrap();
        for w in t.separators().windows(2) {
            assert!(w[1] > w[0], "collapsed separators must be nudged strictly apart");
        }
        assert_eq!(t.encode_value(42.0).unwrap().resolution_bits(), 2);
        // The table survives a wire roundtrip (strict separator validation).
        let rt = LookupTable::from_wire_parts(
            t.method(),
            t.alphabet(),
            t.separators().to_vec(),
            t.bin_means().to_vec(),
            t.bin_counts().to_vec(),
            t.value_range().0,
            t.value_range().1,
        )
        .unwrap();
        assert_eq!(rt.separators(), t.separators());
    }

    #[test]
    fn learn_from_sketch_rejects_empty_and_infinite_range() {
        let sk = QuantileSketch::new(16).unwrap();
        assert!(LookupTable::learn_from_sketch(SeparatorMethod::Median, alphabet(4), &sk).is_err());
        let mut sk = QuantileSketch::new(16).unwrap();
        sk.update(f64::INFINITY).unwrap();
        sk.update(1.0).unwrap();
        assert!(LookupTable::learn_from_sketch(SeparatorMethod::Median, alphabet(4), &sk).is_err());
    }

    #[test]
    fn encode_respects_definition_3() {
        // separators 100, 200, 300 with k=4.
        let t = LookupTable::from_parts(
            SeparatorMethod::Uniform,
            alphabet(4),
            vec![100.0, 200.0, 300.0],
            &[0.0, 400.0],
        )
        .unwrap();
        assert_eq!(t.encode_value(50.0).unwrap().rank(), 0);
        assert_eq!(
            t.encode_value(100.0).unwrap().rank(),
            0,
            "v ≤ β1 ⇒ a1 (boundary inclusive below)"
        );
        assert_eq!(t.encode_value(100.1).unwrap().rank(), 1);
        assert_eq!(t.encode_value(200.0).unwrap().rank(), 1);
        assert_eq!(t.encode_value(300.0).unwrap().rank(), 2);
        assert_eq!(t.encode_value(300.1).unwrap().rank(), 3, "v > β_{{k-1}} ⇒ a_k");
        assert_eq!(t.encode_value(1e9).unwrap().rank(), 3);
        assert_eq!(t.encode_value(-1e9).unwrap().rank(), 0);
    }

    #[test]
    fn learn_uniform_from_values() {
        let vals: Vec<f64> = (0..=800).map(|x| x as f64).collect();
        let t = LookupTable::learn(SeparatorMethod::Uniform, alphabet(8), &vals).unwrap();
        assert_eq!(t.separators(), &[100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0]);
        assert_eq!(t.value_range(), (0.0, 800.0));
    }

    #[test]
    fn from_parts_validates() {
        assert!(matches!(
            LookupTable::from_parts(SeparatorMethod::Uniform, alphabet(4), vec![1.0], &[]),
            Err(Error::SeparatorCount { expected: 3, got: 1 })
        ));
        assert!(matches!(
            LookupTable::from_parts(
                SeparatorMethod::Uniform,
                alphabet(4),
                vec![3.0, 2.0, 4.0],
                &[]
            ),
            Err(Error::NonMonotonicSeparators { index: 1 })
        ));
        assert!(LookupTable::from_parts(
            SeparatorMethod::Uniform,
            alphabet(2),
            vec![f64::NAN],
            &[]
        )
        .is_err());
        assert!(LookupTable::from_parts(
            SeparatorMethod::Uniform,
            alphabet(2),
            vec![1.0],
            &[f64::INFINITY]
        )
        .is_err());
    }

    #[test]
    fn from_wire_parts_rejects_tampered_invariants() {
        let ok = |seps: Vec<f64>, means: Vec<f64>, lo: f64, hi: f64| {
            LookupTable::from_wire_parts(
                SeparatorMethod::Uniform,
                alphabet(4),
                seps,
                means,
                vec![1; 4],
                lo,
                hi,
            )
        };
        // Baseline accepted.
        assert!(ok(vec![1.0, 2.0, 3.0], vec![0.5; 4], 0.0, 4.0).is_ok());
        // Equal separators: non-strict, rejected (learned tables nudge
        // collapsed quantiles apart; the wire must not bypass that).
        assert!(ok(vec![1.0, 1.0, 3.0], vec![0.5; 4], 0.0, 4.0).is_err());
        // Decreasing separators: rejected.
        assert!(ok(vec![3.0, 2.0, 1.0], vec![0.5; 4], 0.0, 4.0).is_err());
        // Inverted value range: rejected.
        assert!(ok(vec![1.0, 2.0, 3.0], vec![0.5; 4], 4.0, 0.0).is_err());
        // Non-finite bin mean: rejected.
        assert!(ok(vec![1.0, 2.0, 3.0], vec![0.5, f64::NAN, 0.5, 0.5], 0.0, 4.0).is_err());
        // Degenerate-but-legal constant range still accepted.
        assert!(ok(vec![1.0, 2.0, 3.0], vec![0.5; 4], 2.0, 2.0).is_ok());
    }

    #[test]
    fn decode_center_is_bin_midpoint() {
        let t = LookupTable::from_parts(
            SeparatorMethod::Uniform,
            alphabet(4),
            vec![100.0, 200.0, 300.0],
            &[0.0, 400.0],
        )
        .unwrap();
        let s1 = t.encode_value(150.0).unwrap();
        assert_eq!(t.decode_symbol(s1, SymbolSemantics::RangeCenter).unwrap(), 150.0);
        let s0 = t.encode_value(10.0).unwrap();
        assert_eq!(t.decode_symbol(s0, SymbolSemantics::RangeCenter).unwrap(), 50.0);
        let s3 = t.encode_value(350.0).unwrap();
        assert_eq!(t.decode_symbol(s3, SymbolSemantics::RangeCenter).unwrap(), 350.0);
    }

    #[test]
    fn decode_mean_uses_training_values() {
        let t = LookupTable::from_parts(
            SeparatorMethod::Uniform,
            alphabet(2),
            vec![100.0],
            &[10.0, 20.0, 500.0],
        )
        .unwrap();
        let lo = t.encode_value(15.0).unwrap();
        assert_eq!(t.decode_symbol(lo, SymbolSemantics::RangeMean).unwrap(), 15.0);
        let hi = t.encode_value(400.0).unwrap();
        assert_eq!(t.decode_symbol(hi, SymbolSemantics::RangeMean).unwrap(), 500.0);
    }

    #[test]
    fn decode_rejects_finer_symbols() {
        let t =
            LookupTable::from_parts(SeparatorMethod::Uniform, alphabet(2), vec![1.0], &[]).unwrap();
        let fine = Symbol::from_rank(0, 4).unwrap();
        assert!(t.decode_symbol(fine, SymbolSemantics::RangeCenter).is_err());
        assert!(t.range_of(fine).is_err());
    }

    #[test]
    fn coarser_symbol_decodes_through_finer_table() {
        let vals: Vec<f64> = (0..=800).map(|x| x as f64).collect();
        let t = LookupTable::learn(SeparatorMethod::Uniform, alphabet(8), &vals).unwrap();
        // '0' covers bins 0..4 = range (0, 400].
        let s: Symbol = "0".parse().unwrap();
        let (lo, hi) = t.range_of(s).unwrap();
        assert_eq!((lo, hi), (0.0, 400.0));
        assert_eq!(t.decode_symbol(s, SymbolSemantics::RangeCenter).unwrap(), 200.0);
    }

    #[test]
    fn coarsen_commutes_with_truncate() {
        // Core §4 flexibility invariant: encode-then-truncate equals
        // encode-with-coarsened-table.
        let vals: Vec<f64> = (0..5000).map(|i| ((i * 131) % 997) as f64).collect();
        for method in SeparatorMethod::ALL {
            let t16 = LookupTable::learn(method, alphabet(16), &vals).unwrap();
            for to_bits in [1u8, 2, 3] {
                let coarse = t16.coarsen(to_bits).unwrap();
                for &v in vals.iter().step_by(17) {
                    let fine = t16.encode_value(v).unwrap();
                    let truncated = fine.truncate(to_bits).unwrap();
                    let direct = coarse.encode_value(v).unwrap();
                    assert_eq!(truncated, direct, "{method} v={v} to_bits={to_bits}");
                }
            }
        }
    }

    #[test]
    fn coarsen_preserves_counts_and_means() {
        let vals: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        let t = LookupTable::learn(SeparatorMethod::Median, alphabet(8), &vals).unwrap();
        let c = t.coarsen(2).unwrap();
        assert_eq!(c.bin_counts().iter().sum::<u64>(), 1000);
        let global_mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let reconstructed: f64 =
            c.bin_counts().iter().zip(c.bin_means()).map(|(&n, &m)| n as f64 * m).sum::<f64>()
                / 1000.0;
        assert!((reconstructed - global_mean).abs() < 1e-9);
    }

    #[test]
    fn median_table_maximizes_entropy() {
        let vals: Vec<f64> = (0..4096).map(|i| ((i * 7919) % 65536) as f64 / 65536.0).collect();
        let vals: Vec<f64> = vals.iter().map(|v| v * v * 1000.0).collect(); // skewed
        let med = LookupTable::learn(SeparatorMethod::Median, alphabet(16), &vals).unwrap();
        let uni = LookupTable::learn(SeparatorMethod::Uniform, alphabet(16), &vals).unwrap();
        assert!(
            med.training_entropy_bits() >= uni.training_entropy_bits(),
            "median {} vs uniform {}",
            med.training_entropy_bits(),
            uni.training_entropy_bits()
        );
        assert!(med.training_entropy_bits() > 3.9, "near log2(16)=4");
    }

    #[test]
    fn custom_low_high_table() {
        // §3.2 expert example: low/high threshold at 500 W.
        let t = LookupTable::custom(&[500.0], 0.0, 3000.0).unwrap();
        assert_eq!(t.size(), 2);
        assert_eq!(t.encode_value(499.0).unwrap().to_string(), "0");
        assert_eq!(t.encode_value(501.0).unwrap().to_string(), "1");
        assert_eq!(
            t.decode_symbol("0".parse().unwrap(), SymbolSemantics::RangeCenter).unwrap(),
            250.0
        );
        assert_eq!(
            t.decode_symbol("1".parse().unwrap(), SymbolSemantics::RangeCenter).unwrap(),
            1750.0
        );
    }

    #[test]
    fn json_roundtrip() {
        let vals: Vec<f64> = (0..100).map(|x| x as f64).collect();
        let t = LookupTable::learn(SeparatorMethod::DistinctMedian, alphabet(8), &vals).unwrap();
        let json = t.to_json().unwrap();
        let back = LookupTable::from_json(&json).unwrap();
        assert_eq!(t, back);
        assert!(t.wire_size_bytes() > 0);
        assert!(LookupTable::from_json("not json").is_err());
    }

    #[test]
    fn boundary_values_map_to_lower_bin_deterministically() {
        // Audit of Def. 3's tie rule: a value exactly equal to separator β_j
        // always encodes as a_j — the LOWER of the two adjacent symbols
        // (`β_{j-1} < v ≤ β_j ⇒ a_j`) — for every boundary of every method.
        let vals: Vec<f64> = (0..1000).map(|i| ((i * 37) % 500) as f64).collect();
        for method in SeparatorMethod::ALL {
            let t = LookupTable::learn(method, alphabet(8), &vals).unwrap();
            for (j, &b) in t.separators().iter().enumerate() {
                assert_eq!(t.encode_value(b).unwrap().rank() as usize, j, "{method} β_{}", j + 1);
                // Infinitesimally above the boundary belongs to the next bin.
                assert_eq!(
                    t.encode_value(b.next_up()).unwrap().rank() as usize,
                    j + 1,
                    "{method} just above β_{}",
                    j + 1
                );
            }
        }
    }

    #[test]
    fn constant_data_encodes_to_first_symbol() {
        let vals = vec![42.0; 50];
        let t = LookupTable::learn(SeparatorMethod::Median, alphabet(4), &vals).unwrap();
        assert_eq!(t.encode_value(42.0).unwrap().rank(), 0);
    }

    #[test]
    fn nan_is_a_typed_error_not_a_silent_a1() {
        // The old scalar path quietly encoded NaN as a_1 (partition_point
        // sees every `b < NaN` comparison as false). It is now a typed error.
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let t = LookupTable::learn(SeparatorMethod::Median, alphabet(8), &vals).unwrap();
        match t.encode_value(f64::NAN) {
            Err(crate::error::Error::NonFiniteValue { index: 0 }) => {}
            other => panic!("expected NonFiniteValue, got {other:?}"),
        }
        // ±∞ stay encodable: they are ordered and land in the edge bins.
        assert_eq!(t.encode_value(f64::NEG_INFINITY).unwrap().rank(), 0);
        assert_eq!(t.encode_value(f64::INFINITY).unwrap().rank() as usize, t.size() - 1);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn batch_nan_reports_the_offending_index() {
        // Release builds surface the same typed error from the batch path,
        // pointing at the first NaN. (Debug builds fire a debug_assert
        // instead — NaN should have been sanitized long before encode.)
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let t = LookupTable::learn(SeparatorMethod::Median, alphabet(8), &vals).unwrap();
        let mut out = Vec::new();
        match t.encode_batch_into(&[1.0, 2.0, f64::NAN, 3.0, f64::NAN], &mut out) {
            Err(crate::error::Error::NonFiniteValue { index: 2 }) => {}
            other => panic!("expected NonFiniteValue at 2, got {other:?}"),
        }
    }

    #[test]
    fn batch_encode_matches_scalar_encode() {
        // Batch and scalar paths are the same function of the separators —
        // including on a k=64 table, which exceeds the 32-slot flat scan and
        // falls back to binary search.
        let vals: Vec<f64> = (0..4000).map(|i| ((i * 37) % 1999) as f64 / 3.0).collect();
        for k in [2usize, 8, 32, 64] {
            let t = LookupTable::learn(SeparatorMethod::Median, alphabet(k), &vals).unwrap();
            let mut probes: Vec<f64> = vals.iter().step_by(7).copied().collect();
            probes.extend_from_slice(t.separators());
            probes.extend([f64::NEG_INFINITY, f64::INFINITY, 0.0, -0.0]);
            let batch = t.encode_slice(&probes).unwrap();
            for (i, &v) in probes.iter().enumerate() {
                assert_eq!(batch[i], t.encode_value(v).unwrap(), "k={k} v={v}");
            }
        }
    }
}
