//! Vertical segmentation (paper Definition 2): temporal aggregation that
//! reduces data numerosity. The paper averages `n` consecutive samples; we
//! also provide sum/min/max/first/last aggregators and a wall-clock-aligned
//! windowed variant that handles gaps, which the experiment harness uses for
//! the 15-minute and 1-hour aggregation levels.

use crate::error::{Error, Result};
use crate::timeseries::{Sample, TimeSeries, Timestamp};

/// How to aggregate the samples of one vertical segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregation {
    /// Arithmetic mean (the paper's choice, Definition 2).
    Mean,
    /// Sum of values (useful for energy rather than power).
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// First value of the segment.
    First,
    /// Last value of the segment.
    Last,
}

impl Aggregation {
    /// Folds one segment, doing only the work the variant needs (`None` for
    /// an empty segment). The old fold accumulated sum/first/last/min/max
    /// unconditionally for *every* variant on every sample; the per-variant
    /// split keeps the hot Mean loop down to one add per value, a chunked
    /// body the compiler can keep tight. Mean and Sum still accumulate
    /// strictly left to right — `f64` addition is not associative, so any
    /// reordering (including SIMD lane splits) would break the repo-wide
    /// byte-identical-results contract. Min and Max are order-insensitive
    /// and free to vectorize.
    fn fold(self, mut values: impl Iterator<Item = f64>) -> Option<f64> {
        match self {
            Aggregation::Mean => {
                let mut n = 0u64;
                let mut acc = 0.0f64;
                for v in values {
                    n += 1;
                    acc += v;
                }
                (n > 0).then(|| acc / n as f64)
            }
            Aggregation::Sum => {
                let mut any = false;
                let mut acc = 0.0f64;
                for v in values {
                    any = true;
                    acc += v;
                }
                any.then_some(acc)
            }
            Aggregation::Min => {
                let mut any = false;
                let mut min = f64::INFINITY;
                for v in values {
                    any = true;
                    min = min.min(v);
                }
                any.then_some(min)
            }
            Aggregation::Max => {
                let mut any = false;
                let mut max = f64::NEG_INFINITY;
                for v in values {
                    any = true;
                    max = max.max(v);
                }
                any.then_some(max)
            }
            Aggregation::First => values.next(),
            Aggregation::Last => values.last(),
        }
    }
}

/// Count-based vertical segmentation, exactly Definition 2: groups every `n`
/// consecutive samples, stamps the aggregate with the timestamp of the
/// segment's *last* sample (`t̄_i = t_{i·n}`), and drops a trailing partial
/// segment (the definition only produces full segments).
pub fn vertical_segmentation(
    series: &TimeSeries,
    n: usize,
    agg: Aggregation,
) -> Result<TimeSeries> {
    let mut out = TimeSeries::with_capacity(series.len() / n.max(1));
    vertical_segmentation_into(series, n, agg, &mut out)?;
    Ok(out)
}

/// Allocation-reusing variant of [`vertical_segmentation`]: clears `out` and
/// fills it in place, so a worker thread can amortise its buffers across many
/// series.
pub fn vertical_segmentation_into(
    series: &TimeSeries,
    n: usize,
    agg: Aggregation,
    out: &mut TimeSeries,
) -> Result<()> {
    out.clear();
    if n == 0 {
        return Err(Error::InvalidParameter { name: "n", reason: "must be positive".to_string() });
    }
    for chunk in series.samples().chunks_exact(n) {
        let v = agg.fold(chunk.iter().map(|s| s.v)).expect("chunk_exact is non-empty");
        out.push(chunk[n - 1].t, v)?;
    }
    Ok(())
}

/// Wall-clock windowed aggregation: groups samples into `[w·window, (w+1)·window)`
/// buckets aligned to the epoch, stamps each aggregate with the *window start*,
/// and emits only windows whose sample count reaches `min_samples` (gap
/// tolerance). This is the practical variant the experiments use for "15
/// minutes" and "1 hour" aggregation over gappy meter data.
pub fn aggregate_by_window(
    series: &TimeSeries,
    window_secs: i64,
    agg: Aggregation,
    min_samples: usize,
) -> Result<TimeSeries> {
    let mut out = TimeSeries::new();
    aggregate_by_window_into(series, window_secs, agg, min_samples, &mut out)?;
    Ok(out)
}

/// Allocation-reusing variant of [`aggregate_by_window`]: clears `out` and
/// fills it in place.
pub fn aggregate_by_window_into(
    series: &TimeSeries,
    window_secs: i64,
    agg: Aggregation,
    min_samples: usize,
    out: &mut TimeSeries,
) -> Result<()> {
    out.clear();
    if window_secs <= 0 {
        return Err(Error::InvalidParameter {
            name: "window_secs",
            reason: format!("must be positive, got {window_secs}"),
        });
    }
    let min_samples = min_samples.max(1);
    let mut bucket: Vec<f64> = Vec::new();
    let mut bucket_start: Option<Timestamp> = None;

    let flush = |start: Timestamp, bucket: &mut Vec<f64>, out: &mut TimeSeries| -> Result<()> {
        if bucket.len() >= min_samples {
            let v = agg.fold(bucket.iter().copied()).expect("non-empty bucket");
            out.push(start, v)?;
        }
        bucket.clear();
        Ok(())
    };

    for &Sample { t, v } in series.samples() {
        let start = t.div_euclid(window_secs) * window_secs;
        match bucket_start {
            Some(s) if s == start => bucket.push(v),
            Some(s) => {
                flush(s, &mut bucket, out)?;
                bucket_start = Some(start);
                bucket.push(v);
            }
            None => {
                bucket_start = Some(start);
                bucket.push(v);
            }
        }
    }
    if let Some(s) = bucket_start {
        flush(s, &mut bucket, out)?;
    }
    Ok(())
}

/// Common aggregation windows used in the paper's evaluation.
pub mod windows {
    /// 15 minutes (paper §3: "typical segmentation in smart energy algorithms").
    pub const FIFTEEN_MINUTES: i64 = 15 * 60;
    /// 1 hour.
    pub const ONE_HOUR: i64 = 60 * 60;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definition_2_average_and_timestamps() {
        // S sampled every 10s; n=3 ⇒ averages of consecutive triples,
        // stamped with the triple's last timestamp.
        let s = TimeSeries::from_regular(0, 10, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]).unwrap();
        let v = vertical_segmentation(&s, 3, Aggregation::Mean).unwrap();
        assert_eq!(v.values(), vec![2.0, 5.0]);
        assert_eq!(v.timestamps(), vec![20, 50], "t̄_i = t_{{i·n}}");
    }

    #[test]
    fn trailing_partial_segment_is_dropped() {
        let s = TimeSeries::from_regular(0, 1, &[1.0, 2.0, 3.0]).unwrap();
        let v = vertical_segmentation(&s, 2, Aggregation::Mean).unwrap();
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn all_aggregations() {
        let s = TimeSeries::from_regular(0, 1, &[3.0, 1.0, 2.0, 8.0]).unwrap();
        let check = |agg, expected: Vec<f64>| {
            assert_eq!(vertical_segmentation(&s, 2, agg).unwrap().values(), expected, "{agg:?}");
        };
        check(Aggregation::Mean, vec![2.0, 5.0]);
        check(Aggregation::Sum, vec![4.0, 10.0]);
        check(Aggregation::Min, vec![1.0, 2.0]);
        check(Aggregation::Max, vec![3.0, 8.0]);
        check(Aggregation::First, vec![3.0, 2.0]);
        check(Aggregation::Last, vec![1.0, 8.0]);
    }

    #[test]
    fn zero_n_rejected() {
        let s = TimeSeries::from_regular(0, 1, &[1.0]).unwrap();
        assert!(vertical_segmentation(&s, 0, Aggregation::Mean).is_err());
    }

    #[test]
    fn windowed_aligns_to_epoch() {
        // Samples at t = 50..70 land in window [0,60) and [60,120).
        let s = TimeSeries::from_regular(50, 5, &[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let w = aggregate_by_window(&s, 60, Aggregation::Mean, 1).unwrap();
        assert_eq!(w.timestamps(), vec![0, 60]);
        assert_eq!(w.values(), vec![1.5, 4.0]);
    }

    #[test]
    fn windowed_min_samples_filters_sparse_windows() {
        let s = TimeSeries::from_samples(vec![
            Sample::new(0, 1.0),
            Sample::new(1, 2.0),
            Sample::new(60, 5.0), // lone sample in second window
        ])
        .unwrap();
        let w = aggregate_by_window(&s, 60, Aggregation::Mean, 2).unwrap();
        assert_eq!(w.timestamps(), vec![0]);
        assert_eq!(w.values(), vec![1.5]);
    }

    #[test]
    fn windowed_handles_gap_spanning_windows() {
        let s = TimeSeries::from_samples(vec![
            Sample::new(0, 1.0),
            Sample::new(10_000, 2.0), // far in the future
        ])
        .unwrap();
        let w = aggregate_by_window(&s, 60, Aggregation::Mean, 1).unwrap();
        assert_eq!(w.timestamps(), vec![0, 9960]);
    }

    #[test]
    fn windowed_rejects_bad_window() {
        let s = TimeSeries::from_regular(0, 1, &[1.0]).unwrap();
        assert!(aggregate_by_window(&s, 0, Aggregation::Mean, 1).is_err());
        assert!(aggregate_by_window(&s, -60, Aggregation::Mean, 1).is_err());
    }

    #[test]
    fn empty_series_aggregate_to_empty() {
        let e = TimeSeries::new();
        assert!(vertical_segmentation(&e, 3, Aggregation::Mean).unwrap().is_empty());
        assert!(aggregate_by_window(&e, 60, Aggregation::Mean, 1).unwrap().is_empty());
    }
}
