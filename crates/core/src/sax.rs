//! SAX baseline (Lin, Keogh, Wei, Lonardi 2007), the closest prior approach
//! the paper compares against (§2.2): z-normalize, PAA, then quantize with
//! *Gaussian* breakpoints at a fixed alphabet size.
//!
//! The paper's critique, reproduced by the Fig. 3 experiment: per-house
//! z-normalization erases the big-consumer vs small-consumer signal, and the
//! Gaussian assumption does not fit smart-meter data's log-normal marginals.
//! The paper's `median` method generalizes SAX's equiprobable breakpoints to
//! the empirical distribution.

use crate::error::{Error, Result};
use crate::separators::def3_bin_index;
use crate::stats::probit;

/// z-normalization: subtract the mean, divide by the standard deviation.
/// Constant series normalize to all zeros (std = 0 guard).
pub fn z_normalize(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
    let std = var.sqrt();
    if std == 0.0 {
        return vec![0.0; n];
    }
    values.iter().map(|v| (v - mean) / std).collect()
}

/// Piecewise Aggregate Approximation: reduces `values` to `w` segment means.
/// Handles lengths not divisible by `w` with fractional segment boundaries
/// (each value contributes proportionally to the segments it overlaps).
pub fn paa(values: &[f64], w: usize) -> Result<Vec<f64>> {
    if w == 0 {
        return Err(Error::InvalidParameter { name: "w", reason: "must be positive".to_string() });
    }
    let n = values.len();
    if n == 0 {
        return Err(Error::EmptyInput("paa"));
    }
    if w >= n {
        return Ok(values.to_vec());
    }
    if n.is_multiple_of(w) {
        let seg = n / w;
        return Ok(values.chunks_exact(seg).map(|c| c.iter().sum::<f64>() / seg as f64).collect());
    }
    // Fractional boundaries: segment j covers [j*n/w, (j+1)*n/w).
    let mut out = vec![0.0f64; w];
    let seg_len = n as f64 / w as f64;
    for (i, &v) in values.iter().enumerate() {
        let lo = i as f64;
        let hi = (i + 1) as f64;
        let first_seg = (lo / seg_len) as usize;
        let last_seg = (((hi / seg_len).ceil() as usize).max(1) - 1).min(w - 1);
        for (j, o) in out.iter_mut().enumerate().take(last_seg + 1).skip(first_seg) {
            let seg_lo = j as f64 * seg_len;
            let seg_hi = (j + 1) as f64 * seg_len;
            let overlap = (hi.min(seg_hi) - lo.max(seg_lo)).max(0.0);
            *o += v * overlap;
        }
    }
    for o in out.iter_mut() {
        *o /= seg_len;
    }
    Ok(out)
}

/// Equiprobable N(0,1) breakpoints for alphabet size `a`: the `a - 1` values
/// `Φ⁻¹(i/a)`. This is the fixed table SAX ships for small `a`; we compute
/// it for any `a ≥ 2` via the probit function.
pub fn gaussian_breakpoints(a: usize) -> Result<Vec<f64>> {
    if a < 2 {
        return Err(Error::InvalidAlphabetSize(a));
    }
    (1..a).map(|i| probit(i as f64 / a as f64)).collect()
}

/// A SAX word: symbol ranks (0 = lowest) at one alphabet size.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SaxWord {
    /// Symbol ranks per PAA segment.
    pub ranks: Vec<u16>,
    /// Alphabet size.
    pub alphabet_size: usize,
    /// Original series length (needed by `mindist`).
    pub original_len: usize,
}

impl SaxWord {
    /// Letter form using `a`–`z` for alphabet sizes ≤ 26 (the conventional
    /// SAX rendering), else decimal ranks separated by dots.
    pub fn letters(&self) -> String {
        if self.alphabet_size <= 26 {
            self.ranks.iter().map(|&r| (b'a' + r as u8) as char).collect()
        } else {
            self.ranks.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(".")
        }
    }
}

/// SAX encoder configuration.
#[derive(Debug, Clone)]
pub struct Sax {
    word_length: usize,
    alphabet_size: usize,
    breakpoints: Vec<f64>,
}

impl Sax {
    /// Creates an encoder producing words of `word_length` symbols from an
    /// alphabet of `alphabet_size` letters.
    pub fn new(word_length: usize, alphabet_size: usize) -> Result<Self> {
        if word_length == 0 {
            return Err(Error::InvalidParameter {
                name: "word_length",
                reason: "must be positive".to_string(),
            });
        }
        Ok(Sax { word_length, alphabet_size, breakpoints: gaussian_breakpoints(alphabet_size)? })
    }

    /// Configured word length.
    pub fn word_length(&self) -> usize {
        self.word_length
    }

    /// Configured alphabet size.
    pub fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }

    /// The Gaussian breakpoints in use.
    pub fn breakpoints(&self) -> &[f64] {
        &self.breakpoints
    }

    /// Full SAX transform: z-normalize → PAA → quantize.
    pub fn encode(&self, values: &[f64]) -> Result<SaxWord> {
        let z = z_normalize(values);
        if z.is_empty() {
            return Err(Error::EmptyInput("Sax::encode"));
        }
        let segments = paa(&z, self.word_length)?;
        // Same tie rule as the paper's Definition 3 lookup (and iSAX): a PAA
        // mean landing exactly on a breakpoint β_j takes the *lower* symbol.
        let ranks = segments.iter().map(|&v| def3_bin_index(&self.breakpoints, v) as u16).collect();
        Ok(SaxWord { ranks, alphabet_size: self.alphabet_size, original_len: values.len() })
    }

    /// MINDIST lower bound between two SAX words of identical shape
    /// (Lin et al. 2007, eq. 6): never exceeds the true Euclidean distance
    /// between the z-normalized originals.
    pub fn mindist(&self, a: &SaxWord, b: &SaxWord) -> Result<f64> {
        if a.ranks.len() != b.ranks.len()
            || a.alphabet_size != b.alphabet_size
            || a.original_len != b.original_len
        {
            return Err(Error::InvalidParameter {
                name: "words",
                reason: "SAX words must share word length, alphabet and original length"
                    .to_string(),
            });
        }
        let n = a.original_len as f64;
        let w = a.ranks.len() as f64;
        let sum: f64 =
            a.ranks.iter().zip(&b.ranks).map(|(&ra, &rb)| self.cell_dist(ra, rb).powi(2)).sum();
        Ok((n / w).sqrt() * sum.sqrt())
    }

    /// The per-cell distance: zero for adjacent-or-equal symbols, else the
    /// gap between the nearer breakpoints.
    fn cell_dist(&self, ra: u16, rb: u16) -> f64 {
        let (lo, hi) = if ra <= rb { (ra, rb) } else { (rb, ra) };
        if hi - lo <= 1 {
            0.0
        } else {
            self.breakpoints[hi as usize - 1] - self.breakpoints[lo as usize]
        }
    }
}

/// Euclidean distance between equal-length series.
pub fn euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(Error::InvalidParameter {
            name: "series",
            reason: format!("length mismatch {} vs {}", a.len(), b.len()),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tie_on_breakpoint_takes_lower_symbol() {
        // A value equal to the series mean z-normalizes to exactly 0.0, the
        // middle Gaussian breakpoint for alphabet size 4. Definition 3's tie
        // rule (β_{j-1} < v ≤ β_j ⇒ a_j) must put it in the *lower* bin —
        // rank 1, not 2 — matching `LookupTable` and `ISax` exactly.
        let sax = Sax::new(3, 4).unwrap();
        assert_eq!(sax.breakpoints()[1], 0.0, "middle breakpoint of k=4 is exactly 0");
        let word = sax.encode(&[-1.0, 0.0, 1.0]).unwrap();
        assert_eq!(word.ranks[1], 1, "PAA mean on β_2 must take the lower symbol");
    }

    #[test]
    fn z_normalize_zero_mean_unit_var() {
        let z = z_normalize(&[2.0, 4.0, 6.0, 8.0]);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
        assert_eq!(z_normalize(&[5.0; 4]), vec![0.0; 4], "constant series");
        assert!(z_normalize(&[]).is_empty());
    }

    #[test]
    fn paa_exact_division() {
        let p = paa(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3).unwrap();
        assert_eq!(p, vec![1.5, 3.5, 5.5]);
    }

    #[test]
    fn paa_fractional_division_preserves_mean() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let p = paa(&values, 2).unwrap();
        assert_eq!(p.len(), 2);
        let overall: f64 = values.iter().sum::<f64>() / 5.0;
        let paa_mean: f64 = p.iter().sum::<f64>() / 2.0;
        assert!((overall - paa_mean).abs() < 1e-9);
        // First segment covers values 1,2 and half of 3: (1+2+1.5)/2.5 = 1.8.
        assert!((p[0] - 1.8).abs() < 1e-9);
        assert!((p[1] - 4.2).abs() < 1e-9);
    }

    #[test]
    fn paa_degenerate_cases() {
        assert_eq!(paa(&[1.0, 2.0], 5).unwrap(), vec![1.0, 2.0], "w >= n passes through");
        assert!(paa(&[], 2).is_err());
        assert!(paa(&[1.0], 0).is_err());
    }

    #[test]
    fn gaussian_breakpoints_match_published_table() {
        // Lin et al.'s table for a=4: {-0.67, 0, 0.67}.
        let b = gaussian_breakpoints(4).unwrap();
        assert!((b[0] + 0.6745).abs() < 1e-3);
        assert!(b[1].abs() < 1e-9);
        assert!((b[2] - 0.6745).abs() < 1e-3);
        // a=3: {-0.43, 0.43}.
        let b = gaussian_breakpoints(3).unwrap();
        assert!((b[0] + 0.4307).abs() < 1e-3);
        assert!(gaussian_breakpoints(1).is_err());
    }

    #[test]
    fn encode_produces_expected_word() {
        let sax = Sax::new(4, 4).unwrap();
        // Ramp: lowest quarter → 'a', highest → 'd'.
        let values: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let w = sax.encode(&values).unwrap();
        assert_eq!(w.letters(), "abcd");
        assert_eq!(w.original_len, 16);
    }

    #[test]
    fn mindist_lower_bounds_euclidean() {
        let sax = Sax::new(8, 8).unwrap();
        // Two deterministic pseudo-random series.
        let a: Vec<f64> = (0..64).map(|i| ((i * 37 + 11) % 97) as f64).collect();
        let b: Vec<f64> = (0..64).map(|i| ((i * 53 + 7) % 89) as f64).collect();
        let wa = sax.encode(&a).unwrap();
        let wb = sax.encode(&b).unwrap();
        let md = sax.mindist(&wa, &wb).unwrap();
        let true_dist = euclidean(&z_normalize(&a), &z_normalize(&b)).unwrap();
        assert!(md <= true_dist + 1e-9, "mindist {md} must lower-bound {true_dist}");
        assert!(md >= 0.0);
    }

    #[test]
    fn mindist_zero_for_adjacent_symbols() {
        let sax = Sax::new(1, 4).unwrap();
        let w1 = SaxWord { ranks: vec![1], alphabet_size: 4, original_len: 8 };
        let w2 = SaxWord { ranks: vec![2], alphabet_size: 4, original_len: 8 };
        assert_eq!(sax.mindist(&w1, &w2).unwrap(), 0.0);
        let w3 = SaxWord { ranks: vec![3], alphabet_size: 4, original_len: 8 };
        assert!(sax.mindist(&w1, &w3).unwrap() > 0.0);
    }

    #[test]
    fn mindist_shape_mismatch_rejected() {
        let sax = Sax::new(2, 4).unwrap();
        let w1 = SaxWord { ranks: vec![0, 1], alphabet_size: 4, original_len: 8 };
        let w2 = SaxWord { ranks: vec![0], alphabet_size: 4, original_len: 8 };
        assert!(sax.mindist(&w1, &w2).is_err());
        let w3 = SaxWord { ranks: vec![0, 1], alphabet_size: 8, original_len: 8 };
        assert!(sax.mindist(&w1, &w3).is_err());
    }

    #[test]
    fn z_normalization_erases_scale_figure_3() {
        // Paper Fig. 3: A and B are big consumers, C and D small, with A,C
        // sharing shape and B,D sharing shape. Raw distance groups by size;
        // normalized distance groups by shape.
        let shape1: Vec<f64> = (0..32).map(|i| ((i as f64) / 5.0).sin()).collect();
        let shape2: Vec<f64> = (0..32).map(|i| ((i as f64) / 5.0).cos()).collect();
        let a: Vec<f64> = shape1.iter().map(|v| 600.0 + 50.0 * v).collect();
        let b: Vec<f64> = shape2.iter().map(|v| 620.0 + 50.0 * v).collect();
        let c: Vec<f64> = shape1.iter().map(|v| 60.0 + 5.0 * v).collect();
        let d: Vec<f64> = shape2.iter().map(|v| 62.0 + 5.0 * v).collect();
        let _ = &d; // D participates in the figure; the assertions only need A–C.

        let raw_ab = euclidean(&a, &b).unwrap();
        let raw_ac = euclidean(&a, &c).unwrap();
        assert!(raw_ab < raw_ac, "raw values group by consumer size");

        let z_ab = euclidean(&z_normalize(&a), &z_normalize(&b)).unwrap();
        let z_ac = euclidean(&z_normalize(&a), &z_normalize(&c)).unwrap();
        assert!(z_ac < z_ab, "z-normalization groups by shape instead");
    }
}
