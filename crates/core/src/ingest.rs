//! Hardened server-side ingest of meter byte streams.
//!
//! The paper's §2.3 motivates the symbolic representation by the
//! communication cost of a real sensor→server deployment; this module is the
//! server half of that deployment grown up: the collector for a fleet of
//! meters whose transports duplicate, truncate, and corrupt bytes, and whose
//! firmware may be buggy or adversarial. A collector serving millions of
//! meters cannot afford to trust a single byte, abort a connection on the
//! first bad frame, or let one misbehaving producer wedge the pipeline.
//!
//! Three layers provide that hardening:
//!
//! * [`crate::wire::FrameDecoder`] enforces a frame-size cap
//!   ([`Error::FrameTooLarge`]) and exposes
//!   [`resync`](crate::wire::FrameDecoder::resync) to skip to the next
//!   plausible frame boundary after corruption;
//! * [`MeterIngest`] (this module) is the per-meter gateway: it owns one
//!   decoder, turns the error/resync dance into a simple
//!   [`ingest`](MeterIngest::ingest) call, and counts every outcome in
//!   [`IngestStats`];
//! * [`crate::engine::FleetStream::try_feed`] /
//!   [`feed_timeout`](crate::engine::FleetStream::feed_timeout) turn
//!   downstream backpressure into typed errors
//!   ([`Error::WouldBlock`] / [`Error::FeedTimeout`]) instead of the
//!   unbounded stall a never-draining producer used to cause.
//!
//! [`IngestStats`] merges into [`crate::engine::EngineStats`] (its `ingest`
//! JSON block), so one counter line describes a whole collector run:
//!
//! ```
//! use sms_core::ingest::{FleetIngest, IngestConfig};
//! use sms_core::prelude::*;
//! use sms_core::wire::encode_message;
//!
//! let table = LookupTable::custom(&[100.0, 200.0, 300.0], 0.0, 400.0)?;
//! let mut wire = encode_message(&SensorMessage::Table(table))?;
//! wire.extend(encode_message(&SensorMessage::Window(EncodedWindow {
//!     window_start: 0,
//!     symbol: Symbol::from_rank(2, 2)?,
//!     samples: 900,
//! }))?);
//! wire[3] ^= 0x40; // a bit flip in flight
//!
//! let mut fleet = FleetIngest::new(IngestConfig::default());
//! let msgs = fleet.ingest(7, &wire)?; // meter 7's bytes, any chunking
//! let stats = fleet.stats();
//! assert_eq!(stats.frames_ok + stats.frames_corrupt + stats.frames_oversized, 2);
//! # Ok::<(), sms_core::error::Error>(())
//! ```

use std::collections::BTreeMap;
use std::time::Instant;

use crate::encoder::SensorMessage;
use crate::error::{Error, Result};
use crate::json::JsonWriter;
use crate::lookup::LookupTable;
use crate::wire::{FrameDecoder, DEFAULT_MAX_FRAME_LEN};

/// Policy knobs of an ingest gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Largest frame payload accepted before the decoder reports
    /// [`Error::FrameTooLarge`] (passed to the underlying
    /// [`FrameDecoder`]).
    pub max_frame_len: usize,
    /// `true` (default): resynchronize past corrupt frames, counting them.
    /// `false`: fail fast — the first corrupt frame aborts the stream with
    /// its typed error (for transports with their own integrity layer,
    /// where corruption means a software bug rather than line noise).
    pub recover: bool,
    /// Most distinct meters a [`FleetIngest`] will create gateways for;
    /// bytes from a meter beyond the cap are rejected with
    /// [`Error::TooManyMeters`]. An id-spoofing (or misconfigured) producer
    /// must not be able to allocate unbounded per-meter state. Default:
    /// unlimited.
    pub max_meters: usize,
    /// Cap on the bytes buffered across every gateway of a [`FleetIngest`]
    /// awaiting frame completion; a chunk that could push the backlog past
    /// it is rejected with [`Error::BacklogExceeded`] before buffering
    /// anything. Protects the collector from a fleet of producers that
    /// send headers and never finish their frames. Default: unlimited.
    pub max_buffered_bytes: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            recover: true,
            max_meters: usize::MAX,
            max_buffered_bytes: usize::MAX,
        }
    }
}

impl IngestConfig {
    /// Sets the frame payload cap.
    pub fn max_frame_len(mut self, max: usize) -> Self {
        self.max_frame_len = max;
        self
    }

    /// Sets corruption handling: recover-and-count vs fail-fast.
    pub fn recover(mut self, recover: bool) -> Self {
        self.recover = recover;
        self
    }

    /// Sets the distinct-meter cap.
    pub fn max_meters(mut self, max: usize) -> Self {
        self.max_meters = max;
        self
    }

    /// Sets the fleet-wide buffered-byte cap.
    pub fn max_buffered_bytes(mut self, max: usize) -> Self {
        self.max_buffered_bytes = max;
        self
    }
}

/// Counter block describing one ingest run; merged into
/// [`crate::engine::EngineStats`] JSON as its `ingest` object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IngestStats {
    /// Frames decoded successfully.
    pub frames_ok: u64,
    /// Frames rejected with a decode error (bad tag, bad payload,
    /// tampered table invariants).
    pub frames_corrupt: u64,
    /// Times the decoder scanned forward to a new frame boundary.
    pub resyncs: u64,
    /// Frames rejected because their header announced a payload above the
    /// configured cap.
    pub frames_oversized: u64,
    /// Raw bytes fed into the gateway.
    pub bytes_in: u64,
    /// Bytes consumed by successfully decoded frames (header + payload).
    ///
    /// Together with [`bytes_discarded`](Self::bytes_discarded) and the
    /// gateway's live [`MeterIngest::buffered`] count, this reconciles
    /// exactly against [`bytes_in`](Self::bytes_in):
    /// `bytes_decoded + bytes_discarded + buffered == bytes_in` — every fed
    /// byte is decoded, discarded by a resync, or still awaiting a frame.
    pub bytes_decoded: u64,
    /// Bytes discarded by corruption resyncs while scanning for the next
    /// plausible frame boundary (see
    /// [`resync`](crate::wire::FrameDecoder::resync)).
    pub bytes_discarded: u64,
    /// Times a downstream feed was rejected or had to back off
    /// ([`crate::engine::FleetStream::backpressure_stalls`]).
    pub backpressure_stalls: u64,
    /// Chunks rejected because the sending meter would exceed
    /// [`IngestConfig::max_meters`].
    pub meters_rejected: u64,
    /// Chunks rejected because accepting them could exceed
    /// [`IngestConfig::max_buffered_bytes`].
    pub backlog_rejections: u64,
    /// Wall time spent in wire decode (including resync scans), seconds.
    pub decode_secs: f64,
    /// Wall time spent feeding decoded data downstream (including
    /// backpressure waits), seconds.
    pub feed_secs: f64,
    /// Wire sizes (header + payload bytes) of successfully decoded
    /// frames. Rendered through the `"histograms"` section of
    /// [`crate::engine::EngineStats::to_json`], not this block's object.
    pub frame_bytes: crate::telemetry::Log2Histogram,
}

impl IngestStats {
    /// Accumulates `other` into `self` (counters add, stage times add).
    pub fn merge(&mut self, other: &IngestStats) {
        self.frames_ok += other.frames_ok;
        self.frames_corrupt += other.frames_corrupt;
        self.resyncs += other.resyncs;
        self.frames_oversized += other.frames_oversized;
        self.bytes_in += other.bytes_in;
        self.bytes_decoded += other.bytes_decoded;
        self.bytes_discarded += other.bytes_discarded;
        self.backpressure_stalls += other.backpressure_stalls;
        self.meters_rejected += other.meters_rejected;
        self.backlog_rejections += other.backlog_rejections;
        self.decode_secs += other.decode_secs;
        self.feed_secs += other.feed_secs;
        self.frame_bytes.merge(&other.frame_bytes);
    }

    /// Registers this block's [`crate::telemetry::CATALOG`] metrics into
    /// `reg` and loads their current values.
    pub fn register_into(&self, reg: &crate::telemetry::Registry) {
        reg.register_block("ingest");
        reg.add("sms_ingest_frames_ok", self.frames_ok);
        reg.add("sms_ingest_frames_corrupt", self.frames_corrupt);
        reg.add("sms_ingest_resyncs", self.resyncs);
        reg.add("sms_ingest_frames_oversized", self.frames_oversized);
        reg.add("sms_ingest_bytes_in", self.bytes_in);
        reg.add("sms_ingest_bytes_decoded", self.bytes_decoded);
        reg.add("sms_ingest_bytes_discarded", self.bytes_discarded);
        reg.add("sms_ingest_backpressure_stalls", self.backpressure_stalls);
        reg.add("sms_ingest_meters_rejected", self.meters_rejected);
        reg.add("sms_ingest_backlog_rejections", self.backlog_rejections);
        reg.set_f64("sms_ingest_decode_secs", self.decode_secs);
        reg.set_f64("sms_ingest_feed_secs", self.feed_secs);
        reg.merge_histogram("sms_ingest_frame_bytes", &self.frame_bytes);
    }

    /// Fraction of seen frames that decoded, in `[0, 1]` (`1.0` for an
    /// empty run).
    pub fn frame_success_rate(&self) -> f64 {
        let total = self.frames_ok + self.frames_corrupt + self.frames_oversized;
        if total == 0 {
            return 1.0;
        }
        self.frames_ok as f64 / total as f64
    }

    /// JSON object for benchmark trajectories.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Writes this block as one JSON value into `w` (shared with
    /// [`crate::engine::EngineStats::to_json`]). The key names and order
    /// come from the telemetry [`crate::telemetry::CATALOG`].
    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        let reg = crate::telemetry::Registry::new();
        self.register_into(&reg);
        reg.write_block_json(w, "ingest");
    }
}

/// Per-meter ingest gateway: one untrusted byte stream in, decoded
/// [`SensorMessage`]s and [`IngestStats`] out.
///
/// With [`IngestConfig::recover`] (the default), corruption never aborts the
/// stream: corrupt and oversized frames are counted, the decoder
/// resynchronizes to the next plausible frame boundary, and decoding
/// continues. The gateway also tracks the most recent lookup table the
/// meter shipped, since every subsequent window is meaningless without it.
#[derive(Debug)]
pub struct MeterIngest {
    decoder: FrameDecoder,
    config: IngestConfig,
    stats: IngestStats,
    table: Option<LookupTable>,
    epoch: u32,
}

impl MeterIngest {
    /// Creates a gateway with the given policy.
    pub fn new(config: IngestConfig) -> Self {
        MeterIngest {
            decoder: FrameDecoder::with_max_frame_len(config.max_frame_len),
            config,
            stats: IngestStats::default(),
            table: None,
            epoch: 0,
        }
    }

    /// Feeds received bytes (any chunking, including mid-frame splits) and
    /// returns every message decodable so far.
    ///
    /// In recover mode this never fails: corrupt frames increment
    /// [`IngestStats::frames_corrupt`] (or
    /// [`frames_oversized`](IngestStats::frames_oversized)), trigger a
    /// counted resync, and decoding continues with the next frame. In
    /// fail-fast mode the first error is returned as-is.
    pub fn ingest(&mut self, bytes: &[u8]) -> Result<Vec<SensorMessage>> {
        let t0 = Instant::now();
        self.stats.bytes_in += bytes.len() as u64;
        self.decoder.feed(bytes);
        let mut out = Vec::new();
        loop {
            let buffered_before = self.decoder.buffered();
            match self.decoder.next_message() {
                Ok(Some(msg)) => {
                    self.stats.frames_ok += 1;
                    // The decoder consumed exactly this frame's bytes, so
                    // the buffered() delta is its wire size — independent
                    // of how the bytes were chunked on the way in.
                    let frame_len = (buffered_before - self.decoder.buffered()) as u64;
                    self.stats.frame_bytes.observe(frame_len);
                    self.stats.bytes_decoded += frame_len;
                    match &msg {
                        // A bare table is the pre-drift separator set: it
                        // resets the meter to epoch 0 (the only epoch the
                        // legacy frame can describe).
                        SensorMessage::Table(t) => {
                            self.table = Some(t.clone());
                            self.epoch = 0;
                        }
                        // An epoch table is a drift cutover: subsequent
                        // windows decode under this table until the next one.
                        SensorMessage::EpochTable { epoch, table } => {
                            self.table = Some(table.clone());
                            self.epoch = *epoch;
                        }
                        SensorMessage::Window(_) => {}
                    }
                    out.push(msg);
                }
                Ok(None) => break,
                Err(e) => {
                    match e {
                        Error::FrameTooLarge { .. } => self.stats.frames_oversized += 1,
                        _ => self.stats.frames_corrupt += 1,
                    }
                    if !self.config.recover {
                        self.stats.decode_secs += t0.elapsed().as_secs_f64();
                        return Err(e);
                    }
                    // `resync` always discards at least one byte, so this
                    // loop terminates within the buffered data.
                    self.stats.bytes_discarded += self.decoder.resync() as u64;
                    self.stats.resyncs += 1;
                }
            }
        }
        self.stats.decode_secs += t0.elapsed().as_secs_f64();
        Ok(out)
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// The most recent lookup table this meter shipped, if any survived.
    pub fn table(&self) -> Option<&LookupTable> {
        self.table.as_ref()
    }

    /// The separator epoch the meter is currently encoding under: `0` until
    /// an [`SensorMessage::EpochTable`] frame arrives, then that frame's
    /// epoch. Windows ingested now decode under this epoch's table.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Bytes buffered awaiting a frame completion.
    pub fn buffered(&self) -> usize {
        self.decoder.buffered()
    }
}

/// Fleet-level ingest: routes `(meter, bytes)` to per-meter gateways
/// created on first sight, aggregates their counters, and enforces the
/// fleet-wide resource caps ([`IngestConfig::max_meters`],
/// [`IngestConfig::max_buffered_bytes`]) — without them the per-meter map
/// and the decoders' partial-frame buffers grow without bound under an
/// id-spoofing or never-completing producer.
#[derive(Debug)]
pub struct FleetIngest {
    config: IngestConfig,
    meters: BTreeMap<u64, MeterIngest>,
    /// Bytes buffered across every gateway, maintained incrementally (the
    /// per-call delta of [`MeterIngest::buffered`]) so the backlog check is
    /// O(1) rather than a walk over millions of meters.
    buffered_total: usize,
    meters_rejected: u64,
    backlog_rejections: u64,
}

impl FleetIngest {
    /// Creates an empty router; gateways spawn lazily per meter id.
    pub fn new(config: IngestConfig) -> Self {
        FleetIngest {
            config,
            meters: BTreeMap::new(),
            buffered_total: 0,
            meters_rejected: 0,
            backlog_rejections: 0,
        }
    }

    /// Feeds bytes received from one meter; see [`MeterIngest::ingest`].
    ///
    /// Rejects with [`Error::TooManyMeters`] when the chunk would create a
    /// gateway beyond [`IngestConfig::max_meters`], and with
    /// [`Error::BacklogExceeded`] when `buffered + incoming` could exceed
    /// [`IngestConfig::max_buffered_bytes`] (a conservative upper bound:
    /// the chunk is rejected before buffering, so a rejected call changes
    /// no state and the caller may retry after the backlog drains).
    pub fn ingest(&mut self, meter: u64, bytes: &[u8]) -> Result<Vec<SensorMessage>> {
        if self.buffered_total.saturating_add(bytes.len()) > self.config.max_buffered_bytes {
            self.backlog_rejections += 1;
            return Err(Error::BacklogExceeded {
                buffered: self.buffered_total,
                incoming: bytes.len(),
                max: self.config.max_buffered_bytes,
            });
        }
        if !self.meters.contains_key(&meter) && self.meters.len() >= self.config.max_meters {
            self.meters_rejected += 1;
            return Err(Error::TooManyMeters { max: self.config.max_meters });
        }
        let gateway = self.meters.entry(meter).or_insert_with(|| MeterIngest::new(self.config));
        let before = gateway.buffered();
        let result = gateway.ingest(bytes);
        let after = gateway.buffered();
        self.buffered_total = self.buffered_total - before + after;
        result
    }

    /// The gateway of one meter, if it has sent anything yet.
    pub fn meter(&self, meter: u64) -> Option<&MeterIngest> {
        self.meters.get(&meter)
    }

    /// Number of distinct meters seen.
    pub fn meter_count(&self) -> usize {
        self.meters.len()
    }

    /// Bytes currently buffered across every gateway awaiting frame
    /// completion.
    pub fn buffered_total(&self) -> usize {
        self.buffered_total
    }

    /// Counters aggregated across every meter, plus the fleet-level
    /// rejection counters.
    pub fn stats(&self) -> IngestStats {
        let mut total = IngestStats::default();
        for m in self.meters.values() {
            total.merge(m.stats());
        }
        total.meters_rejected = self.meters_rejected;
        total.backlog_rejections = self.backlog_rejections;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::encoder::EncodedWindow;
    use crate::separators::SeparatorMethod;
    use crate::symbol::Symbol;
    use crate::wire::encode_message;

    fn table() -> LookupTable {
        let values: Vec<f64> = (0..400).map(|i| ((i * 29) % 350) as f64).collect();
        LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(8).unwrap(), &values)
            .unwrap()
    }

    fn window(i: i64) -> SensorMessage {
        SensorMessage::Window(EncodedWindow {
            window_start: i * 900,
            symbol: Symbol::from_rank((i % 8) as u16, 3).unwrap(),
            samples: 900,
        })
    }

    fn stream(windows: i64) -> (Vec<SensorMessage>, Vec<u8>) {
        let mut msgs = vec![SensorMessage::Table(table())];
        msgs.extend((0..windows).map(window));
        let wire = msgs.iter().flat_map(|m| encode_message(m).unwrap()).collect();
        (msgs, wire)
    }

    #[test]
    fn clean_stream_decodes_fully_any_chunking() {
        let (msgs, wire) = stream(20);
        for chunk_size in [1, 3, 7, 64, wire.len()] {
            let mut gw = MeterIngest::new(IngestConfig::default());
            let mut out = Vec::new();
            for chunk in wire.chunks(chunk_size) {
                out.extend(gw.ingest(chunk).unwrap());
            }
            assert_eq!(out, msgs, "chunk_size={chunk_size}");
            let s = gw.stats();
            assert_eq!(s.frames_ok, 21);
            assert_eq!(s.frames_corrupt + s.frames_oversized + s.resyncs, 0);
            assert_eq!(s.bytes_in, wire.len() as u64);
            assert_eq!(s.frame_success_rate(), 1.0);
            assert!(gw.table().is_some());
        }
    }

    #[test]
    fn epoch_tables_advance_and_bare_tables_reset_the_epoch() {
        let mut wire = encode_message(&SensorMessage::Table(table())).unwrap();
        wire.extend(encode_message(&window(0)).unwrap());
        wire.extend(
            encode_message(&SensorMessage::EpochTable { epoch: 3, table: table() }).unwrap(),
        );
        wire.extend(encode_message(&window(1)).unwrap());
        let mut gw = MeterIngest::new(IngestConfig::default());
        assert_eq!(gw.epoch(), 0);
        let out = gw.ingest(&wire).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(gw.epoch(), 3, "epoch table must move the gateway forward");
        assert!(gw.table().is_some());
        // A bare (legacy) table frame can only describe epoch 0.
        gw.ingest(&encode_message(&SensorMessage::Table(table())).unwrap()).unwrap();
        assert_eq!(gw.epoch(), 0);
    }

    #[test]
    fn corruption_is_counted_and_survived() {
        let (_, mut wire) = stream(20);
        // Corrupt a window frame's tag in the middle of the stream.
        let table_frame_len = encode_message(&SensorMessage::Table(table())).unwrap().len();
        wire[table_frame_len + 5 * 20] ^= 0xFF;
        let mut gw = MeterIngest::new(IngestConfig::default());
        let out = gw.ingest(&wire).unwrap();
        let s = gw.stats();
        assert!(s.frames_corrupt >= 1);
        assert!(s.resyncs >= 1);
        assert!(s.frames_ok >= 19, "one corrupt frame must not take neighbors down: {s:?}");
        assert!(out.len() >= 19);
        assert!(s.decode_secs >= 0.0);
    }

    #[test]
    fn oversized_header_counted_separately() {
        let (_, wire) = stream(3);
        let mut hostile = vec![0x02, 0xFF, 0xFF, 0xFF, 0xFF]; // 4 GiB announcement
        hostile.extend(&wire);
        let mut gw = MeterIngest::new(IngestConfig::default());
        let out = gw.ingest(&hostile).unwrap();
        let s = gw.stats();
        assert_eq!(s.frames_oversized, 1);
        assert_eq!(s.frames_ok, 4);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn fail_fast_mode_propagates_typed_errors() {
        let (_, mut wire) = stream(5);
        wire[0] = 0x7E;
        let mut gw = MeterIngest::new(IngestConfig::default().recover(false));
        assert!(matches!(gw.ingest(&wire), Err(Error::WireFormat(_))));

        let mut gw = MeterIngest::new(IngestConfig::default().recover(false));
        assert!(matches!(
            gw.ingest(&[0x02, 0xFF, 0xFF, 0xFF, 0xFF]),
            Err(Error::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn fleet_routes_per_meter_and_aggregates() {
        let (msgs, wire) = stream(4);
        let mut fleet = FleetIngest::new(IngestConfig::default());
        // Interleave two meters' streams chunk by chunk.
        for chunk in wire.chunks(9) {
            fleet.ingest(1, chunk).unwrap();
            fleet.ingest(2, chunk).unwrap();
        }
        assert_eq!(fleet.meter_count(), 2);
        for meter in [1, 2] {
            let s = fleet.meter(meter).unwrap().stats();
            assert_eq!(s.frames_ok, msgs.len() as u64, "meter {meter}");
        }
        let total = fleet.stats();
        assert_eq!(total.frames_ok, 2 * msgs.len() as u64);
        assert_eq!(total.bytes_in, 2 * wire.len() as u64);
        assert!(fleet.meter(3).is_none());
    }

    #[test]
    fn meter_cap_rejects_new_meters_only() {
        let (msgs, wire) = stream(2);
        let mut fleet = FleetIngest::new(IngestConfig::default().max_meters(2));
        fleet.ingest(1, &wire).unwrap();
        fleet.ingest(2, &wire).unwrap();
        // A third meter is rejected; the known meters keep working.
        assert_eq!(fleet.ingest(3, &wire).unwrap_err(), Error::TooManyMeters { max: 2 });
        assert_eq!(fleet.ingest(3, &wire).unwrap_err(), Error::TooManyMeters { max: 2 });
        let again = fleet.ingest(1, &wire).unwrap();
        assert_eq!(again.len(), msgs.len());
        assert_eq!(fleet.meter_count(), 2);
        assert_eq!(fleet.stats().meters_rejected, 2);
    }

    #[test]
    fn backlog_cap_rejects_before_buffering() {
        // A header that announces a large frame and never completes it.
        let mut fleet = FleetIngest::new(IngestConfig::default().max_buffered_bytes(64));
        let partial = vec![0x02, 200, 0, 0, 0]; // 200-byte payload, never sent
        fleet.ingest(1, &partial).unwrap();
        assert_eq!(fleet.buffered_total(), partial.len());

        // 61 incoming bytes would exceed 64 total; rejected, nothing buffered.
        let big = vec![0u8; 61];
        let err = fleet.ingest(1, &big).unwrap_err();
        assert_eq!(err, Error::BacklogExceeded { buffered: partial.len(), incoming: 61, max: 64 });
        assert_eq!(fleet.buffered_total(), partial.len(), "rejected chunk changes no state");
        assert_eq!(fleet.stats().backlog_rejections, 1);

        // A chunk that *completes* frames shrinks the backlog and is fine.
        let (_, wire) = stream(1);
        let mut fleet = FleetIngest::new(IngestConfig::default().max_buffered_bytes(wire.len()));
        for chunk in wire.chunks(7) {
            fleet.ingest(1, chunk).unwrap();
        }
        assert_eq!(fleet.buffered_total(), 0, "completed frames leave no backlog");
        assert_eq!(fleet.stats().backlog_rejections, 0);
    }

    #[test]
    fn byte_accounting_reconciles_exactly() {
        // Every fed byte must be decoded, discarded by a resync, or still
        // buffered — under clean streams, corruption, truncation, and any
        // chunking.
        let (_, clean) = stream(12);
        let mut corrupt = clean.clone();
        let table_frame_len = encode_message(&SensorMessage::Table(table())).unwrap().len();
        // Clobber a mid-stream window frame's tag byte: the decoder rejects
        // the frame and must resync (a payload flip could still decode as a
        // different-but-valid window, never exercising the discard arm).
        corrupt[table_frame_len + 20] ^= 0xFF;
        let mut truncated = clean.clone();
        truncated.truncate(clean.len() - 3); // dangling partial frame
        for wire in [&clean, &corrupt, &truncated] {
            for chunk_size in [1, 5, 64, wire.len()] {
                let mut gw = MeterIngest::new(IngestConfig::default());
                for chunk in wire.chunks(chunk_size) {
                    gw.ingest(chunk).unwrap();
                }
                let s = gw.stats();
                assert_eq!(
                    s.bytes_decoded + s.bytes_discarded + gw.buffered() as u64,
                    s.bytes_in,
                    "chunk_size={chunk_size}: {s:?}"
                );
                assert_eq!(s.bytes_in, wire.len() as u64);
            }
        }
        // The corrupt run must actually exercise the discard arm.
        let mut gw = MeterIngest::new(IngestConfig::default());
        gw.ingest(&corrupt).unwrap();
        assert!(gw.stats().bytes_discarded > 0, "{:?}", gw.stats());
    }

    #[test]
    fn stats_json_has_every_counter() {
        let stats = IngestStats {
            frames_ok: 1,
            frames_corrupt: 2,
            resyncs: 3,
            frames_oversized: 4,
            bytes_in: 5,
            bytes_decoded: 9,
            bytes_discarded: 10,
            backpressure_stalls: 6,
            meters_rejected: 7,
            backlog_rejections: 8,
            decode_secs: 0.5,
            feed_secs: 0.25,
            ..IngestStats::default()
        };
        let json = stats.to_json();
        for key in [
            "frames_ok",
            "frames_corrupt",
            "resyncs",
            "frames_oversized",
            "bytes_in",
            "bytes_decoded",
            "bytes_discarded",
            "backpressure_stalls",
            "meters_rejected",
            "backlog_rejections",
            "decode_secs",
            "feed_secs",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
        let mut merged = IngestStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.frames_ok, 2);
        assert_eq!(merged.bytes_in, 10);
        assert!((merged.decode_secs - 1.0).abs() < 1e-12);
    }
}
