//! Privacy measures for symbolic streams (paper §1, §4: symbolic encoding
//! "obscures smart meter detail measurements"; the classification
//! experiment of §3.1 doubles as a re-identification attack).
//!
//! We quantify the privacy/utility trade-off with three measures:
//! * **Shannon entropy** of the symbol stream (how much detail survives);
//! * **mutual information** between symbols and a sensitive label (e.g.
//!   house identity) estimated from empirical joint frequencies;
//! * **expected candidate-set size** (an anonymity-set style measure): how
//!   many distinct (label, symbol-window) candidates an adversary observing
//!   a window of symbols cannot distinguish between.

use crate::error::{Error, Result};
use crate::symbol::Symbol;
use std::collections::HashMap;

/// Shannon entropy (bits) of a symbol sequence's empirical distribution.
pub fn symbol_entropy_bits(symbols: &[Symbol]) -> f64 {
    if symbols.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<Symbol, u64> = HashMap::new();
    for &s in symbols {
        *counts.entry(s).or_insert(0) += 1;
    }
    let n = symbols.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Empirical mutual information (bits) between a sequence of labels and the
/// co-occurring symbols: `I(L; S) = Σ p(l,s) log2( p(l,s) / (p(l) p(s)) )`.
/// High MI means the symbols leak the label (bad for privacy, good for the
/// classifier); MI = 0 means the encoding hides it completely.
pub fn mutual_information_bits(labels: &[usize], symbols: &[Symbol]) -> Result<f64> {
    if labels.len() != symbols.len() {
        return Err(Error::InvalidParameter {
            name: "labels/symbols",
            reason: format!("length mismatch {} vs {}", labels.len(), symbols.len()),
        });
    }
    if labels.is_empty() {
        return Err(Error::EmptyInput("mutual_information_bits"));
    }
    let n = labels.len() as f64;
    let mut joint: HashMap<(usize, Symbol), u64> = HashMap::new();
    let mut p_l: HashMap<usize, u64> = HashMap::new();
    let mut p_s: HashMap<Symbol, u64> = HashMap::new();
    for (&l, &s) in labels.iter().zip(symbols) {
        *joint.entry((l, s)).or_insert(0) += 1;
        *p_l.entry(l).or_insert(0) += 1;
        *p_s.entry(s).or_insert(0) += 1;
    }
    let mut mi = 0.0;
    for (&(l, s), &c) in &joint {
        let pls = c as f64 / n;
        let pl = p_l[&l] as f64 / n;
        let ps = p_s[&s] as f64 / n;
        mi += pls * (pls / (pl * ps)).log2();
    }
    Ok(mi.max(0.0))
}

/// Expected anonymity-set size for windows of `window` consecutive symbols:
/// for each observed window pattern, count how many *distinct labels*
/// produced it; the expectation is weighted by pattern frequency. A value of
/// `L` (number of labels) means perfect hiding; 1.0 means every window
/// pattern identifies its label uniquely.
pub fn expected_anonymity_set(sequences: &[(usize, Vec<Symbol>)], window: usize) -> Result<f64> {
    if window == 0 {
        return Err(Error::InvalidParameter {
            name: "window",
            reason: "must be positive".to_string(),
        });
    }
    // pattern -> set of labels (as bitmask-ish vec) and total occurrences.
    let mut patterns: HashMap<Vec<Symbol>, (Vec<usize>, u64)> = HashMap::new();
    let mut total = 0u64;
    for (label, seq) in sequences {
        if seq.len() < window {
            continue;
        }
        for win in seq.windows(window) {
            let e = patterns.entry(win.to_vec()).or_insert_with(|| (Vec::new(), 0));
            if !e.0.contains(label) {
                e.0.push(*label);
            }
            e.1 += 1;
            total += 1;
        }
    }
    if total == 0 {
        return Err(Error::EmptyInput("expected_anonymity_set: no windows"));
    }
    let expected =
        patterns.values().map(|(labels, count)| labels.len() as f64 * *count as f64).sum::<f64>()
            / total as f64;
    Ok(expected)
}

/// Report comparing privacy measures across alphabet resolutions, produced by
/// the `privacy_attack` example and the §4 discussion material.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyReport {
    /// Symbol resolution in bits.
    pub resolution_bits: u8,
    /// Entropy of the pooled symbol stream.
    pub entropy_bits: f64,
    /// Mutual information between house label and single symbols.
    pub mi_bits: f64,
    /// Expected anonymity-set size for day-long windows.
    pub anonymity: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(rank: u16, bits: u8) -> Symbol {
        Symbol::from_rank(rank, bits).unwrap()
    }

    #[test]
    fn entropy_of_uniform_and_constant_streams() {
        let constant = vec![sym(0, 2); 100];
        assert_eq!(symbol_entropy_bits(&constant), 0.0);

        let uniform: Vec<Symbol> = (0..100).map(|i| sym(i % 4, 2)).collect();
        assert!(
            (symbol_entropy_bits(&uniform) - 2.0).abs() < 1e-9,
            "4 equiprobable symbols = 2 bits"
        );
        assert_eq!(symbol_entropy_bits(&[]), 0.0);
    }

    #[test]
    fn mi_detects_perfect_leak_and_perfect_hiding() {
        // Perfect leak: label == symbol rank.
        let labels: Vec<usize> = (0..400).map(|i| i % 4).collect();
        let leaky: Vec<Symbol> = labels.iter().map(|&l| sym(l as u16, 2)).collect();
        let mi = mutual_information_bits(&labels, &leaky).unwrap();
        assert!((mi - 2.0).abs() < 1e-9, "deterministic 4-way mapping = 2 bits");

        // Perfect hiding: symbol independent of label.
        let hidden: Vec<Symbol> = (0..400).map(|i| sym((i / 4 % 4) as u16, 2)).collect();
        let mi = mutual_information_bits(&labels, &hidden).unwrap();
        assert!(mi < 1e-9, "independent symbol should carry ~0 bits, got {mi}");
    }

    #[test]
    fn mi_validation() {
        assert!(mutual_information_bits(&[0], &[]).is_err());
        assert!(mutual_information_bits(&[], &[]).is_err());
    }

    #[test]
    fn anonymity_set_degrades_with_window_length() {
        // Two houses, distinctive patterns at window 3 but identical at window 1.
        let a = vec![sym(0, 1), sym(1, 1), sym(0, 1), sym(1, 1), sym(0, 1), sym(1, 1)];
        let b = vec![sym(0, 1), sym(0, 1), sym(1, 1), sym(0, 1), sym(0, 1), sym(1, 1)];
        let seqs = vec![(0usize, a), (1usize, b)];
        let w1 = expected_anonymity_set(&seqs, 1).unwrap();
        let w3 = expected_anonymity_set(&seqs, 3).unwrap();
        assert!(w1 > 1.9, "single symbols are shared by both houses: {w1}");
        assert!(w3 < w1, "longer windows identify the house: {w3} vs {w1}");
    }

    #[test]
    fn anonymity_validation() {
        assert!(expected_anonymity_set(&[], 1).is_err());
        let seqs = vec![(0usize, vec![sym(0, 1)])];
        assert!(expected_anonymity_set(&seqs, 0).is_err());
        assert!(expected_anonymity_set(&seqs, 5).is_err(), "no window fits");
    }
}
