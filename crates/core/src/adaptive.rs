//! On-the-fly lookup-table adaptation (paper §4 future work: "when the
//! consumer consumption pattern changes drastically, e.g., due to seasonal
//! change, or having an additional family member, on the fly symbol table
//! modification could be useful").
//!
//! [`DriftDetector`] compares the recent value distribution against the one
//! the current table was trained on (two-sample Kolmogorov–Smirnov distance
//! over quantile sketches). [`AdaptiveEncoder`] wraps an [`OnlineEncoder`]:
//! when drift exceeds the threshold it relearns the table from the recent
//! window and re-emits a [`SensorMessage::Table`], exactly the protocol the
//! paper sketches ("rebuilding and resending the lookup table periodically
//! or if the distribution of the data changes too much", §2).

use crate::alphabet::Alphabet;
use crate::encoder::{OnlineEncoder, SensorMessage};
use crate::error::{Error, Result};
use crate::lookup::LookupTable;
use crate::separators::SeparatorMethod;
use crate::stats::ExactQuantiles;
use crate::timeseries::Timestamp;
use crate::vertical::Aggregation;
use std::collections::VecDeque;

/// Two-sample distribution-shift detector over a sliding window of recent
/// raw values versus a frozen reference sample.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    reference: Vec<f64>,
    window: VecDeque<f64>,
    window_size: usize,
}

impl DriftDetector {
    /// Creates a detector with a frozen `reference` sample and a sliding
    /// window of `window_size` recent values.
    pub fn new(reference: Vec<f64>, window_size: usize) -> Result<Self> {
        if reference.is_empty() {
            return Err(Error::EmptyInput("DriftDetector reference"));
        }
        if window_size < 2 {
            return Err(Error::InvalidParameter {
                name: "window_size",
                reason: "must be at least 2".to_string(),
            });
        }
        Ok(DriftDetector { reference, window: VecDeque::with_capacity(window_size), window_size })
    }

    /// Feeds one recent value.
    pub fn push(&mut self, v: f64) {
        if self.window.len() == self.window_size {
            self.window.pop_front();
        }
        self.window.push_back(v);
    }

    /// Whether the sliding window is full (statistic is meaningful).
    pub fn window_full(&self) -> bool {
        self.window.len() == self.window_size
    }

    /// Two-sample KS distance between reference and the current window
    /// (`None` until the window fills).
    pub fn statistic(&self) -> Option<f64> {
        if !self.window_full() {
            return None;
        }
        let recent: Vec<f64> = self.window.iter().copied().collect();
        let r = ExactQuantiles::new(&self.reference).ok()?;
        let w = ExactQuantiles::new(&recent).ok()?;
        // Evaluate |F_ref - F_win| on the merged support via quantile grid.
        let mut d: f64 = 0.0;
        const GRID: usize = 200;
        for i in 0..=GRID {
            let q = i as f64 / GRID as f64;
            let x = w.quantile(q);
            let f_ref = ecdf(r.sorted(), x);
            let f_win = ecdf(w.sorted(), x);
            d = d.max((f_ref - f_win).abs());
            let x = r.quantile(q);
            let f_ref = ecdf(r.sorted(), x);
            let f_win = ecdf(w.sorted(), x);
            d = d.max((f_ref - f_win).abs());
        }
        Some(d)
    }

    /// Replaces the reference with the current window contents (called after
    /// a table rebuild so drift is measured against the new regime).
    pub fn rebase(&mut self) {
        self.reference = self.window.iter().copied().collect();
    }

    /// The current window contents (most recent last).
    pub fn window(&self) -> Vec<f64> {
        self.window.iter().copied().collect()
    }
}

fn ecdf(sorted: &[f64], x: f64) -> f64 {
    sorted.partition_point(|&v| v <= x) as f64 / sorted.len() as f64
}

/// Statistics of one adaptive-encoding run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Number of table rebuilds triggered by drift.
    pub rebuilds: u64,
    /// Raw samples processed.
    pub samples: u64,
    /// Symbols emitted.
    pub symbols: u64,
}

/// Online encoder that rebuilds its lookup table when the raw-value
/// distribution drifts.
#[derive(Debug)]
pub struct AdaptiveEncoder {
    encoder: OnlineEncoder,
    detector: DriftDetector,
    method: SeparatorMethod,
    alphabet: Alphabet,
    threshold: f64,
    /// Minimum samples between rebuilds, to avoid thrashing.
    cooldown: u64,
    since_rebuild: u64,
    stats: AdaptiveStats,
}

impl AdaptiveEncoder {
    /// Wraps a trained table. `threshold` is the KS distance that triggers a
    /// rebuild (typical values 0.1–0.3); `window_size` is the recent-sample
    /// window used both for detection and for re-training.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        table: LookupTable,
        training_values: Vec<f64>,
        method: SeparatorMethod,
        window_secs: i64,
        aggregation: Aggregation,
        threshold: f64,
        window_size: usize,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&threshold) || threshold == 0.0 {
            return Err(Error::InvalidParameter {
                name: "threshold",
                reason: format!("must be in (0, 1], got {threshold}"),
            });
        }
        let alphabet = table.alphabet();
        Ok(AdaptiveEncoder {
            encoder: OnlineEncoder::new(table, window_secs, aggregation)?,
            detector: DriftDetector::new(training_values, window_size)?,
            method,
            alphabet,
            threshold,
            cooldown: window_size as u64,
            since_rebuild: 0,
            stats: AdaptiveStats::default(),
        })
    }

    /// Feeds one raw sample; returns wire messages (a rebuilt table and/or an
    /// encoded window).
    pub fn push(&mut self, t: Timestamp, v: f64) -> Result<Vec<SensorMessage>> {
        self.stats.samples += 1;
        self.since_rebuild += 1;
        self.detector.push(v);

        let mut out = Vec::new();
        if self.since_rebuild >= self.cooldown {
            if let Some(d) = self.detector.statistic() {
                if d > self.threshold {
                    let recent = self.detector.window();
                    let table = LookupTable::learn(self.method, self.alphabet, &recent)?;
                    self.encoder.set_table(table.clone());
                    self.detector.rebase();
                    self.since_rebuild = 0;
                    self.stats.rebuilds += 1;
                    out.push(SensorMessage::Table(table));
                }
            }
        }
        if let Some(w) = self.encoder.push(t, v)? {
            self.stats.symbols += 1;
            out.push(SensorMessage::Window(w));
        }
        Ok(out)
    }

    /// Flushes the trailing window.
    pub fn finish(&mut self) -> Vec<SensorMessage> {
        match self.encoder.finish() {
            Some(w) => {
                self.stats.symbols += 1;
                vec![SensorMessage::Window(w)]
            }
            None => Vec::new(),
        }
    }

    /// Run statistics so far.
    pub fn stats(&self) -> AdaptiveStats {
        self.stats
    }

    /// The table currently in use.
    pub fn current_table(&self) -> &LookupTable {
        self.encoder.table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training() -> Vec<f64> {
        (0..500).map(|i| 100.0 + ((i * 13) % 50) as f64).collect()
    }

    #[test]
    fn detector_quiet_on_same_distribution() {
        let mut d = DriftDetector::new(training(), 200).unwrap();
        assert_eq!(d.statistic(), None, "no statistic before window fills");
        for i in 0..200 {
            d.push(100.0 + ((i * 13) % 50) as f64);
        }
        let s = d.statistic().unwrap();
        assert!(s < 0.1, "same distribution should look calm, got {s}");
    }

    #[test]
    fn detector_fires_on_shift() {
        let mut d = DriftDetector::new(training(), 200).unwrap();
        for i in 0..200 {
            d.push(1000.0 + ((i * 13) % 50) as f64); // 10× level shift
        }
        let s = d.statistic().unwrap();
        assert!(s > 0.9, "disjoint distributions should max the KS distance, got {s}");
    }

    #[test]
    fn detector_rebase_resets() {
        let mut d = DriftDetector::new(training(), 100).unwrap();
        for i in 0..100 {
            d.push(1000.0 + (i % 50) as f64);
        }
        assert!(d.statistic().unwrap() > 0.9);
        d.rebase();
        assert!(d.statistic().unwrap() < 0.05, "after rebase the window matches the reference");
    }

    #[test]
    fn detector_validation() {
        assert!(DriftDetector::new(vec![], 10).is_err());
        assert!(DriftDetector::new(vec![1.0], 1).is_err());
    }

    #[test]
    fn adaptive_encoder_rebuilds_once_per_regime() {
        let train = training();
        let table =
            LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(8).unwrap(), &train)
                .unwrap();
        let mut enc = AdaptiveEncoder::new(
            table,
            train,
            SeparatorMethod::Median,
            60,
            Aggregation::Mean,
            0.5,
            200,
        )
        .unwrap();

        let mut tables = 0;
        let mut t = 0i64;
        // Regime 1: same as training — no rebuild expected.
        for i in 0..400 {
            let msgs = enc.push(t, 100.0 + ((i * 13) % 50) as f64).unwrap();
            tables += msgs.iter().filter(|m| matches!(m, SensorMessage::Table(_))).count();
            t += 1;
        }
        assert_eq!(tables, 0, "no drift yet");

        // Regime 2: level shift — exactly one rebuild (then rebase + cooldown).
        for i in 0..600 {
            let msgs = enc.push(t, 1000.0 + ((i * 13) % 50) as f64).unwrap();
            tables += msgs.iter().filter(|m| matches!(m, SensorMessage::Table(_))).count();
            t += 1;
        }
        assert_eq!(tables, 1, "one rebuild for one regime change");
        assert_eq!(enc.stats().rebuilds, 1);

        // The rebuilt table should now cover the new level.
        let (_, hi) = enc.current_table().value_range();
        assert!(hi >= 1000.0, "table retrained on the new regime, max {hi}");
        enc.finish();
        assert!(enc.stats().symbols > 0);
    }

    #[test]
    fn adaptive_encoder_validates_threshold() {
        let train = training();
        let table =
            LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(4).unwrap(), &train)
                .unwrap();
        assert!(AdaptiveEncoder::new(
            table,
            train,
            SeparatorMethod::Median,
            60,
            Aggregation::Mean,
            0.0,
            100
        )
        .is_err());
    }
}
