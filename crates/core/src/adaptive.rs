//! On-the-fly lookup-table adaptation (paper §4 future work: "when the
//! consumer consumption pattern changes drastically, e.g., due to seasonal
//! change, or having an additional family member, on the fly symbol table
//! modification could be useful").
//!
//! This is the production drift path: bounded memory, deterministic, and
//! epoch-versioned.
//!
//! * [`DriftDetector`] holds no raw history. The reference distribution and
//!   the recent window are both [`QuantileSketch`]es — `O(log n)` bytes per
//!   meter — and the drift statistic is a two-sample Kolmogorov–Smirnov
//!   distance evaluated over sketch rank queries.
//! * [`AdaptiveEncoder`] gates rebuilds with **hysteresis** (an
//!   over-threshold reading only fires while the detector is armed; it
//!   re-arms once the statistic falls below half the threshold) and a
//!   **minimum rebuild interval**, so noisy meters cannot thrash retraining.
//!   Suppressed firings are counted per cause in [`AdaptiveStats`].
//! * Every rebuild is a **cutover to a new epoch**: the rebuilt table ships
//!   as [`SensorMessage::EpochTable`] carrying a monotonic per-meter version,
//!   so the server (and the segment store) can record which table encoded
//!   which symbols and old epochs remain decodable — exactly the protocol the
//!   paper sketches ("rebuilding and resending the lookup table periodically
//!   or if the distribution of the data changes too much", §2).

use crate::alphabet::Alphabet;
use crate::encoder::{OnlineEncoder, SensorMessage};
use crate::error::{Error, Result};
use crate::lookup::LookupTable;
use crate::separators::SeparatorMethod;
use crate::stats::QuantileSketch;
use crate::telemetry::{Log2Histogram, Registry};
use crate::timeseries::Timestamp;
use crate::vertical::Aggregation;

/// Sketch capacity used by drift detectors: small enough that a million
/// meters fit in a few GiB, accurate enough for a KS test over 16–64 bins.
pub const DRIFT_SKETCH_K: usize = 64;

/// Quantile probes per side when evaluating the KS statistic.
const KS_GRID: usize = 64;

/// Two-sample distribution-shift detector over streaming quantile sketches:
/// a sealed reference distribution versus a recent window, both `O(log n)`
/// memory, compared by Kolmogorov–Smirnov distance over rank queries.
///
/// The "window" is the classic two-buffer sliding approximation: samples
/// fill a current sketch; each time it reaches `window_size` samples it
/// becomes the previous sketch and a fresh one starts. The effective window
/// therefore covers between `window_size` and `2 × window_size` recent
/// samples — never less, never unboundedly more — without retaining any raw
/// values.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    reference: QuantileSketch,
    prev: QuantileSketch,
    cur: QuantileSketch,
    window_size: usize,
}

impl DriftDetector {
    /// Creates a detector whose frozen reference is sketched from
    /// `reference` and whose sliding window covers `window_size` to
    /// `2 × window_size` recent values.
    ///
    /// NaN in the reference is a typed error at this trust boundary
    /// ([`Error::NonFiniteValue`] with the offending index) — the PR 6
    /// policy: ±∞ is data, NaN is an error. The old implementation accepted
    /// NaN here and panicked later inside the quantile sort.
    pub fn new(reference: &[f64], window_size: usize) -> Result<Self> {
        if reference.is_empty() {
            return Err(Error::EmptyInput("DriftDetector reference"));
        }
        let mut sketch = QuantileSketch::new(DRIFT_SKETCH_K)?;
        for (index, &v) in reference.iter().enumerate() {
            if v.is_nan() {
                return Err(Error::NonFiniteValue { index });
            }
            sketch.update(v)?;
        }
        Self::from_sketch(sketch, window_size)
    }

    /// Creates a detector from an already-built reference sketch (the fleet
    /// path, where training never materializes a raw sample).
    pub fn from_sketch(reference: QuantileSketch, window_size: usize) -> Result<Self> {
        if reference.is_empty() {
            return Err(Error::EmptyInput("DriftDetector reference"));
        }
        if window_size < 2 {
            return Err(Error::InvalidParameter {
                name: "window_size",
                reason: "must be at least 2".to_string(),
            });
        }
        Ok(DriftDetector {
            reference,
            prev: QuantileSketch::new(DRIFT_SKETCH_K)?,
            cur: QuantileSketch::new(DRIFT_SKETCH_K)?,
            window_size,
        })
    }

    /// Feeds one recent value. NaN is ignored (the encoder upstream rejects
    /// it with a typed error; the detector must not corrupt its ordering).
    pub fn push(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.cur.update(v).expect("NaN filtered above");
        if self.cur.count() as usize >= self.window_size {
            self.prev = std::mem::replace(
                &mut self.cur,
                QuantileSketch::new(DRIFT_SKETCH_K).expect("constant capacity is valid"),
            );
        }
    }

    /// Recent samples currently covered by the window sketches.
    pub fn window_len(&self) -> usize {
        (self.prev.count() + self.cur.count()) as usize
    }

    /// Whether enough recent samples are buffered for the statistic to be
    /// meaningful.
    pub fn window_full(&self) -> bool {
        self.window_len() >= self.window_size
    }

    /// A merged sketch of the recent window (used for retraining the table
    /// on the post-drift distribution).
    pub fn window_sketch(&self) -> QuantileSketch {
        let mut w = self.prev.clone();
        w.merge(&self.cur);
        w
    }

    /// Two-sample KS distance between the reference and the recent window
    /// (`None` until the window fills), evaluated on a quantile probe grid
    /// drawn from both distributions.
    pub fn statistic(&self) -> Option<f64> {
        if !self.window_full() {
            return None;
        }
        let win = self.window_sketch();
        let n_ref = self.reference.count() as f64;
        let n_win = win.count() as f64;
        let mut d: f64 = 0.0;
        for i in 0..=KS_GRID {
            let q = i as f64 / KS_GRID as f64;
            for x in [self.reference.quantile(q), win.quantile(q)] {
                let x = x.expect("both sketches are non-empty");
                let f_ref = self.reference.rank(x) as f64 / n_ref;
                let f_win = win.rank(x) as f64 / n_win;
                d = d.max((f_ref - f_win).abs());
            }
        }
        Some(d.min(1.0))
    }

    /// Replaces the reference with the merged window sketch and restarts the
    /// window (called after a table rebuild so drift is measured against the
    /// new regime).
    pub fn rebase(&mut self) {
        self.reference = self.window_sketch();
        self.prev = QuantileSketch::new(DRIFT_SKETCH_K).expect("constant capacity is valid");
        self.cur = QuantileSketch::new(DRIFT_SKETCH_K).expect("constant capacity is valid");
    }

    /// Bytes currently held across the detector's three sketches — the
    /// `O(log n)` memory budget the fleet engine accounts per house.
    pub fn sketch_bytes(&self) -> usize {
        self.reference.memory_bytes() + self.prev.memory_bytes() + self.cur.memory_bytes()
    }
}

/// Statistics of one adaptive-encoding run; the `"adaptive"` stats block of
/// [`crate::engine::EngineStats`] and the Prometheus exposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Table rebuilds triggered by drift (each ships one epoch).
    pub rebuilds: u64,
    /// Over-threshold drift readings suppressed because the detector had
    /// fired recently and not yet re-armed (the statistic never fell below
    /// the re-arm threshold).
    pub suppressed_hysteresis: u64,
    /// Over-threshold drift readings suppressed by the minimum rebuild
    /// interval.
    pub suppressed_min_interval: u64,
    /// Epoch-versioned tables shipped (equals `rebuilds` for a single
    /// encoder; summed across a fleet).
    pub epochs_shipped: u64,
    /// Bytes currently held by quantile sketches (gauge).
    pub sketch_bytes: u64,
    /// Raw samples processed.
    pub samples: u64,
    /// Symbols emitted.
    pub symbols: u64,
    /// Samples between the first suppressed over-threshold reading and the
    /// rebuild that eventually served it — how long cutover lagged behind
    /// detectable drift.
    pub cutover_lag: Log2Histogram,
}

impl AdaptiveStats {
    /// Folds another run's counters into this one (histograms merge
    /// commutatively; the sketch-bytes gauge adds, since fleet totals are
    /// the sum over meters).
    pub fn merge(&mut self, other: &AdaptiveStats) {
        self.rebuilds += other.rebuilds;
        self.suppressed_hysteresis += other.suppressed_hysteresis;
        self.suppressed_min_interval += other.suppressed_min_interval;
        self.epochs_shipped += other.epochs_shipped;
        self.sketch_bytes += other.sketch_bytes;
        self.samples += other.samples;
        self.symbols += other.symbols;
        self.cutover_lag.merge(&other.cutover_lag);
    }

    /// Registers this block's [`crate::telemetry::CATALOG`] metrics into
    /// `reg` and loads their current values.
    pub fn register_into(&self, reg: &Registry) {
        reg.register_block("adaptive");
        reg.add("sms_adaptive_rebuilds", self.rebuilds);
        reg.add("sms_adaptive_suppressed_hysteresis", self.suppressed_hysteresis);
        reg.add("sms_adaptive_suppressed_min_interval", self.suppressed_min_interval);
        reg.add("sms_adaptive_epochs_shipped", self.epochs_shipped);
        reg.set("sms_adaptive_sketch_bytes", self.sketch_bytes);
        reg.add("sms_adaptive_samples", self.samples);
        reg.add("sms_adaptive_symbols", self.symbols);
        reg.merge_histogram("sms_adaptive_cutover_lag", &self.cutover_lag);
    }
}

/// Online encoder that rebuilds its lookup table when the raw-value
/// distribution drifts, shipping each rebuilt table under a new epoch.
#[derive(Debug)]
pub struct AdaptiveEncoder {
    encoder: OnlineEncoder,
    detector: DriftDetector,
    method: SeparatorMethod,
    alphabet: Alphabet,
    threshold: f64,
    /// Hysteresis: a firing dis-arms the detector; it re-arms once the
    /// statistic falls below `threshold / 2`, or once the detection window
    /// has fully turned over since the rebuild (`2 × min_interval` samples),
    /// so a rebuild trained on a window straddling the drift cannot
    /// suppress its own correction forever.
    armed: bool,
    /// Minimum samples between rebuilds.
    min_interval: u64,
    since_rebuild: u64,
    /// Sample count at the first suppressed over-threshold reading since the
    /// last rebuild (for the cutover-lag histogram).
    pending_since: Option<u64>,
    epoch: u32,
    stats: AdaptiveStats,
}

impl AdaptiveEncoder {
    /// Wraps a trained table. `threshold` is the KS distance that triggers a
    /// rebuild (typical values 0.1–0.3); `window_size` is the recent-sample
    /// window used both for detection and for re-training, and doubles as
    /// the minimum rebuild interval.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        table: LookupTable,
        training_values: Vec<f64>,
        method: SeparatorMethod,
        window_secs: i64,
        aggregation: Aggregation,
        threshold: f64,
        window_size: usize,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&threshold) || threshold == 0.0 {
            return Err(Error::InvalidParameter {
                name: "threshold",
                reason: format!("must be in (0, 1], got {threshold}"),
            });
        }
        let alphabet = table.alphabet();
        Ok(AdaptiveEncoder {
            encoder: OnlineEncoder::new(table, window_secs, aggregation)?,
            detector: DriftDetector::new(&training_values, window_size)?,
            method,
            alphabet,
            threshold,
            armed: true,
            min_interval: window_size as u64,
            since_rebuild: 0,
            pending_since: None,
            epoch: 0,
            stats: AdaptiveStats::default(),
        })
    }

    /// Feeds one raw sample; returns wire messages (an epoch-versioned
    /// rebuilt table and/or an encoded window).
    pub fn push(&mut self, t: Timestamp, v: f64) -> Result<Vec<SensorMessage>> {
        let mut out = Vec::new();
        if let Some(w) = self.encoder.push(t, v)? {
            self.stats.symbols += 1;
            out.push(SensorMessage::Window(w));
        }
        // Past the encoder's validation: v is finite from here on.
        self.stats.samples += 1;
        self.since_rebuild += 1;
        self.detector.push(v);

        if let Some(d) = self.detector.statistic() {
            // Re-arm when the statistic settles, or once the detection
            // window has fully turned over since the rebuild: a rebuild
            // that fired on a window straddling the drift leaves a mixed
            // reference the statistic never settles against, and the
            // corrective rebuild must not be suppressed forever.
            if !self.armed
                && (d < self.threshold / 2.0 || self.since_rebuild >= 2 * self.min_interval)
            {
                self.armed = true;
            }
            if d > self.threshold {
                if !self.armed {
                    self.stats.suppressed_hysteresis += 1;
                } else if self.since_rebuild < self.min_interval {
                    self.stats.suppressed_min_interval += 1;
                    self.pending_since.get_or_insert(self.stats.samples);
                } else {
                    out.push(self.cut_over()?);
                }
            }
        }
        self.stats.sketch_bytes = self.detector.sketch_bytes() as u64;
        Ok(out)
    }

    /// Rebuilds the table from the window sketch, bumps the epoch, rebases
    /// the detector, and returns the epoch-table message.
    fn cut_over(&mut self) -> Result<SensorMessage> {
        let table = LookupTable::learn_from_sketch(
            self.method,
            self.alphabet,
            &self.detector.window_sketch(),
        )?;
        self.encoder.set_table(table.clone());
        self.detector.rebase();
        let lag = self.stats.samples - self.pending_since.take().unwrap_or(self.stats.samples);
        self.stats.cutover_lag.observe(lag);
        self.since_rebuild = 0;
        self.armed = false;
        self.epoch += 1;
        self.stats.rebuilds += 1;
        self.stats.epochs_shipped += 1;
        Ok(SensorMessage::EpochTable { epoch: self.epoch, table })
    }

    /// Flushes the trailing window.
    pub fn finish(&mut self) -> Vec<SensorMessage> {
        match self.encoder.finish() {
            Some(w) => {
                self.stats.symbols += 1;
                vec![SensorMessage::Window(w)]
            }
            None => Vec::new(),
        }
    }

    /// Run statistics so far.
    pub fn stats(&self) -> AdaptiveStats {
        self.stats
    }

    /// The table currently in use.
    pub fn current_table(&self) -> &LookupTable {
        self.encoder.table()
    }

    /// The epoch of the table currently in use (0 until the first cutover).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training() -> Vec<f64> {
        (0..500).map(|i| 100.0 + ((i * 13) % 50) as f64).collect()
    }

    #[test]
    fn detector_quiet_on_same_distribution() {
        let mut d = DriftDetector::new(&training(), 200).unwrap();
        assert_eq!(d.statistic(), None, "no statistic before window fills");
        for i in 0..200 {
            d.push(100.0 + ((i * 13) % 50) as f64);
        }
        let s = d.statistic().unwrap();
        assert!(s < 0.15, "same distribution should look calm, got {s}");
    }

    #[test]
    fn detector_fires_on_shift() {
        let mut d = DriftDetector::new(&training(), 200).unwrap();
        for i in 0..200 {
            d.push(1000.0 + ((i * 13) % 50) as f64); // 10× level shift
        }
        let s = d.statistic().unwrap();
        assert!(s > 0.9, "disjoint distributions should max the KS distance, got {s}");
    }

    #[test]
    fn detector_rebase_resets() {
        let mut d = DriftDetector::new(&training(), 100).unwrap();
        for i in 0..100 {
            d.push(1000.0 + (i % 50) as f64);
        }
        assert!(d.statistic().unwrap() > 0.9);
        d.rebase();
        assert_eq!(d.statistic(), None, "rebase restarts the window");
        for i in 0..100 {
            d.push(1000.0 + (i % 50) as f64);
        }
        assert!(d.statistic().unwrap() < 0.15, "after rebase the new regime is the reference");
    }

    #[test]
    fn detector_validation_rejects_nan_reference() {
        assert!(DriftDetector::new(&[], 10).is_err());
        assert!(DriftDetector::new(&[1.0], 1).is_err());
        // Regression: a NaN reference used to pass construction and panic
        // later inside the exact-quantile sort. It is now a typed error at
        // the trust boundary, with the offending index.
        match DriftDetector::new(&[1.0, 2.0, f64::NAN, 4.0], 10) {
            Err(Error::NonFiniteValue { index }) => assert_eq!(index, 2),
            other => panic!("expected NonFiniteValue {{ index: 2 }}, got {other:?}"),
        }
        // ±∞ is data, per the PR 6 NaN policy.
        assert!(DriftDetector::new(&[1.0, f64::INFINITY], 10).is_ok());
    }

    #[test]
    fn detector_memory_stays_bounded() {
        let mut d = DriftDetector::new(&training(), 500).unwrap();
        let mut peak = 0;
        for i in 0..200_000u64 {
            d.push((i % 997) as f64);
            peak = peak.max(d.sketch_bytes());
        }
        assert!(peak < 64 * 1024, "sketch memory must stay O(log n), got {peak} bytes");
    }

    #[test]
    fn adaptive_encoder_rebuilds_once_per_regime() {
        let train = training();
        let table =
            LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(8).unwrap(), &train)
                .unwrap();
        let mut enc = AdaptiveEncoder::new(
            table,
            train,
            SeparatorMethod::Median,
            60,
            Aggregation::Mean,
            0.5,
            200,
        )
        .unwrap();

        let is_table = |m: &SensorMessage| {
            matches!(m, SensorMessage::EpochTable { .. } | SensorMessage::Table(_))
        };
        let mut tables = 0;
        let mut t = 0i64;
        // Regime 1: same as training — no rebuild expected.
        for i in 0..400 {
            let msgs = enc.push(t, 100.0 + ((i * 13) % 50) as f64).unwrap();
            tables += msgs.iter().filter(|m| is_table(m)).count();
            t += 1;
        }
        assert_eq!(tables, 0, "no drift yet");
        assert_eq!(enc.epoch(), 0);

        // Regime 2: level shift — exactly one rebuild (then rebase,
        // hysteresis dis-arm, and the min interval hold further firings).
        for i in 0..600 {
            let msgs = enc.push(t, 1000.0 + ((i * 13) % 50) as f64).unwrap();
            tables += msgs.iter().filter(|m| is_table(m)).count();
            t += 1;
        }
        assert_eq!(tables, 1, "one rebuild for one regime change");
        assert_eq!(enc.stats().rebuilds, 1);
        assert_eq!(enc.stats().epochs_shipped, 1);
        assert_eq!(enc.epoch(), 1, "first cutover ships epoch 1");

        // The rebuilt table should now cover the new level.
        let (_, hi) = enc.current_table().value_range();
        assert!(hi >= 1000.0, "table retrained on the new regime, max {hi}");
        assert!(enc.stats().sketch_bytes > 0, "sketch bytes are accounted");
        enc.finish();
        assert!(enc.stats().symbols > 0);
    }

    #[test]
    fn adaptive_encoder_min_interval_suppresses_thrash() {
        let train = training();
        let table =
            LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(8).unwrap(), &train)
                .unwrap();
        let mut enc = AdaptiveEncoder::new(
            table,
            train,
            SeparatorMethod::Median,
            60,
            Aggregation::Mean,
            0.3,
            100,
        )
        .unwrap();
        let mut t = 0i64;
        // Shift, then shift again immediately: the second regime change lands
        // inside the min interval / un-armed span and must be suppressed.
        for i in 0..150 {
            enc.push(t, 1000.0 + (i % 50) as f64).unwrap();
            t += 1;
        }
        let after_first = enc.stats().rebuilds;
        for i in 0..80 {
            enc.push(t, 5000.0 + (i % 50) as f64).unwrap();
            t += 1;
        }
        let s = enc.stats();
        assert_eq!(after_first, 1);
        assert!(
            s.suppressed_min_interval > 0 || s.suppressed_hysteresis > 0,
            "rapid re-drift must be visibly suppressed, got {s:?}"
        );
        assert!(s.rebuilds <= 2, "gating must prevent per-sample rebuild thrash");
    }

    #[test]
    fn adaptive_encoder_validates_threshold() {
        let train = training();
        let table =
            LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(4).unwrap(), &train)
                .unwrap();
        assert!(AdaptiveEncoder::new(
            table,
            train,
            SeparatorMethod::Median,
            60,
            Aggregation::Mean,
            0.0,
            100
        )
        .is_err());
    }

    #[test]
    fn adaptive_stats_merge_is_commutative() {
        let mut a = AdaptiveStats { rebuilds: 1, samples: 10, ..AdaptiveStats::default() };
        a.cutover_lag.observe(5);
        let mut b = AdaptiveStats { rebuilds: 2, symbols: 3, ..AdaptiveStats::default() };
        b.cutover_lag.observe(9);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.rebuilds, 3);
        assert_eq!(ab.cutover_lag.count(), 2);
    }
}
