//! Shared bounded-channel worker pool with optional supervision.
//!
//! The fan-out/fan-in core that [`crate::engine::FleetEngine`] introduced for
//! fleet encoding, generalized so any indexed batch of independent jobs —
//! fleet houses, cross-validation folds, experiment-matrix cells — runs
//! through the same machinery:
//!
//! ```text
//!              ┌──────────┐   job indices    ┌───────────┐
//!  0..n_jobs ─▶│  feeder  │═════bounded═════▶│ worker 0  │──┐
//!              └──────────┘       MPMC       ├───────────┤  │ (idx, R)
//!                                       ════▶│ worker 1  │──┼═══════▶ collector
//!                                       ════▶│    …      │──┘   places results[idx]
//!                                            └───────────┘
//! ```
//!
//! Two entry-point families share that topology:
//!
//! * [`run_indexed`] / [`run_indexed_with`] — the fast path. A panicking
//!   job fails the whole run, but as a typed [`Error::Engine`] `Result`
//!   rather than a process abort.
//! * [`run_indexed_supervised`] / [`run_indexed_supervised_with`] — the
//!   hardened path. Every job executes under `catch_unwind`; a panicking
//!   job is retried per [`RetryPolicy`] (deterministic jittered backoff),
//!   bounded by an optional per-run deadline, and reported as a per-job
//!   [`Outcome`] inside a [`PoolReport`] instead of taking the run down.
//!   A worker whose thread body itself crashes is re-armed with fresh
//!   scratch state (a logical respawn), so one panic never shrinks the
//!   pool.
//!
//! Determinism contract: the collector writes every result back at its job
//! index, so the output is **independent of worker count and scheduling**
//! whenever each job is a pure function of its index (and, under
//! supervision, of its attempt number). Callers that fold the results do so
//! over that index-ordered vector, which is what makes parallel
//! cross-validation bit-identical to serial (see `DESIGN.md` §9) and fleet
//! quarantine decisions bit-identical at any worker count (`DESIGN.md` §10).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel;

use crate::error::{Error, Result};
use crate::json::JsonWriter;
use crate::telemetry::{Log2Histogram, Registry, ShardSet};

/// Parallelism knobs for one pool run.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker thread count; `0` means one thread per available core.
    pub workers: usize,
    /// Capacity of the bounded job queue.
    pub channel_capacity: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { workers: 0, channel_capacity: 64 }
    }
}

impl PoolConfig {
    /// Config with an explicit worker count and defaults otherwise.
    pub fn with_workers(workers: usize) -> Self {
        PoolConfig { workers, ..Self::default() }
    }

    /// The effective thread count: `workers`, or the machine's parallelism
    /// when `workers` is `0`, never exceeding the job count.
    pub fn effective_workers(&self, n_jobs: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.workers
        };
        requested.max(1).min(n_jobs.max(1))
    }
}

/// Retry schedule for supervised jobs whose attempt panicked.
///
/// Delays are **fully deterministic**: exponential doubling from
/// [`backoff_base`](Self::backoff_base), saturating at
/// [`backoff_cap`](Self::backoff_cap), plus a jitter derived by hashing the
/// `(job index, attempt)` pair — no wall-clock or RNG nondeterminism, so a
/// replayed run waits exactly as long as the original while distinct jobs
/// still decorrelate their retry storms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, counting the first (`1` = never retry).
    pub max_attempts: u32,
    /// Delay before the first retry; later retries double it.
    pub backoff_base: Duration,
    /// Upper bound on any single retry delay.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Policy that retries up to `max_attempts` total attempts with the
    /// default backoff schedule.
    pub fn with_max_attempts(max_attempts: u32) -> Self {
        RetryPolicy { max_attempts: max_attempts.max(1), ..Self::default() }
    }

    /// Disables the inter-attempt sleep (for tests and benchmarks).
    pub fn no_backoff(mut self) -> Self {
        self.backoff_base = Duration::ZERO;
        self
    }

    /// The deterministic delay before retrying `job` after its
    /// `attempt`-th attempt (1-based) failed: `backoff_base * 2^(attempt-1)`
    /// capped at `backoff_cap`, plus up to 50% index-derived jitter.
    pub fn delay(&self, job: usize, attempt: u32) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let step = self
            .backoff_base
            .saturating_mul(1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(u32::MAX))
            .min(self.backoff_cap);
        let jitter_span = step.as_nanos() as u64 / 2;
        if jitter_span == 0 {
            return step;
        }
        let jitter = splitmix64((job as u64) ^ ((attempt as u64) << 32)) % (jitter_span + 1);
        (step + Duration::from_nanos(jitter)).min(self.backoff_cap)
    }
}

/// SplitMix64 — a tiny, well-mixed hash used to derive jitter from job
/// coordinates without any RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Supervision knobs for one [`run_indexed_supervised`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorPolicy {
    /// Retry schedule applied when a job attempt panics.
    pub retry: RetryPolicy,
    /// Per-run deadline: once elapsed, jobs that have not yet started an
    /// attempt resolve to [`Outcome::TimedOut`] instead of executing
    /// (attempts already running are never interrupted — safe Rust cannot
    /// cancel them — so the run drains quickly but cooperatively).
    pub deadline: Option<Duration>,
}

impl SupervisorPolicy {
    /// Policy with a retry schedule and no deadline.
    pub fn with_retry(retry: RetryPolicy) -> Self {
        SupervisorPolicy { retry, deadline: None }
    }

    /// Sets the per-run deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Per-job result of a supervised run.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome<R> {
    /// The first attempt succeeded.
    Ok(R),
    /// The job succeeded after `retries` panicking attempts.
    Retried {
        /// The successful attempt's result.
        value: R,
        /// How many earlier attempts panicked.
        retries: u32,
    },
    /// Every allowed attempt panicked; `message` is the last panic payload.
    Panicked {
        /// Rendered payload of the final panic.
        message: String,
        /// Attempts consumed (== the policy's `max_attempts`).
        attempts: u32,
    },
    /// The run's deadline elapsed before this job could start an attempt.
    TimedOut,
}

impl<R> Outcome<R> {
    /// The successful value, if any (first-try or retried).
    pub fn value(&self) -> Option<&R> {
        match self {
            Outcome::Ok(v) | Outcome::Retried { value: v, .. } => Some(v),
            _ => None,
        }
    }

    /// Consumes the outcome, returning the successful value if any.
    pub fn into_value(self) -> Option<R> {
        match self {
            Outcome::Ok(v) | Outcome::Retried { value: v, .. } => Some(v),
            _ => None,
        }
    }

    /// Whether the job produced a value.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Ok(_) | Outcome::Retried { .. })
    }
}

/// Why a supervised job produced no value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Every allowed attempt panicked.
    Panic,
    /// The per-run deadline elapsed before the job ran.
    Deadline,
}

/// One failed job of a supervised run, in job-index order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobFailure {
    /// Index of the failed job.
    pub index: usize,
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable detail (the last panic payload, or a deadline note).
    pub message: String,
    /// Attempts consumed before giving up.
    pub attempts: u32,
}

/// Everything a supervised run reports: index-ordered per-job outcomes, the
/// failures extracted from them (also index-ordered), and run counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolReport<R> {
    /// `results[i]` is the outcome of job `i`.
    pub results: Vec<Outcome<R>>,
    /// Jobs that produced no value, in index order.
    pub errors: Vec<JobFailure>,
    /// Counters for the run.
    pub stats: PoolStats,
}

impl<R> PoolReport<R> {
    /// Consumes the report, returning `(index, value)` for every job that
    /// succeeded (first-try or after retries), in index order.
    pub fn into_successes(self) -> Vec<(usize, R)> {
        self.results
            .into_iter()
            .enumerate()
            .filter_map(|(i, o)| o.into_value().map(|v| (i, v)))
            .collect()
    }
}

/// Counters describing one pool run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads actually spawned.
    pub workers: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Capacity of the bounded job queue.
    pub queue_capacity: usize,
    /// High-water mark of jobs enqueued but not yet claimed by a worker.
    /// Sampled from the bounded channel's exact length (taken under the
    /// channel lock) after each enqueue, so it can never exceed
    /// `queue_capacity`; being a sample, it may undershoot the
    /// instantaneous peak but never overshoots it.
    pub max_queue_depth: usize,
    /// Job attempts that panicked (caught by the supervisor; includes
    /// attempts that were later retried successfully).
    pub panics: u64,
    /// Retry attempts executed after a panicking attempt.
    pub retries: u64,
    /// Jobs that exhausted every allowed attempt.
    pub gave_up: u64,
    /// Jobs skipped because the per-run deadline had elapsed.
    pub deadline_exceeded: u64,
    /// Times a worker's thread body crashed and was re-armed with fresh
    /// scratch state (a logical respawn; per-job panics are caught one
    /// level deeper and do not count here).
    pub respawns: u64,
    /// Distribution of attempts needed per resolved job (1 = first try).
    /// Recorded into per-worker [`ShardSet`] shards and merged in
    /// worker-index order, so it is identical at any worker count.
    /// Rendered through the `"histograms"` section of
    /// [`crate::engine::EngineStats::to_json`], not this block's object.
    pub job_attempts: Log2Histogram,
}

impl PoolStats {
    /// Registers this block's [`crate::telemetry::CATALOG`] metrics into
    /// `reg` and loads their current values.
    pub fn register_into(&self, reg: &Registry) {
        reg.register_block("pool");
        reg.set("sms_pool_workers", self.workers as u64);
        reg.add("sms_pool_jobs", self.jobs as u64);
        reg.set("sms_pool_queue_capacity", self.queue_capacity as u64);
        reg.set_max("sms_pool_max_queue_depth", self.max_queue_depth as u64);
        reg.add("sms_pool_panics", self.panics);
        reg.add("sms_pool_retries", self.retries);
        reg.add("sms_pool_gave_up", self.gave_up);
        reg.add("sms_pool_deadline_exceeded", self.deadline_exceeded);
        reg.add("sms_pool_respawns", self.respawns);
        reg.merge_histogram("sms_pool_job_attempts", &self.job_attempts);
    }

    /// Writes this block as one JSON value into `w` (shared with
    /// [`crate::engine::EngineStats::to_json`]). The key names and order
    /// come from the telemetry [`crate::telemetry::CATALOG`].
    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        let reg = Registry::new();
        self.register_into(&reg);
        reg.write_block_json(w, "pool");
    }

    /// JSON object for benchmark trajectories.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Renders a caught panic payload (`&str` and `String` payloads cover
/// `panic!` in practice; anything else is labelled opaquely).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `n_jobs` independent jobs across a worker pool and returns the
/// results in job order. `job(idx)` must be a pure function of `idx` for the
/// output to be deterministic (the pool guarantees placement, the caller
/// guarantees purity). Fallible jobs simply use `R = Result<T>` and the
/// caller short-circuits over the ordered results, which keeps *which* error
/// surfaces deterministic too.
///
/// A panicking job fails the whole run with a typed [`Error::Engine`]
/// instead of aborting the process; callers that must survive poisoned jobs
/// use [`run_indexed_supervised`].
pub fn run_indexed<R, F>(n_jobs: usize, config: &PoolConfig, job: F) -> Result<(Vec<R>, PoolStats)>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_indexed_with(n_jobs, config, || (), move |(), idx| job(idx))
}

/// [`run_indexed`] with per-worker scratch state: `init` runs once on each
/// worker thread and the resulting state is passed to every job that worker
/// claims. This is how the fleet encoder keeps allocation-free reusable
/// buffers without any locking.
pub fn run_indexed_with<S, R, I, F>(
    n_jobs: usize,
    config: &PoolConfig,
    init: I,
    job: F,
) -> Result<(Vec<R>, PoolStats)>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = config.effective_workers(n_jobs);
    let cap = config.channel_capacity.max(1);
    let mut stats =
        PoolStats { workers, jobs: n_jobs, queue_capacity: cap, ..PoolStats::default() };
    if n_jobs == 0 {
        return Ok((Vec::new(), stats));
    }

    let mut results: Vec<Option<R>> = (0..n_jobs).map(|_| None).collect();
    let high_water = AtomicUsize::new(0);
    let shards = ShardSet::new(workers);
    // `std::thread::scope` (under the compat crossbeam wrapper) re-raises a
    // spawned thread's panic on the joining thread; catching it here turns
    // "one poisoned job aborts the fleet run" into a typed error. The
    // `AssertUnwindSafe` is sound because on the error path every borrowed
    // value (`results`, the gauges) is either discarded or written only
    // through atomics.
    let run = catch_unwind(AssertUnwindSafe(|| {
        crossbeam::thread::scope(|s| {
            let (job_tx, job_rx) = channel::bounded::<usize>(cap);
            let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
            for w in 0..workers {
                let job_rx = job_rx.clone();
                let res_tx = res_tx.clone();
                let (init, job, shards) = (&init, &job, &shards);
                s.spawn(move |_| {
                    let mut state = init();
                    for idx in job_rx.iter() {
                        let r = job(&mut state, idx);
                        // Every fast-path job resolves on its first try;
                        // the shard still records per worker so the merge
                        // (index order, commutative adds) is exercised on
                        // every run, not only under supervision.
                        shards.with(w, |sh| sh.observe("sms_pool_job_attempts", 1));
                        if res_tx.send((idx, r)).is_err() {
                            break; // collector is gone
                        }
                    }
                });
            }
            drop(job_rx);
            drop(res_tx);
            for idx in 0..n_jobs {
                if job_tx.send(idx).is_err() {
                    // Workers only vanish by panicking; the panic will
                    // surface when the scope joins them, so just stop
                    // feeding and let that error win.
                    break;
                }
                // Sample the channel's exact depth after each enqueue. A
                // sample can only undershoot the instantaneous peak, never
                // report more jobs than the bounded channel can hold.
                high_water.fetch_max(job_tx.len(), Ordering::Relaxed);
            }
            drop(job_tx);
            for (idx, r) in res_rx.iter() {
                results[idx] = Some(r);
            }
        })
        .expect("compat scope propagates panics instead of returning Err");
    }));
    if let Err(payload) = run {
        return Err(Error::Engine(format!("pool worker panicked: {}", panic_message(&*payload))));
    }

    stats.max_queue_depth = high_water.load(Ordering::Relaxed);
    stats.job_attempts = shards.merged().histogram("sms_pool_job_attempts");
    let results = results
        .into_iter()
        .enumerate()
        .map(|(idx, r)| r.ok_or_else(|| Error::Engine(format!("job {idx} produced no result"))))
        .collect::<Result<Vec<R>>>()?;
    Ok((results, stats))
}

/// [`run_indexed_supervised_with`] without per-worker scratch state. The
/// job receives `(index, attempt)`; `attempt` is 1-based and only exceeds 1
/// when the policy retried a panicking attempt.
pub fn run_indexed_supervised<R, F>(
    n_jobs: usize,
    config: &PoolConfig,
    policy: &SupervisorPolicy,
    job: F,
) -> PoolReport<R>
where
    R: Send,
    F: Fn(usize, u32) -> R + Sync,
{
    run_indexed_supervised_with(
        n_jobs,
        config,
        policy,
        || (),
        move |(), idx, attempt| job(idx, attempt),
    )
}

/// The supervised pool: every job attempt runs under `catch_unwind`, panics
/// are retried per [`SupervisorPolicy::retry`] (the scratch state is
/// re-initialized after each caught panic, since the panicking attempt may
/// have torn it), jobs that cannot start before the deadline resolve to
/// [`Outcome::TimedOut`], and a worker whose thread body itself crashes is
/// re-armed with fresh scratch instead of shrinking the pool.
///
/// The report's `results` are index-ordered and — when `job` is
/// deterministic per `(index, attempt)` — independent of worker count and
/// scheduling, deadline pressure aside.
pub fn run_indexed_supervised_with<S, R, I, F>(
    n_jobs: usize,
    config: &PoolConfig,
    policy: &SupervisorPolicy,
    init: I,
    job: F,
) -> PoolReport<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, u32) -> R + Sync,
{
    let workers = config.effective_workers(n_jobs);
    let cap = config.channel_capacity.max(1);
    let mut stats =
        PoolStats { workers, jobs: n_jobs, queue_capacity: cap, ..PoolStats::default() };
    if n_jobs == 0 {
        return PoolReport { results: Vec::new(), errors: Vec::new(), stats };
    }

    let deadline_at = policy.deadline.map(|d| Instant::now() + d);
    let retry = policy.retry;
    let mut results: Vec<Option<Outcome<R>>> = (0..n_jobs).map(|_| None).collect();
    let high_water = AtomicUsize::new(0);
    let panics = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let gave_up = AtomicU64::new(0);
    let deadline_exceeded = AtomicU64::new(0);
    let respawns = AtomicU64::new(0);
    let shards = ShardSet::new(workers);

    crossbeam::thread::scope(|s| {
        let (job_tx, job_rx) = channel::bounded::<usize>(cap);
        let (res_tx, res_rx) = channel::unbounded::<(usize, Outcome<R>)>();
        for w in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let (init, job, shards) = (&init, &job, &shards);
            let (panics, retries, gave_up, deadline_exceeded, respawns) =
                (&panics, &retries, &gave_up, &deadline_exceeded, &respawns);
            s.spawn(move |_| {
                // Respawn-in-place loop: should the worker body below ever
                // panic outside the per-attempt catch (an `init` panic, or a
                // result whose channel-send drop panics), the worker is
                // re-armed with fresh scratch and keeps draining the queue
                // rather than shrinking the pool. The job it was holding is
                // repaired by the collector (see the `None` backfill below).
                loop {
                    let body = catch_unwind(AssertUnwindSafe(|| {
                        let mut state = init();
                        for idx in job_rx.iter() {
                            let mut attempt = 0u32;
                            let outcome = loop {
                                if let Some(t) = deadline_at {
                                    if Instant::now() >= t {
                                        deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                        break Outcome::TimedOut;
                                    }
                                }
                                attempt += 1;
                                if attempt > 1 {
                                    retries.fetch_add(1, Ordering::Relaxed);
                                    std::thread::sleep(retry.delay(idx, attempt - 1));
                                }
                                match catch_unwind(AssertUnwindSafe(|| {
                                    job(&mut state, idx, attempt)
                                })) {
                                    Ok(value) => {
                                        break if attempt == 1 {
                                            Outcome::Ok(value)
                                        } else {
                                            Outcome::Retried { value, retries: attempt - 1 }
                                        };
                                    }
                                    Err(payload) => {
                                        panics.fetch_add(1, Ordering::Relaxed);
                                        // The attempt may have torn the
                                        // scratch buffers mid-write; rebuild
                                        // them before any retry touches them.
                                        state = init();
                                        if attempt >= retry.max_attempts.max(1) {
                                            gave_up.fetch_add(1, Ordering::Relaxed);
                                            break Outcome::Panicked {
                                                message: panic_message(&*payload),
                                                attempts: attempt,
                                            };
                                        }
                                    }
                                }
                            };
                            // Attempts-per-job is a pure function of the
                            // job index (given a deterministic fault
                            // plan), so the merged shard histogram is
                            // worker-count-independent; timed-out jobs ran
                            // zero attempts and are skipped.
                            if !matches!(outcome, Outcome::TimedOut) {
                                shards.with(w, |sh| {
                                    sh.observe("sms_pool_job_attempts", u64::from(attempt))
                                });
                            }
                            if res_tx.send((idx, outcome)).is_err() {
                                return; // collector is gone
                            }
                        }
                    }));
                    match body {
                        Ok(()) => break,
                        Err(_) => {
                            respawns.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    }
                }
            });
        }
        drop(job_rx);
        drop(res_tx);
        for idx in 0..n_jobs {
            if job_tx.send(idx).is_err() {
                break; // all workers gone (only possible via repeated crashes)
            }
            // Exact post-enqueue sample; see `run_indexed_with`.
            high_water.fetch_max(job_tx.len(), Ordering::Relaxed);
        }
        drop(job_tx);
        for (idx, outcome) in res_rx.iter() {
            results[idx] = Some(outcome);
        }
    })
    .expect("supervised workers catch their own panics");

    // A job claimed by a worker that crashed outside the per-attempt catch
    // never reported back; account it as a panic failure so the report stays
    // total (every index has exactly one outcome).
    let results: Vec<Outcome<R>> = results
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                panics.fetch_add(1, Ordering::Relaxed);
                gave_up.fetch_add(1, Ordering::Relaxed);
                Outcome::Panicked {
                    message: "worker crashed outside the job (lost the claim)".to_string(),
                    attempts: 1,
                }
            })
        })
        .collect();

    stats.max_queue_depth = high_water.load(Ordering::Relaxed);
    stats.job_attempts = shards.merged().histogram("sms_pool_job_attempts");
    stats.panics = panics.load(Ordering::Relaxed);
    stats.retries = retries.load(Ordering::Relaxed);
    stats.gave_up = gave_up.load(Ordering::Relaxed);
    stats.deadline_exceeded = deadline_exceeded.load(Ordering::Relaxed);
    stats.respawns = respawns.load(Ordering::Relaxed);

    let errors = results
        .iter()
        .enumerate()
        .filter_map(|(index, outcome)| match outcome {
            Outcome::Panicked { message, attempts } => Some(JobFailure {
                index,
                kind: FailureKind::Panic,
                message: message.clone(),
                attempts: *attempts,
            }),
            Outcome::TimedOut => Some(JobFailure {
                index,
                kind: FailureKind::Deadline,
                message: "deadline elapsed before the job could start".to_string(),
                attempts: 0,
            }),
            _ => None,
        })
        .collect();

    PoolReport { results, errors, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_index_ordered_at_any_worker_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for workers in [1, 2, 8] {
            let (got, stats) =
                run_indexed(97, &PoolConfig::with_workers(workers), |i| i * i).unwrap();
            assert_eq!(got, expected, "workers={workers}");
            assert_eq!(stats.jobs, 97);
            assert_eq!(stats.workers, workers);
            assert!(
                stats.max_queue_depth <= stats.queue_capacity,
                "exact gauge must never report depth above capacity: {} > {}",
                stats.max_queue_depth,
                stats.queue_capacity
            );
        }
    }

    #[test]
    fn queue_depth_gauge_never_exceeds_capacity_under_slow_workers() {
        // Slow workers against a tiny queue force the feeder to block on a
        // full channel — the exact regime where the old atomic
        // increment-before-send gauge overshot capacity by up to workers+1.
        let config = PoolConfig { workers: 2, channel_capacity: 4 };
        let (got, stats) = run_indexed(64, &config, |i| {
            std::thread::sleep(Duration::from_micros(200));
            i
        })
        .unwrap();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        assert!(
            stats.max_queue_depth <= 4,
            "sampled gauge exceeded capacity: {}",
            stats.max_queue_depth
        );
        assert!(stats.max_queue_depth >= 1, "a 64-job run must observe at least one queued job");
    }

    #[test]
    fn empty_run_is_fine() {
        let (got, stats) = run_indexed(0, &PoolConfig::default(), |i| i).unwrap();
        assert!(got.is_empty());
        assert_eq!(stats.jobs, 0);
    }

    #[test]
    fn worker_count_is_capped_by_jobs() {
        let (got, stats) = run_indexed(3, &PoolConfig::with_workers(16), |i| i + 1).unwrap();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(stats.workers, 3);
    }

    #[test]
    fn per_worker_state_is_initialized_once_per_thread() {
        let inits = AtomicU64::new(0);
        let (got, stats) = run_indexed_with(
            50,
            &PoolConfig::with_workers(4),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, idx| {
                scratch.push(idx); // reused buffer, grows per worker
                idx
            },
        )
        .unwrap();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::Relaxed) as usize, stats.workers);
    }

    #[test]
    fn fallible_jobs_surface_deterministic_errors() {
        for workers in [1, 3] {
            let (results, _) = run_indexed(10, &PoolConfig::with_workers(workers), |i| {
                if i % 4 == 3 {
                    Err(i)
                } else {
                    Ok(i)
                }
            })
            .unwrap();
            let first_err =
                results.into_iter().collect::<std::result::Result<Vec<_>, usize>>().unwrap_err();
            assert_eq!(first_err, 3, "index order makes error selection deterministic");
        }
    }

    #[test]
    fn zero_workers_means_available_parallelism() {
        let config = PoolConfig::default();
        assert!(config.effective_workers(100) >= 1);
        let (got, _) = run_indexed(8, &config, |i| i).unwrap();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn legacy_path_turns_job_panic_into_typed_error() {
        for workers in [1, 4] {
            let err = run_indexed(16, &PoolConfig::with_workers(workers), |i| {
                if i == 7 {
                    panic!("poisoned job {i}");
                }
                i
            })
            .unwrap_err();
            match err {
                Error::Engine(msg) => {
                    assert!(msg.contains("panicked"), "workers={workers}: {msg}")
                }
                other => panic!("expected Engine error, got {other:?}"),
            }
        }
    }

    #[test]
    fn supervised_isolates_panics_and_reports_index_ordered() {
        let policy = SupervisorPolicy::default(); // max_attempts = 1
        for workers in [1, 2, 8] {
            let report = run_indexed_supervised(
                20,
                &PoolConfig::with_workers(workers),
                &policy,
                |i, _attempt| {
                    if i % 5 == 2 {
                        panic!("injected fault at job {i}");
                    }
                    i * 10
                },
            );
            assert_eq!(report.results.len(), 20);
            for (i, outcome) in report.results.iter().enumerate() {
                if i % 5 == 2 {
                    assert!(
                        matches!(outcome, Outcome::Panicked { attempts: 1, .. }),
                        "workers={workers} job={i}: {outcome:?}"
                    );
                } else {
                    assert_eq!(*outcome, Outcome::Ok(i * 10), "workers={workers}");
                }
            }
            assert_eq!(report.errors.len(), 4);
            assert_eq!(
                report.errors.iter().map(|f| f.index).collect::<Vec<_>>(),
                vec![2, 7, 12, 17],
                "failures are index-ordered at workers={workers}"
            );
            assert_eq!(report.stats.panics, 4);
            assert_eq!(report.stats.gave_up, 4);
            assert_eq!(report.stats.retries, 0);
        }
    }

    #[test]
    fn supervised_retries_recover_flaky_jobs() {
        use std::collections::HashMap;
        use std::sync::Mutex;
        // Job 3 panics on its first 2 attempts, then succeeds; job 9 always
        // panics. With max_attempts = 3 the first recovers, the second
        // exhausts.
        let attempts_seen: Mutex<HashMap<usize, u32>> = Mutex::new(HashMap::new());
        let policy = SupervisorPolicy::with_retry(RetryPolicy::with_max_attempts(3).no_backoff());
        let report =
            run_indexed_supervised(12, &PoolConfig::with_workers(3), &policy, |i, attempt| {
                *attempts_seen.lock().unwrap().entry(i).or_insert(0) = attempt;
                if i == 3 && attempt <= 2 {
                    panic!("flaky job 3");
                }
                if i == 9 {
                    panic!("hopeless job 9");
                }
                i
            });
        assert_eq!(report.results[3], Outcome::Retried { value: 3, retries: 2 });
        assert!(matches!(report.results[9], Outcome::Panicked { attempts: 3, .. }));
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].index, 9);
        assert_eq!(report.errors[0].kind, FailureKind::Panic);
        assert_eq!(report.stats.panics, 2 + 3);
        assert_eq!(report.stats.retries, 2 + 2);
        assert_eq!(report.stats.gave_up, 1);
        assert_eq!(attempts_seen.lock().unwrap()[&3], 3);
        let successes = report.into_successes();
        assert_eq!(successes.len(), 11);
        assert!(successes.contains(&(3, 3)));
    }

    #[test]
    fn supervised_scratch_is_rebuilt_after_a_panic() {
        // A panicking attempt must not leak its torn scratch into the retry.
        let policy = SupervisorPolicy::with_retry(RetryPolicy::with_max_attempts(2).no_backoff());
        let report = run_indexed_supervised_with(
            6,
            &PoolConfig::with_workers(2),
            &policy,
            Vec::<usize>::new,
            |scratch, idx, attempt| {
                scratch.push(idx); // simulate a partial write...
                if idx == 4 && attempt == 1 {
                    panic!("tear the scratch"); // ...torn mid-job
                }
                scratch.len()
            },
        );
        // Job 4's retry sees a *fresh* scratch: exactly one element (its own
        // push), not the torn leftovers plus one.
        assert_eq!(report.results[4], Outcome::Retried { value: 1, retries: 1 });
    }

    #[test]
    fn supervised_deadline_times_out_pending_jobs() {
        let policy = SupervisorPolicy::default().deadline(Duration::from_millis(30));
        let report =
            run_indexed_supervised(6, &PoolConfig::with_workers(1), &policy, |i, _attempt| {
                if i == 0 {
                    std::thread::sleep(Duration::from_millis(120));
                }
                i
            });
        assert_eq!(report.results[0], Outcome::Ok(0), "running jobs are never interrupted");
        let timed_out =
            report.results.iter().filter(|o| matches!(o, Outcome::TimedOut)).count() as u64;
        assert!(timed_out >= 1, "deadline must skip queued jobs: {:?}", report.stats);
        assert_eq!(report.stats.deadline_exceeded, timed_out);
        assert!(report.errors.iter().all(|f| f.kind != FailureKind::Deadline || f.attempts == 0));
    }

    #[test]
    fn retry_delays_are_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 5,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(2),
        };
        for job in [0usize, 1, 17, 1000] {
            for attempt in 1..=6u32 {
                let a = policy.delay(job, attempt);
                let b = policy.delay(job, attempt);
                assert_eq!(a, b, "same coordinates, same delay");
                assert!(a <= policy.backoff_cap);
                assert!(a >= policy.backoff_base.min(policy.backoff_cap));
            }
        }
        // Jitter decorrelates jobs at the same attempt.
        assert_ne!(policy.delay(1, 2), policy.delay(2, 2));
        // Zero base disables sleeping entirely.
        assert_eq!(RetryPolicy::with_max_attempts(3).no_backoff().delay(9, 4), Duration::ZERO);
    }

    #[test]
    fn supervised_empty_run_is_fine() {
        let report = run_indexed_supervised(
            0,
            &PoolConfig::default(),
            &SupervisorPolicy::default(),
            |i, _| i,
        );
        assert!(report.results.is_empty());
        assert!(report.errors.is_empty());
        assert_eq!(report.stats.jobs, 0);
    }

    #[test]
    fn pool_stats_json_has_supervision_counters() {
        let stats = PoolStats {
            workers: 2,
            jobs: 10,
            queue_capacity: 64,
            max_queue_depth: 5,
            panics: 3,
            retries: 2,
            gave_up: 1,
            deadline_exceeded: 4,
            respawns: 1,
            ..PoolStats::default()
        };
        let json = stats.to_json();
        for key in
            ["workers", "jobs", "panics", "retries", "gave_up", "deadline_exceeded", "respawns"]
        {
            assert!(json.contains(key), "{json} missing {key}");
        }
    }
}
