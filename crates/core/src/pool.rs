//! Shared bounded-channel worker pool.
//!
//! The fan-out/fan-in core that [`crate::engine::FleetEngine`] introduced for
//! fleet encoding, generalized so any indexed batch of independent jobs —
//! fleet houses, cross-validation folds, experiment-matrix cells — runs
//! through the same machinery:
//!
//! ```text
//!              ┌──────────┐   job indices    ┌───────────┐
//!  0..n_jobs ─▶│  feeder  │═════bounded═════▶│ worker 0  │──┐
//!              └──────────┘       MPMC       ├───────────┤  │ (idx, R)
//!                                       ════▶│ worker 1  │──┼═══════▶ collector
//!                                       ════▶│    …      │──┘   places results[idx]
//!                                            └───────────┘
//! ```
//!
//! Determinism contract: the collector writes every result back at its job
//! index, so the output `Vec<R>` is **independent of worker count and
//! scheduling** whenever each job is a pure function of its index. Callers
//! that fold the results do so over that index-ordered vector, which is what
//! makes parallel cross-validation bit-identical to serial (see
//! `DESIGN.md` §9).

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::channel;

/// Parallelism knobs for one pool run.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker thread count; `0` means one thread per available core.
    pub workers: usize,
    /// Capacity of the bounded job queue.
    pub channel_capacity: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { workers: 0, channel_capacity: 64 }
    }
}

impl PoolConfig {
    /// Config with an explicit worker count and defaults otherwise.
    pub fn with_workers(workers: usize) -> Self {
        PoolConfig { workers, ..Self::default() }
    }

    /// The effective thread count: `workers`, or the machine's parallelism
    /// when `workers` is `0`, never exceeding the job count.
    pub fn effective_workers(&self, n_jobs: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.workers
        };
        requested.max(1).min(n_jobs.max(1))
    }
}

/// Counters describing one pool run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads actually spawned.
    pub workers: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Capacity of the bounded job queue.
    pub queue_capacity: usize,
    /// High-water mark of jobs enqueued but not yet claimed by a worker.
    /// Tracked with a relaxed atomic gauge (the compat channel has no
    /// `len()`), so it can transiently overshoot `queue_capacity` by up to
    /// the worker count plus the one job the feeder is blocked on.
    pub max_queue_depth: usize,
}

/// Runs `n_jobs` independent jobs across a worker pool and returns the
/// results in job order. `job(idx)` must be a pure function of `idx` for the
/// output to be deterministic (the pool guarantees placement, the caller
/// guarantees purity). Fallible jobs simply use `R = Result<T>` and the
/// caller short-circuits over the ordered results, which keeps *which* error
/// surfaces deterministic too.
pub fn run_indexed<R, F>(n_jobs: usize, config: &PoolConfig, job: F) -> (Vec<R>, PoolStats)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_indexed_with(n_jobs, config, || (), move |(), idx| job(idx))
}

/// [`run_indexed`] with per-worker scratch state: `init` runs once on each
/// worker thread and the resulting state is passed to every job that worker
/// claims. This is how the fleet encoder keeps allocation-free reusable
/// buffers without any locking.
pub fn run_indexed_with<S, R, I, F>(
    n_jobs: usize,
    config: &PoolConfig,
    init: I,
    job: F,
) -> (Vec<R>, PoolStats)
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = config.effective_workers(n_jobs);
    let cap = config.channel_capacity.max(1);
    let mut stats = PoolStats { workers, jobs: n_jobs, queue_capacity: cap, max_queue_depth: 0 };
    if n_jobs == 0 {
        return (Vec::new(), stats);
    }

    let mut results: Vec<Option<R>> = (0..n_jobs).map(|_| None).collect();
    let queued = AtomicUsize::new(0);
    let high_water = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        let (job_tx, job_rx) = channel::bounded::<usize>(cap);
        let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let (init, job, queued) = (&init, &job, &queued);
            s.spawn(move |_| {
                let mut state = init();
                for idx in job_rx.iter() {
                    queued.fetch_sub(1, Ordering::Relaxed);
                    if res_tx.send((idx, job(&mut state, idx))).is_err() {
                        break; // collector is gone
                    }
                }
            });
        }
        drop(job_rx);
        drop(res_tx);
        for idx in 0..n_jobs {
            // Count before sending so a fast worker's decrement can never
            // underflow the gauge.
            let depth = queued.fetch_add(1, Ordering::Relaxed) + 1;
            high_water.fetch_max(depth, Ordering::Relaxed);
            job_tx.send(idx).expect("pool workers exited early");
        }
        drop(job_tx);
        for (idx, r) in res_rx.iter() {
            results[idx] = Some(r);
        }
    })
    .expect("pool worker panicked");

    stats.max_queue_depth = high_water.load(Ordering::Relaxed);
    let results = results
        .into_iter()
        .map(|r| r.expect("every job index produces exactly one result"))
        .collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_index_ordered_at_any_worker_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for workers in [1, 2, 8] {
            let (got, stats) = run_indexed(97, &PoolConfig::with_workers(workers), |i| i * i);
            assert_eq!(got, expected, "workers={workers}");
            assert_eq!(stats.jobs, 97);
            assert_eq!(stats.workers, workers);
            assert!(stats.max_queue_depth <= stats.queue_capacity + stats.workers + 1);
        }
    }

    #[test]
    fn empty_run_is_fine() {
        let (got, stats) = run_indexed(0, &PoolConfig::default(), |i| i);
        assert!(got.is_empty());
        assert_eq!(stats.jobs, 0);
    }

    #[test]
    fn worker_count_is_capped_by_jobs() {
        let (got, stats) = run_indexed(3, &PoolConfig::with_workers(16), |i| i + 1);
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(stats.workers, 3);
    }

    #[test]
    fn per_worker_state_is_initialized_once_per_thread() {
        let inits = AtomicU64::new(0);
        let (got, stats) = run_indexed_with(
            50,
            &PoolConfig::with_workers(4),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, idx| {
                scratch.push(idx); // reused buffer, grows per worker
                idx
            },
        );
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::Relaxed) as usize, stats.workers);
    }

    #[test]
    fn fallible_jobs_surface_deterministic_errors() {
        for workers in [1, 3] {
            let (results, _) = run_indexed(10, &PoolConfig::with_workers(workers), |i| {
                if i % 4 == 3 {
                    Err(i)
                } else {
                    Ok(i)
                }
            });
            let first_err = results.into_iter().collect::<Result<Vec<_>, _>>().unwrap_err();
            assert_eq!(first_err, 3, "index order makes error selection deterministic");
        }
    }

    #[test]
    fn zero_workers_means_available_parallelism() {
        let config = PoolConfig::default();
        assert!(config.effective_workers(100) >= 1);
        let (got, _) = run_indexed(8, &config, |i| i);
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }
}
