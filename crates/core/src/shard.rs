//! Sharded fleet state: consistent hashing of house → shard, per-shard
//! lookup-table caches, and shard-local supervised pools feeding a
//! deterministic merge stage.
//!
//! The monolithic [`crate::engine::FleetEngine`] holds one flat state for
//! the whole fleet; at the ROADMAP's million-house scale that is one giant
//! allocation, one pool, and one lock for everything. This module
//! partitions that state:
//!
//! * [`ShardRouter`] — a consistent-hash ring (32 virtual nodes per shard,
//!   [`splitmix64`]-placed) maps each house id to a shard. Adding a shard
//!   moves only `~1/n` of the houses, so shard counts can grow without a
//!   full reshuffle.
//! * [`TableCache`] — per-shard LRU of learned [`LookupTable`]s keyed by
//!   house, so re-encoding a house it has seen before skips the training
//!   pass entirely.
//! * [`ShardedFleetEngine`] — per shard: a serial cache pre-pass, a
//!   shard-local supervised pool ([`crate::pool`]) running the pure
//!   train+encode jobs, then a **serial merge stage** that places results
//!   by input index and applies cache inserts in index order.
//!
//! ## Determinism contract
//!
//! Fleet output is **byte-identical at any shard count and any worker
//! count**. Three properties make that hold:
//!
//! 1. Routing is a pure function of the house id (no `RandomState`, no
//!    iteration-order dependence).
//! 2. Encode jobs are pure per house; the merge stage places each result
//!    by its input index, so scheduling order never shows.
//! 3. The cache can only substitute work that would have produced the same
//!    bytes: entries are keyed by house, and a hit replays the table
//!    learned from that house's own history — retraining on the same
//!    series yields the same table. (A house whose series *changes*
//!    between batches keeps its first-learned table until evicted: the
//!    cache implements train-once-per-house semantics, not
//!    drift-tracking — that is [`crate::adaptive`]'s job.)
//!
//! Eviction order and hit counts *do* vary with shard count (capacity is
//! per shard); only the [`ShardStats`] counters see that, never the
//! encoded bytes.

use std::collections::{BTreeMap, HashMap};

use crate::adaptive::{AdaptiveStats, DriftDetector};
use crate::engine::{QuarantineReason, Quarantined};
use crate::error::{Error, Result};
use crate::horizontal::SymbolicSeries;
use crate::ingest::{FleetIngest, IngestConfig, IngestStats};
use crate::lookup::LookupTable;
use crate::pipeline::CodecBuilder;
use crate::pool::{Outcome, PoolConfig, PoolStats, RetryPolicy, SupervisorPolicy};
use crate::telemetry::Registry;
use crate::timeseries::TimeSeries;

/// Virtual nodes each shard places on the consistent-hash ring. 32 keeps
/// the worst shard within a few percent of the mean at 16 shards while the
/// whole ring still fits in one cache line per shard.
pub const VNODES_PER_SHARD: usize = 32;

/// SplitMix64 — the finalizer used across the crate for deterministic,
/// seed-stable hashing (same constants as [`crate::pool`]'s internal
/// copy). Public here because shard routing *is* the hash: callers
/// verifying placement externally need bit-identical values.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Consistent-hash ring mapping house ids to shards.
///
/// ```
/// use sms_core::shard::ShardRouter;
/// let r4 = ShardRouter::new(4).unwrap();
/// let r5 = ShardRouter::new(5).unwrap();
/// let moved = (0..10_000u64).filter(|&h| r4.route(h) != r5.route(h)).count();
/// assert!(moved < 4_000, "consistent hashing moved {moved}/10000 houses");
/// ```
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// `(ring position, shard)` sorted by position.
    ring: Vec<(u64, u32)>,
    shards: usize,
}

impl ShardRouter {
    /// A ring of `shards` shards (must be ≥ 1).
    pub fn new(shards: usize) -> Result<Self> {
        if shards == 0 || shards > u32::MAX as usize {
            return Err(Error::InvalidParameter {
                name: "shards",
                reason: format!("must be in 1..=u32::MAX, got {shards}"),
            });
        }
        let mut ring = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards as u32 {
            for v in 0..VNODES_PER_SHARD as u64 {
                // Mix shard and vnode through two rounds so vnode points of
                // one shard spread rather than cluster.
                let pos = splitmix64(splitmix64(shard as u64) ^ (v.wrapping_mul(0x9e37_79b9)));
                ring.push((pos, shard));
            }
        }
        // Ties (astronomically unlikely) resolve to the lower shard id so
        // the ring is a pure function of `shards`.
        ring.sort_unstable();
        Ok(ShardRouter { ring, shards })
    }

    /// Number of shards behind the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `house`: the first ring point at or after the
    /// house's hash, wrapping at the top.
    pub fn route(&self, house: u64) -> usize {
        let h = splitmix64(house);
        let i = self.ring.partition_point(|&(pos, _)| pos < h);
        let (_, shard) = self.ring[if i == self.ring.len() { 0 } else { i }];
        shard as usize
    }

    /// The live shard owning `house`: walks the ring forward from the
    /// house's position, skipping vnodes of shards whose `alive[shard]` is
    /// `false`, wrapping at the top. `None` when no live shard remains.
    ///
    /// This is the failover rule of [`crate::durable::DurableFleet`]: a
    /// pure function of `(house, alive)`, so every replica of a run moves
    /// a dead shard's houses to the **same** successor vnodes — and a
    /// house whose owner is alive routes exactly as [`route`](Self::route)
    /// does.
    pub fn route_alive(&self, house: u64, alive: &[bool]) -> Option<usize> {
        let h = splitmix64(house);
        let start = self.ring.partition_point(|&(pos, _)| pos < h);
        for k in 0..self.ring.len() {
            let at = start + k;
            let (_, shard) =
                self.ring[if at >= self.ring.len() { at - self.ring.len() } else { at }];
            if alive.get(shard as usize).copied().unwrap_or(false) {
                return Some(shard as usize);
            }
        }
        None
    }
}

/// Per-shard LRU cache of learned lookup tables, keyed by house id.
///
/// Recency is a monotonically increasing sequence number per entry with a
/// `BTreeMap<seq, house>` recency index, so both `get` and `insert` are
/// `O(log n)` — no linked lists, no per-access `Vec` scans.
#[derive(Debug, Clone, Default)]
pub struct TableCache {
    capacity: usize,
    entries: HashMap<u64, (LookupTable, u64)>,
    recency: BTreeMap<u64, u64>,
    next_seq: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl TableCache {
    /// A cache holding at most `capacity` tables (`0` disables caching).
    pub fn new(capacity: usize) -> Self {
        TableCache { capacity, ..TableCache::default() }
    }

    /// Tables currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses, evictions)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// The cached table for `house`, refreshing its recency.
    pub fn get(&mut self, house: u64) -> Option<&LookupTable> {
        match self.entries.get_mut(&house) {
            Some((_, seq)) => {
                self.recency.remove(seq);
                *seq = self.next_seq;
                self.recency.insert(self.next_seq, house);
                self.next_seq += 1;
                self.hits += 1;
                self.entries.get(&house).map(|(t, _)| t)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches `table` for `house`, evicting the least-recently-used entry
    /// when full. A no-op at capacity 0.
    pub fn insert(&mut self, house: u64, table: LookupTable) {
        if self.capacity == 0 {
            return;
        }
        if let Some((_, seq)) = self.entries.remove(&house) {
            self.recency.remove(&seq);
        } else if self.entries.len() >= self.capacity {
            if let Some((&oldest, &victim)) = self.recency.iter().next() {
                self.recency.remove(&oldest);
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(house, (table, self.next_seq));
        self.recency.insert(self.next_seq, house);
        self.next_seq += 1;
    }

    /// Drops `house`'s cached table, if present — the drift cutover path:
    /// the next batch retrains from the house's *current* history instead
    /// of replaying the stale pre-drift table.
    pub fn remove(&mut self, house: u64) -> bool {
        match self.entries.remove(&house) {
            Some((_, seq)) => {
                self.recency.remove(&seq);
                true
            }
            None => false,
        }
    }
}

/// Counters for one sharded run; rendered as the `"shard"` block of
/// [`crate::engine::EngineStats::to_json`] and the Prometheus exposition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardStats {
    /// Shards in the ring.
    pub shards: usize,
    /// Houses routed through the ring (cumulative over batches).
    pub houses_routed: u64,
    /// Lookup-table cache hits across every shard.
    pub cache_hits: u64,
    /// Lookup-table cache misses across every shard.
    pub cache_misses: u64,
    /// Tables evicted from the per-shard LRU caches.
    pub cache_evictions: u64,
    /// Houses on the most loaded shard in the latest batch (ring-balance
    /// witness).
    pub max_shard_houses: u64,
    /// Wall time the deterministic merge stage spent placing results and
    /// applying cache inserts, seconds.
    pub merge_wait_secs: f64,
}

impl ShardStats {
    /// Registers this block's [`crate::telemetry::CATALOG`] metrics into
    /// `reg` and loads their current values.
    pub fn register_into(&self, reg: &Registry) {
        reg.register_block("shard");
        reg.set("sms_shard_shards", self.shards as u64);
        reg.add("sms_shard_houses_routed", self.houses_routed);
        reg.add("sms_shard_cache_hits", self.cache_hits);
        reg.add("sms_shard_cache_misses", self.cache_misses);
        reg.add("sms_shard_cache_evictions", self.cache_evictions);
        reg.set_max("sms_shard_max_shard_houses", self.max_shard_houses);
        reg.set_f64("sms_shard_merge_wait_secs", self.merge_wait_secs);
    }
}

/// Configuration of a [`ShardedFleetEngine`].
#[derive(Debug, Clone)]
pub struct ShardedEngineConfig {
    /// Shards on the ring.
    pub shards: usize,
    /// Worker threads per shard pool (`0` = one per core).
    pub workers: usize,
    /// Lookup tables each shard's cache retains.
    pub table_cache_capacity: usize,
    /// Retry schedule for panicking encode jobs.
    pub retry: RetryPolicy,
    /// Online drift adaptation, `None` (the default) disables it. When set,
    /// a serial pre-pass feeds every house's samples into a per-house
    /// sketch-backed [`DriftDetector`]; a confirmed drift evicts the
    /// house's cached table and bumps its separator epoch, so the next
    /// encode retrains on post-drift data. The pre-pass runs on the main
    /// thread **in input order**, so the decisions — and therefore the
    /// output bytes — are identical at any shards × workers topology.
    pub drift: Option<DriftConfig>,
}

/// Drift-detection policy of a sharded engine (see
/// [`ShardedEngineConfig::drift`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// KS-statistic threshold above which drift fires (hysteresis re-arms
    /// below `threshold / 2`).
    pub threshold: f64,
    /// Sliding-window length in samples; also the minimum sample interval
    /// between consecutive rebuilds of one house.
    pub window: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig { threshold: 0.3, window: 512 }
    }
}

impl Default for ShardedEngineConfig {
    fn default() -> Self {
        ShardedEngineConfig {
            shards: 4,
            workers: 1,
            table_cache_capacity: 4096,
            retry: RetryPolicy::default(),
            drift: None,
        }
    }
}

impl ShardedEngineConfig {
    /// Config with an explicit shard count and defaults otherwise.
    pub fn with_shards(shards: usize) -> Self {
        ShardedEngineConfig { shards, ..Self::default() }
    }

    /// Sets the per-shard worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-shard table-cache capacity.
    pub fn table_cache_capacity(mut self, capacity: usize) -> Self {
        self.table_cache_capacity = capacity;
        self
    }

    /// Sets the retry schedule for panicking encode jobs.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables online drift adaptation with the given policy.
    pub fn drift(mut self, drift: DriftConfig) -> Self {
        self.drift = Some(drift);
        self
    }
}

/// The result of one sharded batch: per-house series in input order plus
/// the houses that failed.
#[derive(Debug, Clone)]
pub struct ShardedEncoding {
    /// `series[i]` encodes the `i`-th input house. Failed houses hold an
    /// empty placeholder at the codec resolution (indices stay aligned).
    pub series: Vec<SymbolicSeries>,
    /// Houses whose job failed, in input-index order.
    pub quarantined: Vec<Quarantined>,
    /// `epochs[i]` is the separator epoch the `i`-th input house was
    /// encoded under in this batch: `0` until its first drift cutover,
    /// incremented at each confirmed rebuild. All zeros when
    /// [`ShardedEngineConfig::drift`] is off. Feed this to
    /// [`crate::segstore::SegmentStore::append_epoch`] so stored segments
    /// record which separator generation their bits mean.
    pub epochs: Vec<u32>,
}

/// Per-house drift-tracking state of a drift-enabled sharded engine. Lives
/// in one house-keyed map owned by the engine (not the shards), mutated
/// only by the serial pre-pass — so its evolution is a pure function of
/// the input stream, independent of topology.
#[derive(Debug)]
struct HouseDrift {
    detector: DriftDetector,
    /// Separator epoch the house currently encodes under.
    epoch: u32,
    /// Hysteresis arm: a firing dis-arms; re-arms when the statistic falls
    /// below half the threshold, or once the detection window has fully
    /// turned over since the rebuild (so a rebuild trained on a window
    /// straddling the drift cannot suppress its correction forever).
    armed: bool,
    /// Samples since the last rebuild (gates the min-interval).
    since_rebuild: u64,
    /// Lifetime samples pushed for this house.
    samples: u64,
    /// Sample count at the first min-interval-suppressed over-threshold
    /// reading, for the cutover-lag histogram.
    pending_since: Option<u64>,
}

/// A fleet encoder whose state is partitioned by the consistent-hash ring:
/// per-shard table caches and per-shard supervised pools, merged
/// deterministically.
///
/// Call [`encode_batch`](Self::encode_batch) repeatedly with chunks of
/// `(house, series)` pairs — the caches persist across batches, so a
/// million-house run streams through in bounded memory while houses seen
/// before skip training.
#[derive(Debug)]
pub struct ShardedFleetEngine {
    builder: CodecBuilder,
    config: ShardedEngineConfig,
    router: ShardRouter,
    caches: Vec<TableCache>,
    stats: ShardStats,
    pool_stats: PoolStats,
    /// Per-house drift state, present only when `config.drift` is set.
    drift_state: BTreeMap<u64, HouseDrift>,
    adaptive_stats: AdaptiveStats,
}

impl ShardedFleetEngine {
    /// An engine over `builder`'s codec with `config`'s topology.
    pub fn new(builder: CodecBuilder, config: ShardedEngineConfig) -> Result<Self> {
        let router = ShardRouter::new(config.shards)?;
        let caches =
            (0..config.shards).map(|_| TableCache::new(config.table_cache_capacity)).collect();
        Ok(ShardedFleetEngine {
            builder,
            config,
            router,
            caches,
            stats: ShardStats::default(),
            pool_stats: PoolStats::default(),
            drift_state: BTreeMap::new(),
            adaptive_stats: AdaptiveStats::default(),
        })
    }

    /// The ring routing houses to shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Cumulative shard counters over every batch so far.
    pub fn stats(&self) -> ShardStats {
        let mut s = self.stats;
        s.shards = self.config.shards;
        for c in &self.caches {
            let (h, m, e) = c.counters();
            s.cache_hits += h;
            s.cache_misses += m;
            s.cache_evictions += e;
        }
        s
    }

    /// Cumulative pool counters over every shard pool of every batch.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool_stats
    }

    /// Cumulative drift-adaptation counters over every batch. Zeroes when
    /// [`ShardedEngineConfig::drift`] is off.
    pub fn adaptive_stats(&self) -> AdaptiveStats {
        self.adaptive_stats
    }

    /// The separator epoch `house` currently encodes under (`0` for houses
    /// never seen or never drifted).
    pub fn house_epoch(&self, house: u64) -> u32 {
        self.drift_state.get(&house).map_or(0, |d| d.epoch)
    }

    /// The drift pre-pass: feeds each house's batch samples through its
    /// sketch detector **serially, in input order**, and on a confirmed
    /// drift evicts the house's cached table and bumps its epoch — so the
    /// encode stage retrains that house on its post-drift data. Every
    /// decision here is a pure function of the per-house sample stream;
    /// nothing downstream (shard partitioning, worker scheduling) can
    /// change it, which preserves byte-identical output across topologies.
    fn drift_prepass(&mut self, fleet: &[(u64, TimeSeries)], drift: DriftConfig) {
        for (house, ts) in fleet {
            let values = ts.values();
            let state = match self.drift_state.get_mut(house) {
                Some(state) => state,
                None => {
                    // First sight: the batch becomes the reference
                    // distribution. A house whose history can't seed a
                    // detector (empty, or NaN — the encoder will surface
                    // that) simply goes untracked.
                    let finite: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
                    let Ok(det) = DriftDetector::new(&finite, drift.window) else {
                        continue;
                    };
                    self.adaptive_stats.samples += values.len() as u64;
                    self.drift_state.insert(
                        *house,
                        HouseDrift {
                            detector: det,
                            epoch: 0,
                            armed: true,
                            since_rebuild: 0,
                            samples: values.len() as u64,
                            pending_since: None,
                        },
                    );
                    continue;
                }
            };
            for &v in &values {
                state.detector.push(v);
            }
            state.samples += values.len() as u64;
            state.since_rebuild += values.len() as u64;
            self.adaptive_stats.samples += values.len() as u64;
            let Some(stat) = state.detector.statistic() else {
                continue;
            };
            // Re-arm when the statistic settles, or once the detection
            // window has fully turned over since the rebuild: a rebuild that
            // fired on a window straddling the drift leaves a mixed
            // reference the statistic never settles against, and the
            // corrective rebuild must not be suppressed forever.
            if !state.armed
                && (stat < drift.threshold / 2.0 || state.since_rebuild >= 2 * drift.window as u64)
            {
                state.armed = true;
            }
            if stat <= drift.threshold {
                continue;
            }
            if !state.armed {
                self.adaptive_stats.suppressed_hysteresis += 1;
                continue;
            }
            if state.since_rebuild < drift.window as u64 {
                self.adaptive_stats.suppressed_min_interval += 1;
                state.pending_since.get_or_insert(state.samples);
                continue;
            }
            // Confirmed drift: cut over. The cached pre-drift table is
            // evicted so the encode stage retrains this house; the epoch
            // bump versions everything downstream (wire frames, stored
            // segments).
            let lag = state.samples - state.pending_since.take().unwrap_or(state.samples);
            self.adaptive_stats.cutover_lag.observe(lag);
            state.detector.rebase();
            state.epoch += 1;
            state.armed = false;
            state.since_rebuild = 0;
            self.adaptive_stats.rebuilds += 1;
            self.adaptive_stats.epochs_shipped += 1;
            self.caches[self.router.route(*house)].remove(*house);
        }
        self.adaptive_stats.sketch_bytes =
            self.drift_state.values().map(|d| d.detector.sketch_bytes() as u64).sum();
    }

    /// Encodes one batch of houses. Output is byte-identical for any
    /// `shards`/`workers` setting (see the module determinism contract);
    /// failed houses are quarantined with an empty placeholder, matching
    /// [`crate::engine::QuarantinePolicy::Isolate`].
    pub fn encode_batch(&mut self, fleet: &[(u64, TimeSeries)]) -> Result<ShardedEncoding> {
        let resolution = self.builder.resolution();
        let mut series: Vec<Option<SymbolicSeries>> = vec![None; fleet.len()];
        let mut quarantined: Vec<Quarantined> = Vec::new();

        // Drift detection happens before partitioning, serially, in input
        // order — see `drift_prepass` for why this keeps the determinism
        // contract intact.
        if let Some(drift) = self.config.drift {
            self.drift_prepass(fleet, drift);
        }

        // Partition input indices by ring position.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.config.shards];
        for (i, (house, _)) in fleet.iter().enumerate() {
            by_shard[self.router.route(*house)].push(i);
        }
        self.stats.houses_routed += fleet.len() as u64;
        let peak = by_shard.iter().map(Vec::len).max().unwrap_or(0) as u64;
        self.stats.max_shard_houses = self.stats.max_shard_houses.max(peak);

        let policy = SupervisorPolicy::with_retry(self.config.retry);
        let pool_cfg = PoolConfig::with_workers(self.config.workers);
        for (shard, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            // Serial cache pre-pass: decide per house, *before* the pool
            // runs, whether training is skipped — the pool never touches
            // the cache, so worker scheduling cannot reorder its state.
            let cached: Vec<Option<LookupTable>> =
                idxs.iter().map(|&i| self.caches[shard].get(fleet[i].0).cloned()).collect();

            let builder = &self.builder;
            let report = crate::pool::run_indexed_supervised_with(
                idxs.len(),
                &pool_cfg,
                &policy,
                || (),
                |(), j, _attempt| -> Result<(SymbolicSeries, Option<LookupTable>)> {
                    let (_, ts) = &fleet[idxs[j]];
                    match &cached[j] {
                        Some(table) => {
                            let codec = builder.clone().with_table(table.clone());
                            Ok((codec.encode(ts)?, None))
                        }
                        None => {
                            let codec = builder.train(ts)?;
                            let table = codec.table().clone();
                            Ok((codec.encode(ts)?, Some(table)))
                        }
                    }
                },
            );

            // Deterministic merge: placement by input index, cache inserts
            // in index order, failures quarantined in index order.
            let merge_t = std::time::Instant::now();
            for (j, outcome) in report.results.into_iter().enumerate() {
                let idx = idxs[j];
                let house = fleet[idx].0;
                let reason = match outcome {
                    Outcome::Ok(Ok((s, table)))
                    | Outcome::Retried { value: Ok((s, table)), .. } => {
                        if let Some(table) = table {
                            self.caches[shard].insert(house, table);
                        }
                        series[idx] = Some(s);
                        continue;
                    }
                    Outcome::Ok(Err(e)) | Outcome::Retried { value: Err(e), .. } => {
                        QuarantineReason::EncodeError(e)
                    }
                    Outcome::Panicked { message, attempts } => {
                        QuarantineReason::Panicked { message, attempts }
                    }
                    Outcome::TimedOut => QuarantineReason::TimedOut,
                };
                quarantined.push(Quarantined { house: idx, reason });
            }
            self.stats.merge_wait_secs += merge_t.elapsed().as_secs_f64();

            self.pool_stats.workers = self.pool_stats.workers.max(report.stats.workers);
            self.pool_stats.jobs += report.stats.jobs;
            self.pool_stats.queue_capacity = report.stats.queue_capacity;
            self.pool_stats.max_queue_depth =
                self.pool_stats.max_queue_depth.max(report.stats.max_queue_depth);
            self.pool_stats.panics += report.stats.panics;
            self.pool_stats.retries += report.stats.retries;
            self.pool_stats.gave_up += report.stats.gave_up;
            self.pool_stats.deadline_exceeded += report.stats.deadline_exceeded;
            self.pool_stats.respawns += report.stats.respawns;
            self.pool_stats.job_attempts.merge(&report.stats.job_attempts);
        }

        quarantined.sort_by_key(|q| q.house);
        let series = series
            .into_iter()
            .map(|s| match s {
                Some(s) => Ok(s),
                None => SymbolicSeries::new(resolution),
            })
            .collect::<Result<Vec<_>>>()?;
        if self.config.drift.is_some() {
            self.adaptive_stats.symbols += series.iter().map(|s| s.len() as u64).sum::<u64>();
        }
        let epochs = fleet.iter().map(|(house, _)| self.house_epoch(*house)).collect();
        Ok(ShardedEncoding { series, quarantined, epochs })
    }
}

/// [`FleetIngest`] partitioned by the ring: per-shard meter maps and
/// backlog accounting, with the **global** `max_meters` /
/// `max_buffered_bytes` caps still enforced exactly, in
/// [`FleetIngest::ingest`]'s check order (backlog first, then the meter
/// cap, then delegation — a rejected chunk changes no state).
#[derive(Debug)]
pub struct ShardedIngest {
    config: IngestConfig,
    router: ShardRouter,
    shards: Vec<FleetIngest>,
    meters_rejected: u64,
    backlog_rejections: u64,
}

impl ShardedIngest {
    /// A sharded router enforcing `config`'s caps globally.
    pub fn new(shards: usize, config: IngestConfig) -> Result<Self> {
        let router = ShardRouter::new(shards)?;
        // Per-shard instances run uncapped — the global caps are enforced
        // here, before delegation, so a shard can never double-reject.
        let uncapped = config.max_meters(usize::MAX).max_buffered_bytes(usize::MAX);
        let shards = (0..router.shards()).map(|_| FleetIngest::new(uncapped)).collect();
        Ok(ShardedIngest { config, router, shards, meters_rejected: 0, backlog_rejections: 0 })
    }

    /// Feeds bytes received from one meter; see [`FleetIngest::ingest`].
    pub fn ingest(
        &mut self,
        meter: u64,
        bytes: &[u8],
    ) -> Result<Vec<crate::encoder::SensorMessage>> {
        let buffered = self.buffered_total();
        if buffered.saturating_add(bytes.len()) > self.config.max_buffered_bytes {
            self.backlog_rejections += 1;
            return Err(Error::BacklogExceeded {
                buffered,
                incoming: bytes.len(),
                max: self.config.max_buffered_bytes,
            });
        }
        let shard = self.router.route(meter);
        if self.shards[shard].meter(meter).is_none() && self.meter_count() >= self.config.max_meters
        {
            self.meters_rejected += 1;
            return Err(Error::TooManyMeters { max: self.config.max_meters });
        }
        self.shards[shard].ingest(meter, bytes)
    }

    /// Distinct meters across every shard.
    pub fn meter_count(&self) -> usize {
        self.shards.iter().map(FleetIngest::meter_count).sum()
    }

    /// Bytes buffered across every shard (an `O(shards)` sum — each shard
    /// tracks its own total in `O(1)`).
    pub fn buffered_total(&self) -> usize {
        self.shards.iter().map(FleetIngest::buffered_total).sum()
    }

    /// The shard index owning `meter`.
    pub fn shard_of(&self, meter: u64) -> usize {
        self.router.route(meter)
    }

    /// Counters merged across every shard, with the fleet-level rejection
    /// counters taken from the global checks here.
    pub fn stats(&self) -> IngestStats {
        let mut total = IngestStats::default();
        for s in &self.shards {
            total.merge(&s.stats());
        }
        total.meters_rejected = self.meters_rejected;
        total.backlog_rejections = self.backlog_rejections;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, FleetEngine};
    use crate::timeseries::TimeSeries;

    fn house_series(house: u64, n: usize) -> TimeSeries {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let x = splitmix64(house.wrapping_mul(31).wrapping_add(i as u64));
                (x % 4000) as f64 / 10.0
            })
            .collect();
        TimeSeries::from_regular(0, 900, &values).unwrap()
    }

    fn fleet(n: usize) -> Vec<(u64, TimeSeries)> {
        (0..n as u64).map(|h| (h * 7 + 3, house_series(h, 96))).collect()
    }

    fn builder() -> CodecBuilder {
        CodecBuilder::new().alphabet_size(16).unwrap().no_aggregation()
    }

    #[test]
    fn router_is_total_and_balanced() {
        let r = ShardRouter::new(16).unwrap();
        let mut load = vec![0usize; 16];
        for h in 0..100_000u64 {
            load[r.route(h)] += 1;
        }
        let (min, max) = (load.iter().min().unwrap(), load.iter().max().unwrap());
        assert!(*min > 0, "empty shard: {load:?}");
        assert!(*max < 3 * 100_000 / 16, "hot shard: {load:?}");
    }

    #[test]
    fn router_rejects_zero_shards() {
        assert!(matches!(ShardRouter::new(0), Err(Error::InvalidParameter { .. })));
    }

    #[test]
    fn consistent_hashing_moves_few_houses() {
        let a = ShardRouter::new(8).unwrap();
        let b = ShardRouter::new(9).unwrap();
        let moved = (0..20_000u64).filter(|&h| a.route(h) != b.route(h)).count();
        // Ideal is 1/9 ≈ 11%; allow slack for vnode placement variance.
        assert!(moved < 20_000 / 4, "{moved} moved");
    }

    #[test]
    fn route_alive_skips_dead_shards_and_matches_route_when_all_live() {
        let r = ShardRouter::new(8).unwrap();
        let all = vec![true; 8];
        for h in 0..5_000u64 {
            assert_eq!(r.route_alive(h, &all), Some(r.route(h)));
        }
        let mut alive = all.clone();
        alive[3] = false;
        alive[6] = false;
        for h in 0..5_000u64 {
            let s = r.route_alive(h, &alive).unwrap();
            assert!(s != 3 && s != 6, "house {h} routed to dead shard {s}");
            if !matches!(r.route(h), 3 | 6) {
                assert_eq!(s, r.route(h), "live house {h} moved");
            }
        }
        assert_eq!(r.route_alive(42, &[false; 8]), None);
    }

    #[test]
    fn table_cache_lru_evicts_oldest() {
        let table = || {
            crate::lookup::LookupTable::learn(
                crate::separators::SeparatorMethod::Median,
                crate::alphabet::Alphabet::with_size(4).unwrap(),
                &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            )
            .unwrap()
        };
        let mut c = TableCache::new(2);
        c.insert(1, table());
        c.insert(2, table());
        assert!(c.get(1).is_some()); // refresh 1 → LRU victim is 2
        c.insert(3, table());
        assert!(c.get(2).is_none(), "refreshed entry was evicted instead of the LRU one");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        let (hits, misses, evictions) = c.counters();
        assert_eq!((hits, misses, evictions), (3, 1, 1));
    }

    #[test]
    fn sharded_output_is_byte_identical_across_topologies_and_to_serial() {
        let fleet = fleet(60);
        let plain: Vec<TimeSeries> = fleet.iter().map(|(_, ts)| ts.clone()).collect();
        let serial = FleetEngine::new(builder(), EngineConfig::with_workers(1))
            .encode_fleet(&plain)
            .unwrap();
        for shards in [1usize, 4, 16] {
            for workers in [1usize, 2, 8] {
                let cfg = ShardedEngineConfig::with_shards(shards).workers(workers);
                let mut eng = ShardedFleetEngine::new(builder(), cfg).unwrap();
                let out = eng.encode_batch(&fleet).unwrap();
                assert!(out.quarantined.is_empty());
                for (i, s) in out.series.iter().enumerate() {
                    assert_eq!(
                        s.symbols(),
                        serial.series[i].symbols(),
                        "house {i} differs at {shards} shards × {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn cache_hits_skip_training_without_changing_output() {
        let fleet = fleet(20);
        let mut eng =
            ShardedFleetEngine::new(builder(), ShardedEngineConfig::with_shards(4)).unwrap();
        let first = eng.encode_batch(&fleet).unwrap();
        let hits_before = eng.stats().cache_hits;
        let second = eng.encode_batch(&fleet).unwrap();
        assert_eq!(eng.stats().cache_hits, hits_before + fleet.len() as u64);
        for (a, b) in first.series.iter().zip(&second.series) {
            assert_eq!(a.symbols(), b.symbols());
        }
    }

    #[test]
    fn failed_houses_quarantine_with_placeholders() {
        let mut fleet = fleet(10);
        fleet[3].1 = TimeSeries::new(); // empty → typed encode error
        let mut eng =
            ShardedFleetEngine::new(builder(), ShardedEngineConfig::with_shards(4)).unwrap();
        let out = eng.encode_batch(&fleet).unwrap();
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].house, 3);
        assert!(out.series[3].is_empty());
        assert!(!out.series[4].is_empty());
    }

    fn shifted_fleet(n: usize, offset: f64) -> Vec<(u64, TimeSeries)> {
        (0..n as u64)
            .map(|h| {
                let values: Vec<f64> = (0..96)
                    .map(|i| {
                        let x = splitmix64(h.wrapping_mul(31).wrapping_add(i as u64 + 7919));
                        (x % 4000) as f64 / 10.0 + offset
                    })
                    .collect();
                (h * 7 + 3, TimeSeries::from_regular(0, 900, &values).unwrap())
            })
            .collect()
    }

    #[test]
    fn drift_cutover_bumps_epochs_and_retrains() {
        let pre = fleet(8);
        let post = shifted_fleet(8, 500.0);
        let drift = DriftConfig { threshold: 0.3, window: 64 };

        let cfg = ShardedEngineConfig::with_shards(4).drift(drift);
        let mut eng = ShardedFleetEngine::new(builder(), cfg).unwrap();
        let b1 = eng.encode_batch(&pre).unwrap();
        assert!(b1.epochs.iter().all(|&e| e == 0), "no drift on the reference batch");
        assert_eq!(eng.adaptive_stats().rebuilds, 0);

        let b2 = eng.encode_batch(&post).unwrap();
        assert!(b2.epochs.iter().all(|&e| e == 1), "every house cut over: {:?}", b2.epochs);
        let stats = eng.adaptive_stats();
        assert_eq!(stats.rebuilds, 8);
        assert_eq!(stats.epochs_shipped, 8);
        assert!(stats.sketch_bytes > 0);
        assert!(stats.sketch_bytes < 8 * 64 * 1024, "sketches must stay bounded");
        for h in 0..8u64 {
            assert_eq!(eng.house_epoch(h * 7 + 3), 1);
        }

        // Without adaptation the cached pre-drift table is replayed over
        // the shifted data; with adaptation the house retrained, so the
        // symbols must differ somewhere.
        let mut frozen =
            ShardedFleetEngine::new(builder(), ShardedEngineConfig::with_shards(4)).unwrap();
        frozen.encode_batch(&pre).unwrap();
        let f2 = frozen.encode_batch(&post).unwrap();
        assert!(f2.epochs.iter().all(|&e| e == 0));
        assert!(
            b2.series.iter().zip(&f2.series).any(|(a, b)| a.symbols() != b.symbols()),
            "cutover produced the same symbols as the stale table"
        );
    }

    #[test]
    fn drift_output_is_byte_identical_across_topologies_including_cutover() {
        let pre = fleet(24);
        let post = shifted_fleet(24, 500.0);
        let drift = DriftConfig { threshold: 0.3, window: 64 };
        let reference = {
            let cfg = ShardedEngineConfig::with_shards(1).workers(1).drift(drift);
            let mut eng = ShardedFleetEngine::new(builder(), cfg).unwrap();
            let b1 = eng.encode_batch(&pre).unwrap();
            let b2 = eng.encode_batch(&post).unwrap();
            (b1, b2)
        };
        for shards in [1usize, 4, 16] {
            for workers in [1usize, 2, 8] {
                let cfg = ShardedEngineConfig::with_shards(shards).workers(workers).drift(drift);
                let mut eng = ShardedFleetEngine::new(builder(), cfg).unwrap();
                let b1 = eng.encode_batch(&pre).unwrap();
                let b2 = eng.encode_batch(&post).unwrap();
                assert_eq!(b1.epochs, reference.0.epochs, "{shards}x{workers}");
                assert_eq!(b2.epochs, reference.1.epochs, "{shards}x{workers}");
                for (i, (a, b)) in b1.series.iter().zip(&reference.0.series).enumerate() {
                    assert_eq!(a.symbols(), b.symbols(), "pre house {i} at {shards}x{workers}");
                }
                for (i, (a, b)) in b2.series.iter().zip(&reference.1.series).enumerate() {
                    assert_eq!(a.symbols(), b.symbols(), "post house {i} at {shards}x{workers}");
                }
            }
        }
    }

    #[test]
    fn sharded_ingest_enforces_global_caps_in_fleet_order() {
        let cfg = IngestConfig::default().max_meters(2).max_buffered_bytes(8);
        let mut s = ShardedIngest::new(4, cfg).unwrap();
        // Partial frames stay buffered (a valid window tag, header cut short).
        s.ingest(1, &[0x02, 0]).unwrap();
        s.ingest(2, &[0x02, 0]).unwrap();
        // Backlog check fires before the meter cap (FleetIngest order).
        match s.ingest(3, &[0; 16]) {
            Err(Error::BacklogExceeded { buffered, incoming, max }) => {
                assert_eq!((buffered, incoming, max), (4, 16, 8));
            }
            other => panic!("expected BacklogExceeded, got {other:?}"),
        }
        // Small chunk from a third meter trips the global meter cap even
        // though its shard has capacity.
        match s.ingest(3, &[0]) {
            Err(Error::TooManyMeters { max }) => assert_eq!(max, 2),
            other => panic!("expected TooManyMeters, got {other:?}"),
        }
        // Existing meters keep flowing.
        s.ingest(1, &[0]).unwrap();
        let stats = s.stats();
        assert_eq!(stats.meters_rejected, 1);
        assert_eq!(stats.backlog_rejections, 1);
    }

    #[test]
    fn shard_stats_register_into_catalog() {
        let stats =
            ShardStats { shards: 4, houses_routed: 100, cache_hits: 7, ..Default::default() };
        let reg = Registry::new();
        stats.register_into(&reg);
        let text = reg.render_prometheus();
        assert!(text.contains("sms_shard_shards 4"));
        assert!(text.contains("sms_shard_cache_hits 7"));
    }
}
