//! Dirty-data sanitization for untrusted meter readings.
//!
//! The paper's pipeline (Def. 2/3 segmentation → symbols → ML) assumes
//! clean, regular REDD-style input; a production fleet gets neither. Real
//! meter streams carry NaN/∞ payloads from firmware glitches, negative
//! power from miswired CTs, duplicate and out-of-order timestamps from
//! retransmitting gateways, gap spans from outages, and absurd spikes when
//! a register resets. This module is the trust boundary between those raw
//! readings and the encoder, which (since this PR) *enforces* finiteness at
//! [`crate::timeseries::TimeSeries::push`].
//!
//! A [`Sanitizer`] walks a series once, classifies each sample against the
//! defect taxonomy ([`Defect`]), and applies the per-defect [`Policy`]
//! configured in [`SanitizerConfig`]:
//!
//! * [`Policy::Reject`] — fail the whole series with
//!   [`Error::DataQuality`]; under the engine's
//!   [`QuarantinePolicy::Isolate`](crate::engine::QuarantinePolicy) that
//!   quarantines the house instead of aborting the fleet run.
//! * [`Policy::Drop`] — silently discard the offending sample (counted).
//! * [`Policy::Clamp`] — coerce the value to the nearest plausible bound.
//! * [`Policy::FillForward`] — repair with the previous accepted value
//!   (or, for gaps, synthesize carried-forward samples on the nominal
//!   grid).
//! * [`Policy::MarkMissing`] — keep the span out of the data but record it
//!   in [`QualityReport::missing_spans`] so downstream day-coverage filters
//!   (§3.1's ≥ 20 h rule) can account for it.
//!
//! Everything is deterministic: one input always produces one output and
//! one [`QualityReport`], independent of worker count or scheduling —
//! sanitization runs *before* the parallel encode stage precisely so
//! quarantine decisions are reproducible.

use crate::error::{Error, Result};
use crate::json::JsonWriter;
use crate::telemetry::{Log2Histogram, Registry};
use crate::timeseries::{Sample, TimeSeries, Timestamp};

/// The defect taxonomy the sanitizer can detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defect {
    /// NaN or ±∞ value.
    NonFinite,
    /// Negative power reading (miswired CT, sign glitch).
    NegativePower,
    /// Same timestamp as the previous sample.
    DuplicateTimestamp,
    /// Timestamp earlier than the previous sample.
    OutOfOrderTimestamp,
    /// Consecutive timestamps further apart than the configured tolerance
    /// (builds on [`TimeSeries::gaps`]).
    Gap,
    /// Value above the plausibility ceiling (meter register reset/rollover).
    ResetSpike,
}

impl Defect {
    /// Stable lowercase name used in error messages and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Defect::NonFinite => "non_finite",
            Defect::NegativePower => "negative_power",
            Defect::DuplicateTimestamp => "duplicate_timestamp",
            Defect::OutOfOrderTimestamp => "out_of_order_timestamp",
            Defect::Gap => "gap",
            Defect::ResetSpike => "reset_spike",
        }
    }
}

/// What to do when a sample exhibits a given [`Defect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Fail the series with [`Error::DataQuality`] at the first offending
    /// sample (strictest; the default for nothing).
    Reject,
    /// Discard the offending sample and continue.
    #[default]
    Drop,
    /// Coerce the value to the nearest plausible bound: `0.0` for negative
    /// power, the plausibility ceiling for reset spikes, the previous
    /// accepted value for non-finite readings (falls back to `Drop` when
    /// there is no previous sample). Timestamp defects (duplicate,
    /// out-of-order, gap) have no value to clamp and degrade to `Drop`.
    Clamp,
    /// Repair using the last accepted sample: value defects take its value
    /// (falling back to `Drop` at series start); duplicate timestamps keep
    /// the *newest* reading (last-write-wins retransmission semantics);
    /// gaps are bridged with synthetic carried-forward samples on the
    /// nominal interval grid. Out-of-order samples degrade to `Drop` (there
    /// is no meaningful forward value for a timestamp in the past).
    FillForward,
    /// Like `Drop`, but additionally records the affected span in
    /// [`QualityReport::missing_spans`]. Mostly useful for [`Defect::Gap`],
    /// where nothing is dropped but the outage window is made visible.
    MarkMissing,
}

/// Per-defect policies plus the thresholds that define the defects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SanitizerConfig {
    /// Policy for NaN/±∞ values.
    pub non_finite: Policy,
    /// Policy for negative power readings.
    pub negative_power: Policy,
    /// Policy for duplicated timestamps.
    pub duplicate_timestamp: Policy,
    /// Policy for out-of-order timestamps.
    pub out_of_order: Policy,
    /// Policy for gap spans.
    pub gap: Policy,
    /// Policy for reset spikes.
    pub reset_spike: Policy,
    /// Two consecutive timestamps further apart than this are a [`Defect::Gap`].
    /// `0` disables gap detection entirely.
    pub gap_tolerance_secs: i64,
    /// Grid step for [`Policy::FillForward`] gap bridging; must be positive
    /// when gap filling is enabled.
    pub nominal_interval_secs: i64,
    /// Values above this are [`Defect::ResetSpike`]s. A household main is
    /// physically bounded well below 100 kW.
    pub max_plausible_watts: f64,
}

impl Default for SanitizerConfig {
    /// Repair-oriented defaults: drop what cannot be repaired, fill forward
    /// what can, record gaps as missing spans, never reject.
    fn default() -> Self {
        SanitizerConfig {
            non_finite: Policy::Drop,
            negative_power: Policy::Clamp,
            duplicate_timestamp: Policy::Drop,
            out_of_order: Policy::Drop,
            gap: Policy::MarkMissing,
            reset_spike: Policy::Clamp,
            gap_tolerance_secs: 0,
            nominal_interval_secs: 60,
            max_plausible_watts: 100_000.0,
        }
    }
}

impl SanitizerConfig {
    /// All-[`Policy::Reject`] config: any defect fails the series. The
    /// right choice when dirty data indicates an upstream bug rather than
    /// an expected field condition.
    pub fn strict() -> Self {
        SanitizerConfig {
            non_finite: Policy::Reject,
            negative_power: Policy::Reject,
            duplicate_timestamp: Policy::Reject,
            out_of_order: Policy::Reject,
            gap: Policy::Reject,
            reset_spike: Policy::Reject,
            ..Self::default()
        }
    }

    /// Sets the gap tolerance (`0` disables gap detection).
    pub fn gap_tolerance_secs(mut self, secs: i64) -> Self {
        self.gap_tolerance_secs = secs;
        self
    }

    /// Sets the nominal sampling interval used for gap filling.
    pub fn nominal_interval_secs(mut self, secs: i64) -> Self {
        self.nominal_interval_secs = secs;
        self
    }

    /// Sets the reset-spike plausibility ceiling.
    pub fn max_plausible_watts(mut self, watts: f64) -> Self {
        self.max_plausible_watts = watts;
        self
    }

    fn policy_for(&self, defect: Defect) -> Policy {
        match defect {
            Defect::NonFinite => self.non_finite,
            Defect::NegativePower => self.negative_power,
            Defect::DuplicateTimestamp => self.duplicate_timestamp,
            Defect::OutOfOrderTimestamp => self.out_of_order,
            Defect::Gap => self.gap,
            Defect::ResetSpike => self.reset_spike,
        }
    }
}

/// Per-defect occurrence counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DefectCounts {
    /// NaN/±∞ values seen.
    pub non_finite: u64,
    /// Negative power readings seen.
    pub negative_power: u64,
    /// Duplicated timestamps seen.
    pub duplicate_timestamps: u64,
    /// Out-of-order timestamps seen.
    pub out_of_order: u64,
    /// Gap spans seen.
    pub gaps: u64,
    /// Reset spikes seen.
    pub reset_spikes: u64,
}

impl DefectCounts {
    /// Total defects of any class.
    pub fn total(&self) -> u64 {
        self.non_finite
            + self.negative_power
            + self.duplicate_timestamps
            + self.out_of_order
            + self.gaps
            + self.reset_spikes
    }

    fn bump(&mut self, defect: Defect) {
        match defect {
            Defect::NonFinite => self.non_finite += 1,
            Defect::NegativePower => self.negative_power += 1,
            Defect::DuplicateTimestamp => self.duplicate_timestamps += 1,
            Defect::OutOfOrderTimestamp => self.out_of_order += 1,
            Defect::Gap => self.gaps += 1,
            Defect::ResetSpike => self.reset_spikes += 1,
        }
    }

    fn merge(&mut self, other: &DefectCounts) {
        self.non_finite += other.non_finite;
        self.negative_power += other.negative_power;
        self.duplicate_timestamps += other.duplicate_timestamps;
        self.out_of_order += other.out_of_order;
        self.gaps += other.gaps;
        self.reset_spikes += other.reset_spikes;
    }
}

/// What one sanitization pass found and did for one house.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QualityReport {
    /// Samples examined.
    pub samples_in: u64,
    /// Samples surviving sanitization (including synthesized fill samples).
    pub samples_out: u64,
    /// Defects found, by class.
    pub defects: DefectCounts,
    /// Samples discarded.
    pub dropped: u64,
    /// Values coerced to a plausible bound.
    pub clamped: u64,
    /// Samples repaired or synthesized by fill-forward.
    pub filled: u64,
    /// Spans recorded as missing (without repair).
    pub marked_missing: u64,
    /// `(start, end)` timestamp pairs of spans recorded by
    /// [`Policy::MarkMissing`], exclusive of the samples that bound them.
    pub missing_spans: Vec<(Timestamp, Timestamp)>,
}

impl QualityReport {
    /// Whether the pass found nothing to fix.
    pub fn is_clean(&self) -> bool {
        self.defects.total() == 0
    }
}

/// Fleet-level aggregate of [`QualityReport`]s, merged into
/// [`crate::engine::EngineStats`] JSON like the ingest and eval blocks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QualityStats {
    /// Houses sanitized.
    pub houses: u64,
    /// Houses quarantined (sanitization rejected them, or their encode job
    /// exhausted retries).
    pub quarantined: u64,
    /// Samples examined across the fleet.
    pub samples_in: u64,
    /// Samples surviving across the fleet.
    pub samples_out: u64,
    /// Defects found across the fleet.
    pub defects: DefectCounts,
    /// Samples discarded across the fleet.
    pub dropped: u64,
    /// Values clamped across the fleet.
    pub clamped: u64,
    /// Samples filled across the fleet.
    pub filled: u64,
    /// Spans marked missing across the fleet.
    pub marked_missing: u64,
    /// Wall time of the sanitization pre-pass, seconds.
    pub sanitize_secs: f64,
    /// Distribution of per-house defect totals (one observation per
    /// sanitized house). Rendered through the `"histograms"` section of
    /// [`crate::engine::EngineStats::to_json`], not this block's object.
    pub house_defects: Log2Histogram,
}

impl QualityStats {
    /// Folds one house's report into the aggregate.
    pub fn merge_report(&mut self, report: &QualityReport) {
        self.houses += 1;
        self.samples_in += report.samples_in;
        self.samples_out += report.samples_out;
        self.defects.merge(&report.defects);
        self.dropped += report.dropped;
        self.clamped += report.clamped;
        self.filled += report.filled;
        self.marked_missing += report.marked_missing;
        self.house_defects.observe(report.defects.total());
    }

    /// Registers this block's [`crate::telemetry::CATALOG`] metrics into
    /// `reg` and loads their current values.
    pub fn register_into(&self, reg: &Registry) {
        reg.register_block("quality");
        reg.add("sms_quality_houses", self.houses);
        reg.add("sms_quality_quarantined", self.quarantined);
        reg.add("sms_quality_samples_in", self.samples_in);
        reg.add("sms_quality_samples_out", self.samples_out);
        reg.add("sms_quality_defects_non_finite", self.defects.non_finite);
        reg.add("sms_quality_defects_negative_power", self.defects.negative_power);
        reg.add("sms_quality_defects_duplicate_timestamps", self.defects.duplicate_timestamps);
        reg.add("sms_quality_defects_out_of_order", self.defects.out_of_order);
        reg.add("sms_quality_defects_gaps", self.defects.gaps);
        reg.add("sms_quality_defects_reset_spikes", self.defects.reset_spikes);
        reg.add("sms_quality_dropped", self.dropped);
        reg.add("sms_quality_clamped", self.clamped);
        reg.add("sms_quality_filled", self.filled);
        reg.add("sms_quality_marked_missing", self.marked_missing);
        reg.set_f64("sms_quality_sanitize_secs", self.sanitize_secs);
        reg.merge_histogram("sms_quality_house_defects", &self.house_defects);
    }

    /// Writes this block as one JSON value into `w` (shared with
    /// [`crate::engine::EngineStats::to_json`]). The key names, order,
    /// and the nested `"defects"` object come from the telemetry
    /// [`crate::telemetry::CATALOG`]'s dotted keys.
    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        let reg = Registry::new();
        self.register_into(&reg);
        reg.write_block_json(w, "quality");
    }

    /// JSON object for benchmark trajectories.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Single-pass series sanitizer; see the module docs for semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sanitizer {
    config: SanitizerConfig,
}

impl Sanitizer {
    /// Sanitizer with the given per-defect policies.
    pub fn new(config: SanitizerConfig) -> Self {
        Sanitizer { config }
    }

    /// The configured policies.
    pub fn config(&self) -> &SanitizerConfig {
        &self.config
    }

    /// Sanitizes a series (which may have been built with
    /// [`TimeSeries::from_samples_unchecked`] and thus violate the clean
    /// invariants), returning the cleaned series and a report of what was
    /// found and done. Fails with [`Error::DataQuality`] at the first
    /// defect whose policy is [`Policy::Reject`].
    pub fn sanitize(&self, series: &TimeSeries) -> Result<(TimeSeries, QualityReport)> {
        self.sanitize_samples(series.samples())
    }

    /// [`sanitize`](Self::sanitize) over a raw sample slice.
    pub fn sanitize_samples(&self, samples: &[Sample]) -> Result<(TimeSeries, QualityReport)> {
        let cfg = &self.config;
        let mut report = QualityReport { samples_in: samples.len() as u64, ..Default::default() };
        let mut kept: Vec<Sample> = Vec::with_capacity(samples.len());

        for (index, &sample) in samples.iter().enumerate() {
            let Sample { t, mut v } = sample;

            // Timestamp defects first: a sample the timeline rejects never
            // gets a say about its value.
            if let Some(last) = kept.last().copied() {
                if t < last.t {
                    match self.apply_timestamp_policy(
                        Defect::OutOfOrderTimestamp,
                        index,
                        &mut report,
                    )? {
                        TimestampAction::Skip => continue,
                        TimestampAction::ReplaceLast => unreachable!("out-of-order never replaces"),
                    }
                }
                if t == last.t {
                    match self.apply_timestamp_policy(
                        Defect::DuplicateTimestamp,
                        index,
                        &mut report,
                    )? {
                        TimestampAction::Skip => continue,
                        TimestampAction::ReplaceLast => {
                            // Last-write-wins: the retransmitted reading
                            // replaces the earlier one, after its own value
                            // checks below.
                            kept.pop();
                        }
                    }
                }
            }

            // Value defects.
            let mut keep_value = true;
            if !v.is_finite() {
                report.defects.bump(Defect::NonFinite);
                match cfg.non_finite {
                    Policy::Reject => {
                        return Err(Error::DataQuality { defect: Defect::NonFinite.name(), index })
                    }
                    Policy::Drop => {
                        report.dropped += 1;
                        keep_value = false;
                    }
                    Policy::Clamp | Policy::FillForward => match kept.last() {
                        Some(prev) => {
                            v = prev.v;
                            report.filled += 1;
                        }
                        None => {
                            report.dropped += 1;
                            keep_value = false;
                        }
                    },
                    Policy::MarkMissing => {
                        report.dropped += 1;
                        report.marked_missing += 1;
                        report.missing_spans.push((t, t));
                        keep_value = false;
                    }
                }
            } else if v < 0.0 {
                report.defects.bump(Defect::NegativePower);
                match cfg.negative_power {
                    Policy::Reject => {
                        return Err(Error::DataQuality {
                            defect: Defect::NegativePower.name(),
                            index,
                        })
                    }
                    Policy::Drop => {
                        report.dropped += 1;
                        keep_value = false;
                    }
                    Policy::Clamp => {
                        v = 0.0;
                        report.clamped += 1;
                    }
                    Policy::FillForward => match kept.last() {
                        Some(prev) => {
                            v = prev.v;
                            report.filled += 1;
                        }
                        None => {
                            report.dropped += 1;
                            keep_value = false;
                        }
                    },
                    Policy::MarkMissing => {
                        report.dropped += 1;
                        report.marked_missing += 1;
                        report.missing_spans.push((t, t));
                        keep_value = false;
                    }
                }
            } else if v > cfg.max_plausible_watts {
                report.defects.bump(Defect::ResetSpike);
                match cfg.reset_spike {
                    Policy::Reject => {
                        return Err(Error::DataQuality { defect: Defect::ResetSpike.name(), index })
                    }
                    Policy::Drop => {
                        report.dropped += 1;
                        keep_value = false;
                    }
                    Policy::Clamp => {
                        v = cfg.max_plausible_watts;
                        report.clamped += 1;
                    }
                    Policy::FillForward => match kept.last() {
                        Some(prev) => {
                            v = prev.v;
                            report.filled += 1;
                        }
                        None => {
                            report.dropped += 1;
                            keep_value = false;
                        }
                    },
                    Policy::MarkMissing => {
                        report.dropped += 1;
                        report.marked_missing += 1;
                        report.missing_spans.push((t, t));
                        keep_value = false;
                    }
                }
            }

            if keep_value {
                kept.push(Sample::new(t, v));
            }
        }

        // Gap pass over the surviving timeline.
        if cfg.gap_tolerance_secs > 0 {
            kept = self.apply_gap_policy(kept, &mut report)?;
        }

        report.samples_out = kept.len() as u64;
        // The kept timeline is non-decreasing and finite by construction,
        // but go through the checked constructor anyway: the sanitizer is
        // the trust boundary, and a future policy bug should fail loudly
        // here rather than corrupt the encoder.
        let clean = TimeSeries::from_samples(kept)?;
        Ok((clean, report))
    }

    fn apply_timestamp_policy(
        &self,
        defect: Defect,
        index: usize,
        report: &mut QualityReport,
    ) -> Result<TimestampAction> {
        report.defects.bump(defect);
        let policy = self.config.policy_for(defect);
        match policy {
            Policy::Reject => Err(Error::DataQuality { defect: defect.name(), index }),
            Policy::FillForward if defect == Defect::DuplicateTimestamp => {
                report.filled += 1;
                Ok(TimestampAction::ReplaceLast)
            }
            Policy::MarkMissing => {
                report.dropped += 1;
                report.marked_missing += 1;
                Ok(TimestampAction::Skip)
            }
            // Clamp and (for out-of-order) FillForward have no meaningful
            // repair for a timestamp defect; degrade to Drop as documented.
            _ => {
                report.dropped += 1;
                Ok(TimestampAction::Skip)
            }
        }
    }

    fn apply_gap_policy(
        &self,
        kept: Vec<Sample>,
        report: &mut QualityReport,
    ) -> Result<Vec<Sample>> {
        let cfg = &self.config;
        let tolerance = cfg.gap_tolerance_secs;
        match cfg.gap {
            Policy::Reject => {
                if let Some(i) = kept.windows(2).position(|w| w[1].t - w[0].t > tolerance) {
                    report.defects.bump(Defect::Gap);
                    return Err(Error::DataQuality { defect: Defect::Gap.name(), index: i + 1 });
                }
                Ok(kept)
            }
            Policy::FillForward => {
                let interval = cfg.nominal_interval_secs.max(1);
                let mut out: Vec<Sample> = Vec::with_capacity(kept.len());
                for sample in kept {
                    if let Some(prev) = out.last().copied() {
                        if sample.t - prev.t > tolerance {
                            report.defects.bump(Defect::Gap);
                            let mut t = prev.t + interval;
                            while t < sample.t {
                                out.push(Sample::new(t, prev.v));
                                report.filled += 1;
                                t += interval;
                            }
                        }
                    }
                    out.push(sample);
                }
                Ok(out)
            }
            // Drop/Clamp/MarkMissing: nothing to remove — the gap *is*
            // absence — so they all reduce to "record it" (MarkMissing also
            // exposes the span).
            policy => {
                for w in kept.windows(2) {
                    if w[1].t - w[0].t > tolerance {
                        report.defects.bump(Defect::Gap);
                        if policy == Policy::MarkMissing {
                            report.marked_missing += 1;
                            report.missing_spans.push((w[0].t, w[1].t));
                        }
                    }
                }
                Ok(kept)
            }
        }
    }
}

enum TimestampAction {
    Skip,
    ReplaceLast,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dirty(samples: &[(Timestamp, f64)]) -> TimeSeries {
        TimeSeries::from_samples_unchecked(
            samples.iter().map(|&(t, v)| Sample::new(t, v)).collect(),
        )
    }

    #[test]
    fn clean_series_passes_through_untouched() {
        let s = TimeSeries::from_regular(0, 60, &[1.0, 2.0, 3.0]).unwrap();
        let (clean, report) = Sanitizer::default().sanitize(&s).unwrap();
        assert_eq!(clean, s);
        assert!(report.is_clean());
        assert_eq!(report.samples_in, 3);
        assert_eq!(report.samples_out, 3);
    }

    #[test]
    fn strict_rejects_first_defect_with_its_class() {
        let san = Sanitizer::new(SanitizerConfig::strict());
        let err = san.sanitize(&dirty(&[(0, 1.0), (60, f64::NAN)])).unwrap_err();
        assert_eq!(err, Error::DataQuality { defect: "non_finite", index: 1 });
        let err = san.sanitize(&dirty(&[(0, 1.0), (60, -2.0)])).unwrap_err();
        assert_eq!(err, Error::DataQuality { defect: "negative_power", index: 1 });
        let err = san.sanitize(&dirty(&[(0, 1.0), (60, 1e9)])).unwrap_err();
        assert_eq!(err, Error::DataQuality { defect: "reset_spike", index: 1 });
        let err = san.sanitize(&dirty(&[(0, 1.0), (0, 2.0)])).unwrap_err();
        assert_eq!(err, Error::DataQuality { defect: "duplicate_timestamp", index: 1 });
        let err = san.sanitize(&dirty(&[(60, 1.0), (0, 2.0)])).unwrap_err();
        assert_eq!(err, Error::DataQuality { defect: "out_of_order_timestamp", index: 1 });
    }

    #[test]
    fn strict_rejects_gaps_when_tolerance_set() {
        let san = Sanitizer::new(SanitizerConfig::strict().gap_tolerance_secs(60));
        let err = san.sanitize(&dirty(&[(0, 1.0), (600, 2.0)])).unwrap_err();
        assert_eq!(err, Error::DataQuality { defect: "gap", index: 1 });
        // Tolerance 0 disables detection even under strict().
        let san = Sanitizer::new(SanitizerConfig::strict());
        assert!(san.sanitize(&dirty(&[(0, 1.0), (600, 2.0)])).is_ok());
    }

    #[test]
    fn drop_discards_and_counts() {
        let cfg = SanitizerConfig {
            non_finite: Policy::Drop,
            negative_power: Policy::Drop,
            reset_spike: Policy::Drop,
            ..SanitizerConfig::default()
        };
        let (clean, report) = Sanitizer::new(cfg)
            .sanitize(&dirty(&[(0, 1.0), (60, f64::NAN), (120, -5.0), (180, 1e9), (240, 2.0)]))
            .unwrap();
        assert_eq!(clean.values(), vec![1.0, 2.0]);
        assert_eq!(report.dropped, 3);
        assert_eq!(report.defects.non_finite, 1);
        assert_eq!(report.defects.negative_power, 1);
        assert_eq!(report.defects.reset_spikes, 1);
        assert_eq!(report.samples_out, 2);
    }

    #[test]
    fn clamp_coerces_to_plausible_bounds() {
        let cfg = SanitizerConfig {
            negative_power: Policy::Clamp,
            reset_spike: Policy::Clamp,
            max_plausible_watts: 1000.0,
            ..SanitizerConfig::default()
        };
        let (clean, report) =
            Sanitizer::new(cfg).sanitize(&dirty(&[(0, -3.0), (60, 5000.0), (120, 7.0)])).unwrap();
        assert_eq!(clean.values(), vec![0.0, 1000.0, 7.0]);
        assert_eq!(report.clamped, 2);
    }

    #[test]
    fn fill_forward_repairs_value_defects() {
        let cfg = SanitizerConfig { non_finite: Policy::FillForward, ..SanitizerConfig::default() };
        let (clean, report) = Sanitizer::new(cfg)
            .sanitize(&dirty(&[(0, f64::NAN), (60, 4.0), (120, f64::NAN), (180, 6.0)]))
            .unwrap();
        // Leading NaN has nothing to carry forward → dropped.
        assert_eq!(clean.values(), vec![4.0, 4.0, 6.0]);
        assert_eq!(report.filled, 1);
        assert_eq!(report.dropped, 1);
    }

    #[test]
    fn duplicate_policies_pick_a_winner() {
        // Drop keeps the first reading.
        let (clean, _) =
            Sanitizer::default().sanitize(&dirty(&[(0, 1.0), (0, 2.0), (60, 3.0)])).unwrap();
        assert_eq!(clean.values(), vec![1.0, 3.0]);
        // FillForward keeps the newest (last-write-wins retransmission).
        let cfg =
            SanitizerConfig { duplicate_timestamp: Policy::FillForward, ..Default::default() };
        let (clean, report) =
            Sanitizer::new(cfg).sanitize(&dirty(&[(0, 1.0), (0, 2.0), (60, 3.0)])).unwrap();
        assert_eq!(clean.values(), vec![2.0, 3.0]);
        assert_eq!(report.defects.duplicate_timestamps, 1);
    }

    #[test]
    fn out_of_order_is_dropped_not_reordered() {
        let (clean, report) = Sanitizer::default()
            .sanitize(&dirty(&[(0, 1.0), (120, 2.0), (60, 9.0), (180, 3.0)]))
            .unwrap();
        assert_eq!(clean.timestamps(), vec![0, 120, 180]);
        assert_eq!(report.defects.out_of_order, 1);
        assert_eq!(report.dropped, 1);
    }

    #[test]
    fn gap_fill_forward_bridges_on_the_nominal_grid() {
        let cfg = SanitizerConfig::default().gap_tolerance_secs(60).nominal_interval_secs(60);
        let cfg = SanitizerConfig { gap: Policy::FillForward, ..cfg };
        let (clean, report) =
            Sanitizer::new(cfg).sanitize(&dirty(&[(0, 5.0), (240, 9.0)])).unwrap();
        assert_eq!(clean.timestamps(), vec![0, 60, 120, 180, 240]);
        assert_eq!(clean.values(), vec![5.0, 5.0, 5.0, 5.0, 9.0]);
        assert_eq!(report.defects.gaps, 1);
        assert_eq!(report.filled, 3);
        assert_eq!(report.samples_out, 5);
    }

    #[test]
    fn gap_mark_missing_records_span_without_repair() {
        let cfg = SanitizerConfig::default().gap_tolerance_secs(60); // gap: MarkMissing default
        let (clean, report) =
            Sanitizer::new(cfg).sanitize(&dirty(&[(0, 5.0), (600, 9.0)])).unwrap();
        assert_eq!(clean.len(), 2, "nothing dropped or synthesized");
        assert_eq!(report.missing_spans, vec![(0, 600)]);
        assert_eq!(report.marked_missing, 1);
        assert_eq!(report.defects.gaps, 1);
    }

    #[test]
    fn combined_dirt_is_cleaned_in_one_pass() {
        // NaN run + duplicate + out-of-order + spike + negative, all at once.
        let (clean, report) = Sanitizer::default()
            .sanitize(&dirty(&[
                (0, 10.0),
                (60, f64::NAN),
                (60, f64::NAN),
                (120, 11.0),
                (90, 99.0),
                (180, -4.0),
                (240, 5e8),
                (300, 12.0),
            ]))
            .unwrap();
        // Defaults: NaN dropped, duplicate dropped, out-of-order dropped,
        // negative clamped to 0, spike clamped to ceiling.
        assert_eq!(clean.timestamps(), vec![0, 120, 180, 240, 300]);
        assert_eq!(clean.values(), vec![10.0, 11.0, 0.0, 100_000.0, 12.0]);
        assert!(!report.is_clean());
        assert_eq!(report.samples_in, 8);
        assert_eq!(report.samples_out, 5);
        // Output honors the clean-series invariants.
        assert!(TimeSeries::from_samples(clean.samples().to_vec()).is_ok());
    }

    #[test]
    fn empty_series_is_clean() {
        let (clean, report) = Sanitizer::default().sanitize(&TimeSeries::new()).unwrap();
        assert!(clean.is_empty());
        assert!(report.is_clean());
    }

    #[test]
    fn quality_stats_aggregate_and_serialize() {
        let mut stats = QualityStats::default();
        let (_, r1) = Sanitizer::default().sanitize(&dirty(&[(0, 1.0), (60, f64::NAN)])).unwrap();
        let (_, r2) = Sanitizer::default().sanitize(&dirty(&[(0, -1.0)])).unwrap();
        stats.merge_report(&r1);
        stats.merge_report(&r2);
        stats.quarantined = 1;
        assert_eq!(stats.houses, 2);
        assert_eq!(stats.samples_in, 3);
        assert_eq!(stats.defects.non_finite, 1);
        assert_eq!(stats.defects.negative_power, 1);
        let json = stats.to_json();
        for key in [
            "houses",
            "quarantined",
            "defects",
            "non_finite",
            "dropped",
            "clamped",
            "sanitize_secs",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
    }

    #[test]
    fn sanitize_is_deterministic() {
        let input = dirty(&[(0, 1.0), (60, f64::NAN), (60, 2.0), (30, 3.0), (120, -1.0)]);
        let a = Sanitizer::default().sanitize(&input).unwrap();
        let b = Sanitizer::default().sanitize(&input).unwrap();
        assert_eq!(a, b);
    }
}
