//! Utility-driven horizontal segmentation (paper §4: "we would like to look
//! into an utility-driven horizontal segmentation method that could optimize
//! the performances of a chosen analytics with predefined properties or
//! background knowledge from experts").
//!
//! Two learners beyond the paper's three unsupervised methods:
//!
//! * [`supervised_separators`] — given labelled values (e.g. house ids, or
//!   any downstream target), choose the `k - 1` boundaries that maximize the
//!   information the symbol carries about the label, via dynamic
//!   programming over candidate cut points (optimal 1-D supervised
//!   discretization, cf. Fayyad & Irani but with an exact bin budget);
//! * [`reconstruction_separators`] — choose boundaries minimizing the
//!   within-bin squared reconstruction error (a 1-D k-means / Lloyd–Max
//!   quantizer, again solved exactly by dynamic programming), for pipelines
//!   whose utility is signal fidelity rather than classification.

use crate::error::{Error, Result};
use crate::stats::FiniteF64;

fn validate_k(k: usize) -> Result<()> {
    if !(2..=1 << 16).contains(&k) || !k.is_power_of_two() {
        return Err(Error::InvalidAlphabetSize(k));
    }
    Ok(())
}

/// Collapses labelled values into sorted distinct values with per-label
/// counts: `(value, label_counts)`.
fn sorted_groups(values: &[f64], labels: &[usize]) -> Result<(Vec<f64>, Vec<Vec<f64>>, usize)> {
    if values.len() != labels.len() || values.is_empty() {
        return Err(Error::InvalidParameter {
            name: "values/labels",
            reason: "need equal non-zero lengths".to_string(),
        });
    }
    let n_labels = labels.iter().max().map(|m| m + 1).unwrap_or(1);
    let mut map: std::collections::BTreeMap<FiniteF64, Vec<f64>> =
        std::collections::BTreeMap::new();
    for (&v, &l) in values.iter().zip(labels) {
        let entry = map.entry(FiniteF64::new(v)?).or_insert_with(|| vec![0.0; n_labels]);
        entry[l] += 1.0;
    }
    let mut vals = Vec::with_capacity(map.len());
    let mut counts = Vec::with_capacity(map.len());
    for (v, c) in map {
        vals.push(v.get());
        counts.push(c);
    }
    Ok((vals, counts, n_labels))
}

fn entropy(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| {
            let p = c / total;
            -p * p.log2()
        })
        .sum()
}

/// Supervised separators: split the value axis into exactly `k` bins
/// minimizing the label-entropy after the split (equivalently maximizing
/// information gain about the label). Exact via dynamic programming in
/// `O(d² k)` over `d` distinct values — ample for separator learning, which
/// the paper performs once on a two-day history.
pub fn supervised_separators(values: &[f64], labels: &[usize], k: usize) -> Result<Vec<f64>> {
    validate_k(k)?;
    let (vals, counts, _) = sorted_groups(values, labels)?;
    let d = vals.len();
    if d == 1 {
        // Degenerate: all separators at the single value.
        return Ok(vec![vals[0]; k - 1]);
    }
    let k_eff = k.min(d);

    // Prefix label counts for O(1) interval statistics.
    let n_labels = counts[0].len();
    let mut prefix = vec![vec![0.0f64; n_labels]; d + 1];
    for i in 0..d {
        for l in 0..n_labels {
            prefix[i + 1][l] = prefix[i][l] + counts[i][l];
        }
    }
    let interval = |a: usize, b: usize| -> (f64, f64) {
        // [a, b): returns (count, weighted entropy contribution).
        let c: Vec<f64> = (0..n_labels).map(|l| prefix[b][l] - prefix[a][l]).collect();
        let total: f64 = c.iter().sum();
        (total, total * entropy(&c))
    };

    // dp[j][i] = minimal Σ n_bin·H(bin) partitioning the first i distinct
    // values into j bins; cut[j][i] = argmin start of the last bin.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; d + 1]; k_eff + 1];
    let mut cut = vec![vec![0usize; d + 1]; k_eff + 1];
    dp[0][0] = 0.0;
    for j in 1..=k_eff {
        for i in j..=d {
            for a in (j - 1)..i {
                if dp[j - 1][a].is_finite() {
                    let (_, wh) = interval(a, i);
                    let cand = dp[j - 1][a] + wh;
                    if cand < dp[j][i] {
                        dp[j][i] = cand;
                        cut[j][i] = a;
                    }
                }
            }
        }
    }

    // Recover bin boundaries: separator = last value of each bin but the last.
    let mut bounds = Vec::with_capacity(k_eff - 1);
    let mut i = d;
    let mut j = k_eff;
    while j > 0 {
        let a = cut[j][i];
        if j > 1 {
            bounds.push(vals[a - 1]);
        }
        i = a;
        j -= 1;
    }
    bounds.reverse();
    // Pad (duplicate the last boundary) when fewer distinct values than k.
    while bounds.len() < k - 1 {
        let pad = bounds.last().copied().unwrap_or(vals[d - 1]);
        bounds.push(pad);
    }
    Ok(bounds)
}

/// Reconstruction-optimal separators: exactly `k` bins minimizing the total
/// within-bin squared deviation from the bin mean (the Lloyd–Max / 1-D
/// k-means objective), solved by dynamic programming.
pub fn reconstruction_separators(values: &[f64], k: usize) -> Result<Vec<f64>> {
    validate_k(k)?;
    if values.is_empty() {
        return Err(Error::EmptyInput("reconstruction_separators"));
    }
    // Distinct values with multiplicities.
    let mut map: std::collections::BTreeMap<FiniteF64, f64> = std::collections::BTreeMap::new();
    for &v in values {
        *map.entry(FiniteF64::new(v)?).or_insert(0.0) += 1.0;
    }
    let vals: Vec<f64> = map.keys().map(|v| v.get()).collect();
    let weights: Vec<f64> = map.values().copied().collect();
    let d = vals.len();
    if d == 1 {
        return Ok(vec![vals[0]; k - 1]);
    }
    let k_eff = k.min(d);

    // Prefix sums for interval SSE in O(1).
    let mut pw = vec![0.0f64; d + 1];
    let mut pwx = vec![0.0f64; d + 1];
    let mut pwx2 = vec![0.0f64; d + 1];
    for i in 0..d {
        pw[i + 1] = pw[i] + weights[i];
        pwx[i + 1] = pwx[i] + weights[i] * vals[i];
        pwx2[i + 1] = pwx2[i] + weights[i] * vals[i] * vals[i];
    }
    let sse = |a: usize, b: usize| -> f64 {
        let w = pw[b] - pw[a];
        if w <= 0.0 {
            return 0.0;
        }
        let s = pwx[b] - pwx[a];
        let s2 = pwx2[b] - pwx2[a];
        (s2 - s * s / w).max(0.0)
    };

    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; d + 1]; k_eff + 1];
    let mut cut = vec![vec![0usize; d + 1]; k_eff + 1];
    dp[0][0] = 0.0;
    for j in 1..=k_eff {
        for i in j..=d {
            for a in (j - 1)..i {
                if dp[j - 1][a].is_finite() {
                    let cand = dp[j - 1][a] + sse(a, i);
                    if cand < dp[j][i] {
                        dp[j][i] = cand;
                        cut[j][i] = a;
                    }
                }
            }
        }
    }
    let mut bounds = Vec::with_capacity(k_eff - 1);
    let mut i = d;
    let mut j = k_eff;
    while j > 0 {
        let a = cut[j][i];
        if j > 1 {
            bounds.push(vals[a - 1]);
        }
        i = a;
        j -= 1;
    }
    bounds.reverse();
    while bounds.len() < k - 1 {
        let pad = bounds.last().copied().unwrap_or(vals[d - 1]);
        bounds.push(pad);
    }
    Ok(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::lookup::LookupTable;
    use crate::separators::{median_separators, SeparatorMethod};

    #[test]
    fn supervised_finds_class_boundaries() {
        // Labels switch at 100 and 200; k=4 must place cuts there.
        let mut values = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            let v = i as f64;
            values.push(v);
            labels.push(if v < 100.0 {
                0
            } else if v < 200.0 {
                1
            } else {
                2
            });
        }
        let seps = supervised_separators(&values, &labels, 4).unwrap();
        assert_eq!(seps.len(), 3);
        assert!(seps.contains(&99.0), "{seps:?}");
        assert!(seps.contains(&199.0), "{seps:?}");
        // Resulting table classifies the label perfectly by symbol.
        let table = LookupTable::from_parts(
            SeparatorMethod::Uniform,
            Alphabet::with_size(4).unwrap(),
            seps,
            &values,
        )
        .unwrap();
        let mut seen = std::collections::HashMap::new();
        for (&v, &l) in values.iter().zip(&labels) {
            let sym = table.encode_value(v).unwrap().rank();
            let entry = seen.entry(sym).or_insert(l);
            assert_eq!(*entry, l, "symbol {sym} mixes labels");
        }
    }

    #[test]
    fn supervised_beats_median_on_skewed_class_structure() {
        // 90% of mass at low values all of class 0; classes 1..3 hide in the
        // top decile. Median quantiles waste bins on class 0; the supervised
        // learner should carve up the top decile.
        let mut values = Vec::new();
        let mut labels = Vec::new();
        for i in 0..900 {
            values.push(i as f64 % 90.0);
            labels.push(0);
        }
        for i in 0..300 {
            let v = 1000.0 + i as f64;
            values.push(v);
            labels.push(1 + (i / 100) as usize);
        }
        let mi = |seps: Vec<f64>| {
            let table = LookupTable::from_parts(
                SeparatorMethod::Uniform,
                Alphabet::with_size(4).unwrap(),
                seps,
                &values,
            )
            .unwrap();
            let symbols: Vec<crate::symbol::Symbol> =
                values.iter().map(|&v| table.encode_value(v).unwrap()).collect();
            crate::privacy::mutual_information_bits(&labels, &symbols).unwrap()
        };
        let supervised = mi(supervised_separators(&values, &labels, 4).unwrap());
        let median = mi(median_separators(&values, 4).unwrap());
        assert!(
            supervised > median + 0.3,
            "supervised MI {supervised} should clearly beat median MI {median}"
        );
    }

    #[test]
    fn reconstruction_matches_known_1d_kmeans() {
        // Three tight clusters: optimal 4-bin split isolates them (one split
        // inside the widest cluster or an empty-ish 4th bin — SSE must be ~0
        // for k=4 since 3 clusters of width 1 fit in 4 bins).
        let mut values = Vec::new();
        for c in [0.0, 100.0, 200.0] {
            for i in 0..10 {
                values.push(c + i as f64 * 0.1);
            }
        }
        let seps = reconstruction_separators(&values, 4).unwrap();
        let table = LookupTable::from_parts(
            SeparatorMethod::Uniform,
            Alphabet::with_size(4).unwrap(),
            seps,
            &values,
        )
        .unwrap();
        // Reconstruction error: every value within 0.5 of its bin mean.
        for &v in &values {
            let sym = table.encode_value(v).unwrap();
            let r = table.decode_symbol(sym, crate::lookup::SymbolSemantics::RangeMean).unwrap();
            assert!((r - v).abs() < 0.5, "{v} -> {r}");
        }
    }

    #[test]
    fn reconstruction_beats_uniform_on_clustered_data() {
        let mut values = Vec::new();
        for c in [0.0, 10.0, 500.0, 1000.0] {
            for i in 0..25 {
                values.push(c + i as f64 * 0.01);
            }
        }
        let sse_of = |seps: Vec<f64>| {
            let table = LookupTable::from_parts(
                SeparatorMethod::Uniform,
                Alphabet::with_size(4).unwrap(),
                seps,
                &values,
            )
            .unwrap();
            values
                .iter()
                .map(|&v| {
                    let r = table
                        .decode_symbol(
                            table.encode_value(v).unwrap(),
                            crate::lookup::SymbolSemantics::RangeMean,
                        )
                        .unwrap();
                    (r - v) * (r - v)
                })
                .sum::<f64>()
        };
        let optimal = sse_of(reconstruction_separators(&values, 4).unwrap());
        let uniform = sse_of(crate::separators::uniform_separators(1001.0, 4).unwrap());
        assert!(optimal <= uniform + 1e-9, "optimal {optimal} vs uniform {uniform}");
        assert!(optimal < 1.0, "clusters should reconstruct nearly exactly: {optimal}");
    }

    #[test]
    fn separators_are_monotone_and_right_count() {
        let values: Vec<f64> = (0..200).map(|i| ((i * 37) % 100) as f64).collect();
        let labels: Vec<usize> = values.iter().map(|&v| (v / 25.0) as usize).collect();
        for k in [2usize, 4, 8, 16] {
            for seps in [
                supervised_separators(&values, &labels, k).unwrap(),
                reconstruction_separators(&values, k).unwrap(),
            ] {
                assert_eq!(seps.len(), k - 1);
                for w in seps.windows(2) {
                    assert!(w[0] <= w[1], "{seps:?}");
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(supervised_separators(&[], &[], 4).is_err());
        assert!(supervised_separators(&[1.0], &[0, 1], 4).is_err());
        assert!(supervised_separators(&[1.0], &[0], 3).is_err(), "k must be a power of two");
        // Constant input: separators collapse to that value.
        let s = supervised_separators(&[5.0; 10], &[0; 10], 4).unwrap();
        assert_eq!(s, vec![5.0, 5.0, 5.0]);
        let s = reconstruction_separators(&[5.0; 10], 4).unwrap();
        assert_eq!(s, vec![5.0, 5.0, 5.0]);
        // Fewer distinct values than bins: padded boundaries still valid.
        let s = reconstruction_separators(&[1.0, 2.0], 8).unwrap();
        assert_eq!(s.len(), 7);
        for w in s.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
