//! # sms-core — Symbolic Representation of Smart Meter Data
//!
//! A from-scratch implementation of the symbolic time-series encoding of
//! *Wijaya, Eberle, Aberer — "Symbolic Representation of Smart Meter Data",
//! EDBT 2013*, plus the SAX/iSAX baselines it compares against and the §4
//! extensions (adaptive tables, privacy measures).
//!
//! The encoding replaces a large real-valued time series with a short
//! sequence of variable-length **binary symbols**:
//!
//! 1. **Vertical segmentation** ([`vertical`]) aggregates `n` consecutive
//!    samples (the paper uses 15-minute and 1-hour means), reducing
//!    numerosity.
//! 2. **Horizontal segmentation** ([`horizontal`], [`lookup`]) quantizes each
//!    aggregate into a symbol via a lookup table whose separators are learned
//!    from historical data with one of three methods ([`separators`]):
//!    `uniform`, `median`, or `distinctmedian`.
//! 3. Symbols are binary strings built by recursive range halving
//!    ([`symbol`]), so resolutions nest: truncating a symbol's bits coarsens
//!    it, and a coarse lookup table is the restriction of a fine one
//!    ([`lookup::LookupTable::coarsen`]).
//!
//! ## Quick start
//!
//! ```
//! use sms_core::prelude::*;
//!
//! // A day of fake 1 Hz readings.
//! let watts: Vec<f64> = (0..86_400).map(|i| 80.0 + 40.0 * ((i / 3600) % 8) as f64).collect();
//! let history = TimeSeries::from_regular(0, 1, &watts).unwrap();
//!
//! // Learn a 16-symbol median table; encode at 15-minute resolution.
//! let codec = CodecBuilder::new()
//!     .method(SeparatorMethod::Median)
//!     .alphabet_size(16).unwrap()
//!     .window_secs(900)
//!     .train(&history)
//!     .unwrap();
//! let symbols = codec.encode(&history).unwrap();
//! assert_eq!(symbols.len(), 96);                       // 96 quarter-hours
//! assert_eq!(symbols.payload_bits(), 384);             // the paper's §2.3 figure
//! let approx = codec.decode(&symbols, SymbolSemantics::RangeMean).unwrap();
//! assert_eq!(approx.len(), 96);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod alphabet;
pub mod compression;
pub mod distance;
pub mod durable;
pub mod encoder;
pub mod engine;
pub mod error;
pub mod gateway;
pub mod horizontal;
pub mod ingest;
pub mod isax;
pub mod json;
pub mod lookup;
pub mod pipeline;
pub mod pool;
pub mod privacy;
pub mod quality;
pub mod sax;
pub mod segstore;
pub mod separators;
pub mod shard;
pub mod stats;
pub mod symbol;
pub mod telemetry;
pub mod timeseries;
pub mod utility;
pub mod vertical;
pub mod wire;

/// Convenient glob import of the main types.
pub mod prelude {
    pub use crate::alphabet::Alphabet;
    pub use crate::compression::CompressionReport;
    pub use crate::durable::{
        DurableConfig, DurableFleet, DurableStats, DurableStore, FaultPlan, FaultStorage,
        FsStorage, RecoveryReport, Storage,
    };
    pub use crate::encoder::{EncodedWindow, OnlineEncoder, SensorMessage, SensorPipeline};
    pub use crate::error::{Error, Result};
    pub use crate::gateway::{Gateway, GatewayConfig, GatewayReport, GatewayStats};
    pub use crate::horizontal::{horizontal_segmentation, reconstruct, SymbolicSeries};
    pub use crate::ingest::{FleetIngest, IngestConfig, IngestStats, MeterIngest};
    pub use crate::lookup::{LookupTable, SymbolSemantics};
    pub use crate::pipeline::{CodecBuilder, SymbolicCodec, VerticalPolicy};
    pub use crate::quality::{Policy, QualityReport, Sanitizer, SanitizerConfig};
    pub use crate::segstore::{SegmentStore, StoreStats};
    pub use crate::separators::SeparatorMethod;
    pub use crate::shard::{ShardRouter, ShardStats, ShardedFleetEngine, ShardedIngest};
    pub use crate::symbol::Symbol;
    pub use crate::timeseries::{Sample, TimeSeries, Timestamp};
    pub use crate::vertical::{aggregate_by_window, vertical_segmentation, Aggregation};
}
