//! Distances over symbolic series, including the **mixed-resolution**
//! comparison the paper's §4 highlights as the representation's key
//! flexibility: "higher resolution symbols can easily be converted to lower
//! resolution and lower resolution symbols can be compared to higher
//! resolution ones. This allows to run most of the machine learning
//! algorithms even if the symbolic time series have been encoded with
//! different resolutions, or if the resolution changed in time."
//!
//! Three distances:
//! * [`rank_l1`] — same-resolution L1 over symbol ranks (ordinal distance);
//! * [`prefix_distance`] — mixed-resolution: compare at each pair's common
//!   resolution, where overlapping (prefix-compatible) symbols count 0;
//! * [`table_distance`] — ground both symbols through a lookup table's
//!   range centers and take |Δwatts| (comparable across *different tables*).

use crate::error::{Error, Result};
use crate::horizontal::SymbolicSeries;
use crate::lookup::{LookupTable, SymbolSemantics};
use crate::symbol::Symbol;

/// Mean L1 distance between same-resolution symbol sequences (pairs beyond
/// the shorter length are ignored; errors if either is empty or resolutions
/// differ).
pub fn rank_l1(a: &SymbolicSeries, b: &SymbolicSeries) -> Result<f64> {
    if a.resolution_bits() != b.resolution_bits() {
        return Err(Error::ResolutionMismatch {
            left: a.resolution_bits(),
            right: b.resolution_bits(),
        });
    }
    let n = a.len().min(b.len());
    if n == 0 {
        return Err(Error::EmptyInput("rank_l1"));
    }
    let sum: f64 = a
        .symbols()
        .iter()
        .zip(b.symbols())
        .take(n)
        .map(|(x, y)| x.rank().abs_diff(y.rank()) as f64)
        .sum();
    Ok(sum / n as f64)
}

/// Distance between two symbols of possibly different resolutions: 0 when
/// one covers the other (their ranges overlap — the paper's "'0' being
/// equal to '01'"), else the rank gap at their common (coarser) resolution.
pub fn prefix_symbol_distance(a: Symbol, b: Symbol) -> f64 {
    if a.compatible(b) {
        return 0.0;
    }
    let common = a.resolution_bits().min(b.resolution_bits());
    let ar = a.truncate(common).expect("common ≤ own resolution").rank();
    let br = b.truncate(common).expect("common ≤ own resolution").rank();
    ar.abs_diff(br) as f64
}

/// Mean prefix distance between two symbolic series of possibly different
/// resolutions (aligned positionally; extra tail ignored).
pub fn prefix_distance(a: &SymbolicSeries, b: &SymbolicSeries) -> Result<f64> {
    let n = a.len().min(b.len());
    if n == 0 {
        return Err(Error::EmptyInput("prefix_distance"));
    }
    let sum: f64 = a
        .symbols()
        .iter()
        .zip(b.symbols())
        .take(n)
        .map(|(&x, &y)| prefix_symbol_distance(x, y))
        .sum();
    Ok(sum / n as f64)
}

/// Mean absolute watt distance between two symbolic series decoded through
/// their own lookup tables — the right comparison when the series were
/// encoded with *different tables* (e.g. two houses' per-house tables, or a
/// table before and after an adaptive rebuild).
pub fn table_distance(
    a: &SymbolicSeries,
    table_a: &LookupTable,
    b: &SymbolicSeries,
    table_b: &LookupTable,
) -> Result<f64> {
    let n = a.len().min(b.len());
    if n == 0 {
        return Err(Error::EmptyInput("table_distance"));
    }
    let mut sum = 0.0;
    for (&sa, &sb) in a.symbols().iter().zip(b.symbols()).take(n) {
        let va = table_a.decode_symbol(sa, SymbolSemantics::RangeCenter)?;
        let vb = table_b.decode_symbol(sb, SymbolSemantics::RangeCenter)?;
        sum += (va - vb).abs();
    }
    Ok(sum / n as f64)
}

/// Index of the nearest series in `candidates` to `query` under
/// [`prefix_distance`] — a building block for day-profile retrieval over
/// mixed-resolution archives.
pub fn nearest_prefix(query: &SymbolicSeries, candidates: &[SymbolicSeries]) -> Result<usize> {
    if candidates.is_empty() {
        return Err(Error::EmptyInput("nearest_prefix"));
    }
    let mut best = (f64::INFINITY, 0usize);
    for (i, c) in candidates.iter().enumerate() {
        let d = prefix_distance(query, c)?;
        if d < best.0 {
            best = (d, i);
        }
    }
    Ok(best.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::horizontal::horizontal_segmentation;
    use crate::separators::SeparatorMethod;
    use crate::timeseries::TimeSeries;

    fn series_of(ranks: &[u16], bits: u8) -> SymbolicSeries {
        let symbols: Vec<Symbol> =
            ranks.iter().map(|&r| Symbol::from_rank(r, bits).unwrap()).collect();
        SymbolicSeries::from_parts(bits, (0..ranks.len() as i64).collect(), symbols).unwrap()
    }

    #[test]
    fn rank_l1_basics() {
        let a = series_of(&[0, 1, 2, 3], 2);
        let b = series_of(&[3, 1, 0, 3], 2);
        assert_eq!(rank_l1(&a, &b).unwrap(), (3.0 + 0.0 + 2.0 + 0.0) / 4.0);
        let c = series_of(&[0], 3);
        assert!(rank_l1(&a, &c).is_err(), "resolution mismatch");
        let e = SymbolicSeries::new(2).unwrap();
        assert!(rank_l1(&a, &e).is_err(), "empty");
    }

    #[test]
    fn prefix_symbol_distance_matches_partial_order() {
        let s = |x: &str| x.parse::<Symbol>().unwrap();
        assert_eq!(prefix_symbol_distance(s("0"), s("01")), 0.0, "overlap = 0");
        assert_eq!(prefix_symbol_distance(s("00"), s("01")), 1.0);
        assert_eq!(prefix_symbol_distance(s("0"), s("11")), 1.0, "common 1-bit: |0-1|");
        assert_eq!(prefix_symbol_distance(s("000"), s("111")), 7.0);
        assert_eq!(prefix_symbol_distance(s("00"), s("110")), 3.0, "common 2-bit: |0-3|");
    }

    #[test]
    fn prefix_distance_mixed_resolutions() {
        // The §4 scenario: the archive holds 2-bit symbols, the query is
        // 4-bit (resolution changed in time). Compatible positions cost 0.
        let coarse = series_of(&[0, 1, 2, 3], 2);
        let fine = series_of(&[1, 6, 9, 13], 4); // truncate(2) = [0,1,2,3]
        assert_eq!(prefix_distance(&coarse, &fine).unwrap(), 0.0);
        let far = series_of(&[15, 0, 0, 0], 4); // truncate(2) = [3,0,0,0]
        assert!(prefix_distance(&coarse, &far).unwrap() > 1.0);
    }

    #[test]
    fn table_distance_compares_across_tables() {
        // Two houses with different scales: their per-house tables map the
        // same *rank* to different watt levels; table_distance sees that.
        let small: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        let big: Vec<f64> = (0..1000).map(|i| (i % 100) as f64 * 10.0).collect();
        let alphabet = Alphabet::with_size(4).unwrap();
        let ts = LookupTable::learn(SeparatorMethod::Median, alphabet, &small).unwrap();
        let tb = LookupTable::learn(SeparatorMethod::Median, alphabet, &big).unwrap();
        let series = TimeSeries::from_regular(0, 1, &[50.0; 8]).unwrap();
        let series_big = TimeSeries::from_regular(0, 1, &[500.0; 8]).unwrap();
        let sa = horizontal_segmentation(&series, &ts).unwrap();
        let sb = horizontal_segmentation(&series_big, &tb).unwrap();
        // Same ranks (both mid-range), so prefix distance is zero…
        assert_eq!(prefix_distance(&sa, &sb).unwrap(), 0.0);
        // …but the watt-space distance exposes the size difference.
        let d = table_distance(&sa, &ts, &sb, &tb).unwrap();
        assert!(d > 300.0, "decoded watt gap: {d}");
    }

    #[test]
    fn nearest_prefix_retrieval() {
        let query = series_of(&[0, 0, 3, 3], 2);
        let candidates = vec![
            series_of(&[3, 3, 0, 0], 2),
            series_of(&[0, 1, 3, 2], 2),
            series_of(&[2, 2, 2, 2], 2),
        ];
        assert_eq!(nearest_prefix(&query, &candidates).unwrap(), 1);
        assert!(nearest_prefix(&query, &[]).is_err());
    }
}
