//! Minimal JSON reader/writer backing the sensor→server debug wire format.
//!
//! The workspace builds offline (no serde), so the two JSON surfaces —
//! [`crate::lookup::LookupTable`] and [`crate::encoder::SensorMessage`] —
//! serialize by hand through this module. The document shapes match what
//! `serde_json` would derive (named-field objects, externally tagged enums),
//! so existing captures keep parsing.
//!
//! Numbers are written with Rust's shortest-round-trip `f64` formatting and
//! parsed with `str::parse::<f64>`, which makes `f64` fields byte-exact
//! across a round trip.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`; exact for the integers used here).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Key order is not preserved (irrelevant to JSON equality).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Parses one JSON document, rejecting trailing non-whitespace.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this wire
                            // format; map lone surrogates to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("invalid escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (content is valid UTF-8: the
                    // input is &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0b1100_0000 == 0b1000_0000) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

/// Incremental writer producing compact (no-whitespace) JSON, in the same
/// style as `serde_json::to_string`.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Whether the current nesting level already holds an element.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn elem(&mut self) {
        if let Some(has) = self.needs_comma.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    /// Opens an object (as the next value).
    pub fn begin_object(&mut self) -> &mut Self {
        self.elem();
        self.out.push('{');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.out.push('}');
        self
    }

    /// Opens an array (as the next value).
    pub fn begin_array(&mut self) -> &mut Self {
        self.elem();
        self.out.push('[');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.out.push(']');
        self
    }

    /// Writes an object key; the next write is its value.
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.elem();
        write_escaped(&mut self.out, key);
        self.out.push(':');
        // The value following a key is not a new element at this level.
        if let Some(has) = self.needs_comma.last_mut() {
            *has = false;
        }
        self
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.elem();
        write_escaped(&mut self.out, s);
        self
    }

    /// Writes a float with shortest-round-trip formatting.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.elem();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
            // Keep serde_json's convention of marking float-typed fields.
            if v.fract() == 0.0 && v.abs() < 1e17 {
                self.out.push_str(".0");
            }
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Writes an unsigned integer.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.elem();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a signed integer.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.elem();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes every float in `values` as one array value.
    pub fn f64_array(&mut self, values: &[f64]) -> &mut Self {
        self.begin_array();
        for &v in values {
            self.f64(v);
        }
        self.end_array()
    }

    /// Writes every integer in `values` as one array value.
    pub fn u64_array(&mut self, values: &[u64]) -> &mut Self {
        self.begin_array();
        for &v in values {
            self.u64(v);
        }
        self.end_array()
    }

    /// Consumes the writer, returning the document.
    pub fn finish(self) -> String {
        debug_assert!(self.needs_comma.is_empty(), "unbalanced begin/end");
        self.out
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"hi\n","d":true},"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("hi\n"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["not json", "{", "[1,", "{\"a\":}", "{\"a\":1,}", "1 2", "\"open", "{2:3}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accepts_whitespace_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , 2 ] , \"s\" : \"héllo \\u00e9\" } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("s").unwrap().as_str(), Some("héllo é"));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e300, -2.2250738585072014e-308, 123456.75] {
            let mut w = JsonWriter::new();
            w.f64(v);
            let text = w.finish();
            assert_eq!(parse(&text).unwrap().as_f64(), Some(v), "{text}");
        }
    }

    #[test]
    fn writer_produces_compact_serde_style_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name").string("a\"b");
        w.key("xs").f64_array(&[1.0, 2.5]);
        w.key("n").u64(7);
        w.key("t").i64(-3);
        w.end_object();
        assert_eq!(w.finish(), r#"{"name":"a\"b","xs":[1.0,2.5],"n":7,"t":-3}"#);
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::Number(7.0).as_u64(), Some(7));
        assert_eq!(JsonValue::Number(7.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        assert_eq!(JsonValue::String("7".into()).as_u64(), None);
    }
}
