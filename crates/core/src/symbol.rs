//! Variable-length binary symbols (paper §2, Fig. 1).
//!
//! Symbols are binary strings such as `'0'`, `'101'`, `'00101'`, built by
//! recursively halving the value range. The alphabet therefore has a
//! *partial order*: a short symbol *covers* every longer symbol that extends
//! it (`'0'` "being equal to" `'01'`, `'00'`, … in the paper's wording).
//! This is what makes mixed-resolution streams comparable (§4: "higher
//! resolution symbols can easily be converted to lower resolution and lower
//! resolution symbols can be compared to higher resolution ones").

use crate::error::{Error, Result};
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Maximum supported resolution in bits (alphabet of 2^16 symbols).
pub const MAX_RESOLUTION_BITS: u8 = 16;

/// A binary symbol: `len` bits, most significant bit first, stored in the low
/// `len` bits of `code`.
///
/// Two orders exist on symbols:
/// * within one resolution, symbols are **totally** ordered by their rank
///   (`Ord` is implemented for same-length symbols via [`Symbol::cmp_same_resolution`]);
/// * across resolutions, the **prefix partial order** applies
///   ([`Symbol::partial_cmp_prefix`]), where comparable symbols of different
///   length overlap in range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol {
    code: u16,
    len: u8,
}

impl Symbol {
    /// Creates a symbol from its rank within a `len`-bit alphabet.
    /// `rank` must be `< 2^len`.
    pub fn from_rank(rank: u16, len: u8) -> Result<Self> {
        if len == 0 || len > MAX_RESOLUTION_BITS {
            return Err(Error::InvalidResolution(len));
        }
        if len < 16 && rank >= (1u16 << len) {
            return Err(Error::InvalidParameter {
                name: "rank",
                reason: format!("rank {rank} does not fit in {len} bits"),
            });
        }
        Ok(Symbol { code: rank, len })
    }

    /// [`Symbol::from_rank`] without the per-call validation, for batch
    /// encode loops whose rank is already proven in range (a bin index of a
    /// table whose alphabet fixed `len`). Invariants are still checked in
    /// debug builds.
    #[inline]
    pub(crate) fn from_rank_unchecked(rank: u16, len: u8) -> Self {
        debug_assert!((1..=MAX_RESOLUTION_BITS).contains(&len), "invalid resolution {len}");
        debug_assert!(len == 16 || rank < (1u16 << len), "rank {rank} does not fit in {len} bits");
        Symbol { code: rank, len }
    }

    /// The rank of this symbol within its resolution (its bit pattern read as
    /// an unsigned integer). Rank 0 is the lowest value range.
    pub fn rank(self) -> u16 {
        self.code
    }

    /// Resolution in bits.
    pub fn resolution_bits(self) -> u8 {
        self.len
    }

    /// Bit `i` (0 = most significant / first character of the string form).
    pub fn bit(self, i: u8) -> bool {
        assert!(i < self.len, "bit index {i} out of range for {}-bit symbol", self.len);
        (self.code >> (self.len - 1 - i)) & 1 == 1
    }

    /// Truncates to a lower resolution (`to_bits <= len`): the paper's
    /// higher-to-lower conversion, which simply drops trailing bits because
    /// ranges were built by recursive halving.
    pub fn truncate(self, to_bits: u8) -> Result<Symbol> {
        if to_bits == 0 || to_bits > self.len {
            return Err(Error::InvalidResolution(to_bits));
        }
        Ok(Symbol { code: self.code >> (self.len - to_bits), len: to_bits })
    }

    /// The immediate parent (one bit shorter), or `None` for 1-bit symbols.
    pub fn parent(self) -> Option<Symbol> {
        (self.len > 1).then(|| Symbol { code: self.code >> 1, len: self.len - 1 })
    }

    /// The two children one bit longer (`None` at [`MAX_RESOLUTION_BITS`]).
    pub fn children(self) -> Option<(Symbol, Symbol)> {
        if self.len >= MAX_RESOLUTION_BITS {
            return None;
        }
        let left = Symbol { code: self.code << 1, len: self.len + 1 };
        let right = Symbol { code: (self.code << 1) | 1, len: self.len + 1 };
        Some((left, right))
    }

    /// Whether `self` is a (non-strict) prefix of `other`; equivalently,
    /// whether `self`'s range covers `other`'s range.
    pub fn covers(self, other: Symbol) -> bool {
        self.len <= other.len && other.code >> (other.len - self.len) == self.code
    }

    /// Whether the two symbols are *compatible* under the partial order:
    /// one covers the other (their value ranges overlap).
    pub fn compatible(self, other: Symbol) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The prefix partial order of the paper: `None` when the ranges overlap
    /// (one symbol is a prefix of the other, paper: "'0' being equal to
    /// '01', '00' and so on"), otherwise the order of their disjoint ranges.
    pub fn partial_cmp_prefix(self, other: Symbol) -> Option<Ordering> {
        if self.compatible(other) {
            if self == other {
                return Some(Ordering::Equal);
            }
            return None;
        }
        // Compare at the shorter common resolution; ranges are disjoint here.
        let common = self.len.min(other.len);
        let a = self.code >> (self.len - common);
        let b = other.code >> (other.len - common);
        Some(a.cmp(&b))
    }

    /// Total order among symbols of the *same* resolution.
    pub fn cmp_same_resolution(self, other: Symbol) -> Result<Ordering> {
        if self.len != other.len {
            return Err(Error::ResolutionMismatch { left: self.len, right: other.len });
        }
        Ok(self.code.cmp(&other.code))
    }

    /// Distance in ranks between two same-resolution symbols (used by
    /// symbol-space error metrics).
    pub fn rank_distance(self, other: Symbol) -> Result<u16> {
        if self.len != other.len {
            return Err(Error::ResolutionMismatch { left: self.len, right: other.len });
        }
        Ok(self.code.abs_diff(other.code))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            f.write_str(if self.bit(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl FromStr for Symbol {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        if s.is_empty() || s.len() > MAX_RESOLUTION_BITS as usize {
            return Err(Error::SymbolParse(s.to_string()));
        }
        let mut code: u16 = 0;
        for c in s.chars() {
            code = (code << 1)
                | match c {
                    '0' => 0,
                    '1' => 1,
                    _ => return Err(Error::SymbolParse(s.to_string())),
                };
        }
        Ok(Symbol { code, len: s.len() as u8 })
    }
}

/// Bit-packing writer for symbol streams: `len` bits per symbol, no padding
/// between symbols. This is the storage format behind the §2.3 compression
/// accounting ("16 symbols and an aggregation of 15 minutes … only 384 bit"
/// per day).
#[derive(Debug, Default, Clone)]
pub struct SymbolWriter {
    buf: Vec<u8>,
    /// Bits used in the last byte (0 ⇒ byte boundary).
    bit_pos: u8,
    bits_written: usize,
}

impl SymbolWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one symbol.
    pub fn write(&mut self, sym: Symbol) {
        for i in 0..sym.resolution_bits() {
            let bit = sym.bit(i);
            if self.bit_pos == 0 {
                self.buf.push(0);
            }
            if bit {
                let last = self.buf.last_mut().expect("just pushed");
                *last |= 1 << (7 - self.bit_pos);
            }
            self.bit_pos = (self.bit_pos + 1) % 8;
            self.bits_written += 1;
        }
    }

    /// Total payload bits written (excluding final-byte padding).
    pub fn bits_written(&self) -> usize {
        self.bits_written
    }

    /// Finishes and returns the packed bytes (last byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Reader matching [`SymbolWriter`]: decodes fixed-resolution symbols.
#[derive(Debug, Clone)]
pub struct SymbolReader<'a> {
    data: &'a [u8],
    bit_pos: usize,
    resolution_bits: u8,
}

impl<'a> SymbolReader<'a> {
    /// Reads `resolution_bits`-bit symbols from `data`.
    pub fn new(data: &'a [u8], resolution_bits: u8) -> Result<Self> {
        if resolution_bits == 0 || resolution_bits > MAX_RESOLUTION_BITS {
            return Err(Error::InvalidResolution(resolution_bits));
        }
        Ok(SymbolReader { data, bit_pos: 0, resolution_bits })
    }

    /// Reads the next symbol, or `None` when fewer than `resolution_bits`
    /// bits remain.
    pub fn read(&mut self) -> Option<Symbol> {
        let end = self.bit_pos + self.resolution_bits as usize;
        if end > self.data.len() * 8 {
            return None;
        }
        let mut code: u16 = 0;
        for i in self.bit_pos..end {
            let byte = self.data[i / 8];
            let bit = (byte >> (7 - (i % 8))) & 1;
            code = (code << 1) | bit as u16;
        }
        self.bit_pos = end;
        Some(Symbol { code, len: self.resolution_bits })
    }

    /// Drains all remaining symbols.
    pub fn read_all(&mut self) -> Vec<Symbol> {
        std::iter::from_fn(|| self.read()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0", "1", "101", "00101", "1111111111111111"] {
            assert_eq!(sym(s).to_string(), s);
        }
        assert!("".parse::<Symbol>().is_err());
        assert!("012".parse::<Symbol>().is_err());
        assert!("10101010101010101".parse::<Symbol>().is_err(), "17 bits too long");
    }

    #[test]
    fn from_rank_bounds() {
        assert_eq!(Symbol::from_rank(5, 3).unwrap().to_string(), "101");
        assert!(Symbol::from_rank(8, 3).is_err());
        assert!(Symbol::from_rank(0, 0).is_err());
        assert!(Symbol::from_rank(0, 17).is_err());
        // Full 16-bit range is representable.
        assert!(Symbol::from_rank(u16::MAX, 16).is_ok());
    }

    #[test]
    fn truncate_is_prefix() {
        let s = sym("00101");
        assert_eq!(s.truncate(3).unwrap(), sym("001"));
        assert_eq!(s.truncate(1).unwrap(), sym("0"));
        assert_eq!(s.truncate(5).unwrap(), s);
        assert!(s.truncate(6).is_err());
        assert!(s.truncate(0).is_err());
    }

    #[test]
    fn parent_children_inverse() {
        let s = sym("101");
        assert_eq!(s.parent().unwrap(), sym("10"));
        let (l, r) = s.children().unwrap();
        assert_eq!(l, sym("1010"));
        assert_eq!(r, sym("1011"));
        assert_eq!(l.parent().unwrap(), s);
        assert_eq!(r.parent().unwrap(), s);
        assert!(sym("0").parent().is_none());
    }

    #[test]
    fn covers_matches_paper_examples() {
        // Paper: "'0' being equal to '01', '00' and so on".
        assert!(sym("0").covers(sym("00")));
        assert!(sym("0").covers(sym("01")));
        assert!(sym("0").covers(sym("0")));
        assert!(!sym("0").covers(sym("10")));
        assert!(!sym("00").covers(sym("0")), "covers is directional");
        assert!(sym("0").compatible(sym("01")));
        assert!(sym("01").compatible(sym("0")));
        assert!(!sym("00").compatible(sym("01")));
    }

    #[test]
    fn prefix_partial_order() {
        use Ordering::*;
        assert_eq!(sym("0").partial_cmp_prefix(sym("0")), Some(Equal));
        assert_eq!(sym("0").partial_cmp_prefix(sym("01")), None, "overlapping ⇒ incomparable");
        assert_eq!(sym("00").partial_cmp_prefix(sym("01")), Some(Less));
        assert_eq!(sym("1").partial_cmp_prefix(sym("011")), Some(Greater));
        assert_eq!(sym("010").partial_cmp_prefix(sym("10")), Some(Less));
    }

    #[test]
    fn same_resolution_total_order() {
        assert_eq!(sym("000").cmp_same_resolution(sym("111")).unwrap(), Ordering::Less);
        assert!(sym("00").cmp_same_resolution(sym("000")).is_err());
        assert_eq!(sym("010").rank_distance(sym("110")).unwrap(), 4);
    }

    #[test]
    fn bit_indexing_msb_first() {
        let s = sym("100");
        assert!(s.bit(0));
        assert!(!s.bit(1));
        assert!(!s.bit(2));
    }

    #[test]
    fn writer_reader_roundtrip_various_resolutions() {
        for bits in [1u8, 2, 3, 4, 7, 8, 11, 16] {
            let k = 1u32 << bits;
            let symbols: Vec<Symbol> =
                (0..k.min(100)).map(|r| Symbol::from_rank(r as u16, bits).unwrap()).collect();
            let mut w = SymbolWriter::new();
            for &s in &symbols {
                w.write(s);
            }
            assert_eq!(w.bits_written(), symbols.len() * bits as usize);
            let bytes = w.into_bytes();
            let mut r = SymbolReader::new(&bytes, bits).unwrap();
            let decoded = r.read_all();
            // Padding may produce at most one extra zero symbol... it must not:
            // read() stops when fewer than `bits` bits remain, and padding is
            // < 8 bits, so spurious symbols can only appear when bits < 8 and
            // padding >= bits. Guard by truncating to the expected count.
            assert!(decoded.len() >= symbols.len());
            assert_eq!(&decoded[..symbols.len()], &symbols[..]);
        }
    }

    #[test]
    fn packed_size_matches_section_2_3() {
        // 24h at 15-minute aggregation = 96 symbols; 16-symbol alphabet =
        // 4 bits each ⇒ 384 bits = 48 bytes (paper §2.3).
        let mut w = SymbolWriter::new();
        for i in 0..96u16 {
            w.write(Symbol::from_rank(i % 16, 4).unwrap());
        }
        assert_eq!(w.bits_written(), 384);
        assert_eq!(w.into_bytes().len(), 48);
    }

    #[test]
    fn reader_rejects_bad_resolution() {
        assert!(SymbolReader::new(&[0u8], 0).is_err());
        assert!(SymbolReader::new(&[0u8], 17).is_err());
    }
}
