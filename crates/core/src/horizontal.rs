//! Horizontal segmentation (paper Definition 3) and the symbolic time-series
//! type it produces.

use crate::error::{Error, Result};
use crate::lookup::{LookupTable, SymbolSemantics};
use crate::symbol::{Symbol, SymbolReader, SymbolWriter};
use crate::timeseries::{TimeSeries, Timestamp};

/// A symbolic time series `Ŝ = {ŝ_1, ŝ_2, …}`: timestamps plus symbols, all
/// of one resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicSeries {
    resolution_bits: u8,
    timestamps: Vec<Timestamp>,
    symbols: Vec<Symbol>,
}

impl SymbolicSeries {
    /// Creates an empty series of the given resolution.
    pub fn new(resolution_bits: u8) -> Result<Self> {
        if resolution_bits == 0 || resolution_bits > crate::symbol::MAX_RESOLUTION_BITS {
            return Err(Error::InvalidResolution(resolution_bits));
        }
        Ok(SymbolicSeries { resolution_bits, timestamps: Vec::new(), symbols: Vec::new() })
    }

    /// Creates an empty series of the given resolution with pre-allocated
    /// room for `capacity` symbols.
    pub fn with_capacity(resolution_bits: u8, capacity: usize) -> Result<Self> {
        let mut s = Self::new(resolution_bits)?;
        s.timestamps.reserve(capacity);
        s.symbols.reserve(capacity);
        Ok(s)
    }

    /// Removes all symbols, keeping the allocation and resolution. Combined
    /// with [`Self::reset`] this lets worker threads reuse one output buffer
    /// across many series.
    pub fn clear(&mut self) {
        self.timestamps.clear();
        self.symbols.clear();
    }

    /// Clears the series and switches it to a (possibly different)
    /// resolution, keeping the allocations.
    pub fn reset(&mut self, resolution_bits: u8) -> Result<()> {
        if resolution_bits == 0 || resolution_bits > crate::symbol::MAX_RESOLUTION_BITS {
            return Err(Error::InvalidResolution(resolution_bits));
        }
        self.resolution_bits = resolution_bits;
        self.clear();
        Ok(())
    }

    /// Builds from parallel timestamp/symbol vectors.
    pub fn from_parts(
        resolution_bits: u8,
        timestamps: Vec<Timestamp>,
        symbols: Vec<Symbol>,
    ) -> Result<Self> {
        if timestamps.len() != symbols.len() {
            return Err(Error::InvalidParameter {
                name: "timestamps/symbols",
                reason: format!("length mismatch: {} vs {}", timestamps.len(), symbols.len()),
            });
        }
        let mut s = Self::new(resolution_bits)?;
        for (t, sym) in timestamps.into_iter().zip(symbols) {
            s.push(t, sym)?;
        }
        Ok(s)
    }

    /// Appends one `(timestamp, symbol)` pair, enforcing timestamp order and
    /// resolution consistency.
    pub fn push(&mut self, t: Timestamp, sym: Symbol) -> Result<()> {
        if sym.resolution_bits() != self.resolution_bits {
            return Err(Error::ResolutionMismatch {
                left: sym.resolution_bits(),
                right: self.resolution_bits,
            });
        }
        if let Some(&last) = self.timestamps.last() {
            if t < last {
                return Err(Error::NonMonotonicTimestamps { index: self.timestamps.len() });
            }
        }
        self.timestamps.push(t);
        self.symbols.push(sym);
        Ok(())
    }

    /// Symbol resolution in bits.
    pub fn resolution_bits(&self) -> u8 {
        self.resolution_bits
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbols in order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// The timestamps in order.
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.timestamps
    }

    /// Iterator over `(timestamp, symbol)`.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, Symbol)> + '_ {
        self.timestamps.iter().copied().zip(self.symbols.iter().copied())
    }

    /// Symbol ranks as integers (the nominal-attribute view used by the ML
    /// substrate).
    pub fn ranks(&self) -> Vec<u16> {
        self.symbols.iter().map(|s| s.rank()).collect()
    }

    /// The concatenated string form, e.g. `"000 101 110"`.
    pub fn to_string_joined(&self, sep: &str) -> String {
        self.symbols.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(sep)
    }

    /// Down-converts every symbol to a lower resolution (§4: "higher
    /// resolution symbols can easily be converted to lower resolution").
    pub fn truncate_resolution(&self, to_bits: u8) -> Result<SymbolicSeries> {
        let symbols =
            self.symbols.iter().map(|s| s.truncate(to_bits)).collect::<Result<Vec<_>>>()?;
        Ok(SymbolicSeries {
            resolution_bits: to_bits,
            timestamps: self.timestamps.clone(),
            symbols,
        })
    }

    /// Packs the symbol payload into bits (timestamps are implicit for
    /// regular streams; the wire format stores `(start, interval)` separately).
    pub fn pack_symbols(&self) -> Vec<u8> {
        let mut w = SymbolWriter::new();
        for &s in &self.symbols {
            w.write(s);
        }
        w.into_bytes()
    }

    /// Unpacks `count` symbols of `resolution_bits` from packed bytes,
    /// attaching regular timestamps `start + i·interval`.
    pub fn unpack_symbols(
        data: &[u8],
        resolution_bits: u8,
        count: usize,
        start: Timestamp,
        interval: i64,
    ) -> Result<SymbolicSeries> {
        let mut r = SymbolReader::new(data, resolution_bits)?;
        let mut out = Self::new(resolution_bits)?;
        for i in 0..count {
            let sym = r.read().ok_or_else(|| {
                Error::WireFormat(format!("expected {count} symbols, data ran out at {i}"))
            })?;
            out.push(start + i as i64 * interval, sym)?;
        }
        Ok(out)
    }

    /// Payload size in bits.
    pub fn payload_bits(&self) -> usize {
        self.len() * self.resolution_bits as usize
    }
}

/// Horizontal segmentation `H(S, L)` per Definition 3: encodes every value of
/// `series` through the lookup table, preserving timestamps.
pub fn horizontal_segmentation(series: &TimeSeries, table: &LookupTable) -> Result<SymbolicSeries> {
    let mut out = SymbolicSeries::with_capacity(table.resolution_bits(), series.len())?;
    horizontal_segmentation_into(series, table, &mut out)?;
    Ok(out)
}

/// Allocation-reusing variant of [`horizontal_segmentation`]: resets `out` to
/// the table's resolution and fills it in place.
///
/// This is the encode hot path (every fleet run funnels through here), so
/// instead of validating per push it runs three column passes that the
/// compiler can keep branch-free: a timestamp-order check, the batched
/// separator search of [`LookupTable::encode_batch_into`], and the column
/// install. Successful outputs are bit-identical to the legacy per-value
/// `push` loop, and each single defect reports the same index it did there
/// (an input carrying *both* a NaN and an out-of-order timestamp now
/// surfaces the timestamp error first).
pub fn horizontal_segmentation_into(
    series: &TimeSeries,
    table: &LookupTable,
    out: &mut SymbolicSeries,
) -> Result<()> {
    out.reset(table.resolution_bits())?;
    let samples = series.samples();
    // Same index semantics as `SymbolicSeries::push`: the reported index is
    // the output position at which the non-monotonic timestamp appeared.
    for (i, w) in samples.windows(2).enumerate() {
        if w[1].t < w[0].t {
            return Err(Error::NonMonotonicTimestamps { index: i + 1 });
        }
    }
    table.encode_samples_into(samples, &mut out.symbols)?;
    out.timestamps.extend(samples.iter().map(|s| s.t));
    Ok(())
}

/// Inverse of horizontal segmentation: maps each symbol back to a real value
/// under the chosen semantics, preserving timestamps.
pub fn reconstruct(
    symbolic: &SymbolicSeries,
    table: &LookupTable,
    semantics: SymbolSemantics,
) -> Result<TimeSeries> {
    let mut out = TimeSeries::with_capacity(symbolic.len());
    for (t, sym) in symbolic.iter() {
        out.push(t, table.decode_symbol(sym, semantics)?)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::separators::SeparatorMethod;

    fn table4() -> LookupTable {
        LookupTable::from_parts(
            SeparatorMethod::Uniform,
            Alphabet::with_size(4).unwrap(),
            vec![100.0, 200.0, 300.0],
            &[0.0, 400.0],
        )
        .unwrap()
    }

    #[test]
    fn horizontal_preserves_timestamps() {
        let s = TimeSeries::from_regular(1000, 60, &[50.0, 150.0, 250.0, 350.0]).unwrap();
        let sym = horizontal_segmentation(&s, &table4()).unwrap();
        assert_eq!(sym.timestamps(), &[1000, 1060, 1120, 1180]);
        assert_eq!(sym.to_string_joined(" "), "00 01 10 11");
        assert_eq!(sym.ranks(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn reconstruct_uses_bin_centers() {
        let s = TimeSeries::from_regular(0, 1, &[50.0, 350.0]).unwrap();
        let t = table4();
        let sym = horizontal_segmentation(&s, &t).unwrap();
        let r = reconstruct(&sym, &t, SymbolSemantics::RangeCenter).unwrap();
        assert_eq!(r.values(), vec![50.0, 350.0]);
        assert_eq!(r.timestamps(), s.timestamps());
    }

    #[test]
    fn push_validates_resolution_and_order() {
        let mut s = SymbolicSeries::new(2).unwrap();
        s.push(0, Symbol::from_rank(1, 2).unwrap()).unwrap();
        assert!(s.push(1, Symbol::from_rank(1, 3).unwrap()).is_err());
        assert!(s.push(-1, Symbol::from_rank(0, 2).unwrap()).is_err());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn from_parts_validates_lengths() {
        assert!(SymbolicSeries::from_parts(2, vec![0, 1], vec![Symbol::from_rank(0, 2).unwrap()])
            .is_err());
    }

    #[test]
    fn truncate_resolution_truncates_all() {
        let s = TimeSeries::from_regular(0, 1, &[50.0, 150.0, 250.0, 350.0]).unwrap();
        let sym = horizontal_segmentation(&s, &table4()).unwrap();
        let low = sym.truncate_resolution(1).unwrap();
        assert_eq!(low.to_string_joined(""), "0011");
        assert_eq!(low.resolution_bits(), 1);
        assert_eq!(low.timestamps(), sym.timestamps());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let s = TimeSeries::from_regular(500, 900, &[50.0, 150.0, 250.0, 350.0, 120.0]).unwrap();
        let sym = horizontal_segmentation(&s, &table4()).unwrap();
        let packed = sym.pack_symbols();
        assert_eq!(packed.len(), 2, "5 symbols × 2 bits = 10 bits = 2 bytes");
        let back = SymbolicSeries::unpack_symbols(&packed, 2, 5, 500, 900).unwrap();
        // Timestamps were regular so the roundtrip is lossless.
        assert_eq!(back.symbols(), sym.symbols());
        assert_eq!(back.timestamps(), sym.timestamps());
        assert!(SymbolicSeries::unpack_symbols(&packed, 2, 100, 0, 1).is_err());
    }

    #[test]
    fn payload_bits_counts() {
        let s = TimeSeries::from_regular(0, 1, &[50.0; 96]).unwrap();
        let t = LookupTable::from_parts(
            SeparatorMethod::Uniform,
            Alphabet::with_size(16).unwrap(),
            (1..16).map(|i| i as f64 * 100.0).collect(),
            &[],
        )
        .unwrap();
        let sym = horizontal_segmentation(&s, &t).unwrap();
        assert_eq!(sym.payload_bits(), 384, "the paper's §2.3 number");
    }
}
