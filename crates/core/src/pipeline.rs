//! End-to-end symbolic codec: vertical segmentation composed with horizontal
//! segmentation, with a builder that mirrors the paper's protocol (learn the
//! lookup table from a historical window, then encode the stream).

use crate::alphabet::Alphabet;
use crate::error::{Error, Result};
use crate::horizontal::{
    horizontal_segmentation, horizontal_segmentation_into, reconstruct, SymbolicSeries,
};
use crate::lookup::{LookupTable, SymbolSemantics};
use crate::separators::SeparatorMethod;
use crate::timeseries::TimeSeries;
use crate::vertical::{
    aggregate_by_window, aggregate_by_window_into, vertical_segmentation,
    vertical_segmentation_into, Aggregation,
};

/// The vertical-segmentation policy of a codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerticalPolicy {
    /// Definition 2: every `n` consecutive samples.
    EveryN(usize),
    /// Wall-clock windows of `window_secs`, keeping windows with at least
    /// `min_samples` samples.
    Window {
        /// Window length in seconds (e.g. 900 or 3600).
        window_secs: i64,
        /// Minimum samples for a window to be emitted.
        min_samples: usize,
    },
    /// No temporal aggregation (horizontal segmentation only).
    None,
}

/// A trained symbolic codec: apply [`SymbolicCodec::encode`] to turn a raw
/// series into symbols and [`SymbolicCodec::decode`] to approximate it back.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicCodec {
    vertical: VerticalPolicy,
    aggregation: Aggregation,
    table: LookupTable,
}

impl SymbolicCodec {
    /// Assembles a codec from parts.
    pub fn new(vertical: VerticalPolicy, aggregation: Aggregation, table: LookupTable) -> Self {
        SymbolicCodec { vertical, aggregation, table }
    }

    /// The lookup table in use.
    pub fn table(&self) -> &LookupTable {
        &self.table
    }

    /// The vertical policy in use.
    pub fn vertical_policy(&self) -> VerticalPolicy {
        self.vertical
    }

    /// The aggregation function in use.
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// Applies only the vertical stage.
    pub fn aggregate(&self, series: &TimeSeries) -> Result<TimeSeries> {
        match self.vertical {
            VerticalPolicy::EveryN(n) => vertical_segmentation(series, n, self.aggregation),
            VerticalPolicy::Window { window_secs, min_samples } => {
                aggregate_by_window(series, window_secs, self.aggregation, min_samples)
            }
            VerticalPolicy::None => Ok(series.clone()),
        }
    }

    /// Full encode: vertical then horizontal segmentation.
    pub fn encode(&self, series: &TimeSeries) -> Result<SymbolicSeries> {
        let mut scratch = TimeSeries::new();
        let mut out = SymbolicSeries::new(self.table.resolution_bits())?;
        self.encode_into(series, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-reusing encode: aggregates into `agg_scratch` and writes the
    /// symbols into `out`, clearing both first. [`Self::encode`] is this with
    /// fresh buffers, so outputs are identical; worker threads call this to
    /// amortise allocations across a fleet of series.
    pub fn encode_into(
        &self,
        series: &TimeSeries,
        agg_scratch: &mut TimeSeries,
        out: &mut SymbolicSeries,
    ) -> Result<()> {
        match self.vertical {
            VerticalPolicy::EveryN(n) => {
                vertical_segmentation_into(series, n, self.aggregation, agg_scratch)?
            }
            VerticalPolicy::Window { window_secs, min_samples } => aggregate_by_window_into(
                series,
                window_secs,
                self.aggregation,
                min_samples,
                agg_scratch,
            )?,
            VerticalPolicy::None => agg_scratch.copy_from(series),
        }
        horizontal_segmentation_into(agg_scratch, &self.table, out)
    }

    /// Column-batch encode of already-aggregated values through the table's
    /// fast path ([`LookupTable::encode_batch_into`]): clears `out` and
    /// fills it with one symbol per value, skipping the vertical stage and
    /// all timestamp bookkeeping. This is the raw-speed entry point for
    /// callers that manage their own columns (benches, re-compression).
    pub fn encode_batch_into(
        &self,
        values: &[f64],
        out: &mut Vec<crate::symbol::Symbol>,
    ) -> Result<()> {
        self.table.encode_batch_into(values, out)
    }

    /// Allocating convenience for [`Self::encode_batch_into`].
    pub fn encode_slice(&self, values: &[f64]) -> Result<Vec<crate::symbol::Symbol>> {
        self.table.encode_slice(values)
    }

    /// Decode back to (aggregated-rate) real values.
    pub fn decode(
        &self,
        symbolic: &SymbolicSeries,
        semantics: SymbolSemantics,
    ) -> Result<TimeSeries> {
        reconstruct(symbolic, &self.table, semantics)
    }

    /// Mean absolute reconstruction error of `encode∘decode` against the
    /// *aggregated* series (the information the symbols are meant to carry).
    pub fn reconstruction_mae(
        &self,
        series: &TimeSeries,
        semantics: SymbolSemantics,
    ) -> Result<f64> {
        let aggregated = self.aggregate(series)?;
        if aggregated.is_empty() {
            return Err(Error::EmptyInput("reconstruction_mae"));
        }
        let symbolic = horizontal_segmentation(&aggregated, &self.table)?;
        let decoded = self.decode(&symbolic, semantics)?;
        let n = aggregated.len() as f64;
        let mae = aggregated
            .iter()
            .zip(decoded.iter())
            .map(|((_, a), (_, d))| (a - d).abs())
            .sum::<f64>()
            / n;
        Ok(mae)
    }
}

/// Builder mirroring the paper's training protocol.
///
/// ```
/// use sms_core::pipeline::CodecBuilder;
/// use sms_core::separators::SeparatorMethod;
/// use sms_core::timeseries::TimeSeries;
///
/// let history = TimeSeries::from_regular(0, 1, &[10.0, 250.0, 40.0, 800.0, 90.0, 120.0]).unwrap();
/// let codec = CodecBuilder::new()
///     .method(SeparatorMethod::Median)
///     .alphabet_size(4).unwrap()
///     .window_secs(2)
///     .train(&history)
///     .unwrap();
/// let symbols = codec.encode(&history).unwrap();
/// assert_eq!(symbols.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct CodecBuilder {
    method: SeparatorMethod,
    alphabet: Alphabet,
    vertical: VerticalPolicy,
    aggregation: Aggregation,
    /// Whether separators are learned from the aggregated or the raw history.
    learn_on_aggregated: bool,
}

impl Default for CodecBuilder {
    fn default() -> Self {
        CodecBuilder {
            method: SeparatorMethod::Median,
            alphabet: Alphabet::with_size(16).expect("16 is a valid alphabet size"),
            vertical: VerticalPolicy::Window {
                window_secs: crate::vertical::windows::FIFTEEN_MINUTES,
                min_samples: 1,
            },
            aggregation: Aggregation::Mean,
            learn_on_aggregated: false,
        }
    }
}

impl CodecBuilder {
    /// Default configuration: median separators, 16 symbols, 15-minute mean
    /// aggregation, separators learned on raw values (as in the paper, which
    /// estimates the distribution from the raw first two days).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the separator method.
    pub fn method(mut self, method: SeparatorMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the alphabet size (`k`, a power of two).
    pub fn alphabet_size(mut self, k: usize) -> Result<Self> {
        self.alphabet = Alphabet::with_size(k)?;
        Ok(self)
    }

    /// Sets the symbol resolution in bits.
    pub fn resolution_bits(mut self, bits: u8) -> Result<Self> {
        self.alphabet = Alphabet::with_resolution(bits)?;
        Ok(self)
    }

    /// The configured symbol resolution in bits (the engine uses this to
    /// shape placeholder series for quarantined houses).
    pub fn resolution(&self) -> u8 {
        self.alphabet.resolution_bits()
    }

    /// Count-based vertical segmentation of every `n` samples.
    pub fn every_n(mut self, n: usize) -> Self {
        self.vertical = VerticalPolicy::EveryN(n);
        self
    }

    /// Wall-clock windows of `secs` seconds (min 1 sample per window).
    pub fn window_secs(mut self, secs: i64) -> Self {
        self.vertical = VerticalPolicy::Window { window_secs: secs, min_samples: 1 };
        self
    }

    /// Wall-clock windows with an explicit completeness requirement.
    pub fn window(mut self, secs: i64, min_samples: usize) -> Self {
        self.vertical = VerticalPolicy::Window { window_secs: secs, min_samples };
        self
    }

    /// Disables vertical segmentation.
    pub fn no_aggregation(mut self) -> Self {
        self.vertical = VerticalPolicy::None;
        self
    }

    /// Sets the aggregation function (default mean, per Definition 2).
    pub fn aggregation(mut self, agg: Aggregation) -> Self {
        self.aggregation = agg;
        self
    }

    /// Learn separators from the *aggregated* history instead of raw values.
    pub fn learn_on_aggregated(mut self, yes: bool) -> Self {
        self.learn_on_aggregated = yes;
        self
    }

    /// Learns the lookup table from `history` and returns the ready codec.
    pub fn train(&self, history: &TimeSeries) -> Result<SymbolicCodec> {
        if history.is_empty() {
            return Err(Error::EmptyInput("CodecBuilder::train"));
        }
        let values = self.training_values(history)?;
        self.learn_from_values(&values)
    }

    /// The values the separator learner would see for `history`: raw samples
    /// by default, or the aggregated series under
    /// [`Self::learn_on_aggregated`]. The fleet engine's shared-table mode
    /// pools these across houses before a single [`Self::learn_from_values`].
    pub fn training_values(&self, history: &TimeSeries) -> Result<Vec<f64>> {
        if self.learn_on_aggregated {
            let proto = SymbolicCodec {
                vertical: self.vertical,
                aggregation: self.aggregation,
                table: placeholder_table(),
            };
            Ok(proto.aggregate(history)?.values())
        } else {
            Ok(history.values())
        }
    }

    /// Learns the lookup table directly from a value pool (already extracted
    /// with [`Self::training_values`]) and returns the ready codec.
    pub fn learn_from_values(&self, values: &[f64]) -> Result<SymbolicCodec> {
        let table = LookupTable::learn(self.method, self.alphabet, values)?;
        Ok(SymbolicCodec { vertical: self.vertical, aggregation: self.aggregation, table })
    }

    /// Builds a codec around an externally provided table (e.g. one received
    /// over the wire, or the global all-houses table of Fig. 7).
    pub fn with_table(self, table: LookupTable) -> SymbolicCodec {
        SymbolicCodec { vertical: self.vertical, aggregation: self.aggregation, table }
    }
}

fn placeholder_table() -> LookupTable {
    LookupTable::custom(&[0.5], 0.0, 1.0).expect("static placeholder is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::SymbolSemantics;

    fn history() -> TimeSeries {
        let values: Vec<f64> = (0..2000).map(|i| 100.0 + ((i * 37) % 900) as f64).collect();
        TimeSeries::from_regular(0, 1, &values).unwrap()
    }

    #[test]
    fn builder_end_to_end() {
        let h = history();
        let codec = CodecBuilder::new()
            .method(SeparatorMethod::Median)
            .alphabet_size(8)
            .unwrap()
            .window_secs(60)
            .train(&h)
            .unwrap();
        let sym = codec.encode(&h).unwrap();
        assert_eq!(sym.len(), 2000 / 60 + 1);
        assert_eq!(sym.resolution_bits(), 3);
        let rec = codec.decode(&sym, SymbolSemantics::RangeMean).unwrap();
        assert_eq!(rec.len(), sym.len());
    }

    #[test]
    fn every_n_matches_definition_2() {
        let h = history();
        let codec = CodecBuilder::new().every_n(100).alphabet_size(4).unwrap().train(&h).unwrap();
        assert_eq!(codec.encode(&h).unwrap().len(), 20);
    }

    #[test]
    fn no_aggregation_keeps_length() {
        let h = history();
        let codec = CodecBuilder::new().no_aggregation().train(&h).unwrap();
        assert_eq!(codec.encode(&h).unwrap().len(), h.len());
    }

    #[test]
    fn reconstruction_error_shrinks_with_alphabet_size() {
        let h = history();
        let mut previous = f64::INFINITY;
        for k in [2usize, 4, 16, 64] {
            let codec = CodecBuilder::new()
                .method(SeparatorMethod::Median)
                .alphabet_size(k)
                .unwrap()
                .no_aggregation()
                .train(&h)
                .unwrap();
            let mae = codec.reconstruction_mae(&h, SymbolSemantics::RangeMean).unwrap();
            assert!(
                mae <= previous + 1e-9,
                "MAE should not increase with k: k={k} mae={mae} prev={previous}"
            );
            previous = mae;
        }
        assert!(previous < 20.0, "64 symbols over a 900-wide range should be quite accurate");
    }

    #[test]
    fn train_rejects_empty_history() {
        assert!(CodecBuilder::new().train(&TimeSeries::new()).is_err());
    }

    #[test]
    fn with_table_uses_external_table() {
        let table = LookupTable::custom(&[500.0], 0.0, 1000.0).unwrap();
        let codec = CodecBuilder::new().no_aggregation().with_table(table);
        let s = TimeSeries::from_regular(0, 1, &[100.0, 900.0]).unwrap();
        assert_eq!(codec.encode(&s).unwrap().to_string_joined(""), "01");
    }

    #[test]
    fn learn_on_aggregated_changes_table() {
        // Raw has spikes that aggregation smooths away; max-based uniform
        // separators therefore differ.
        let mut vals = vec![10.0; 600];
        vals[300] = 10_000.0;
        let h = TimeSeries::from_regular(0, 1, &vals).unwrap();
        let raw_codec =
            CodecBuilder::new().method(SeparatorMethod::Uniform).window_secs(60).train(&h).unwrap();
        let agg_codec = CodecBuilder::new()
            .method(SeparatorMethod::Uniform)
            .window_secs(60)
            .learn_on_aggregated(true)
            .train(&h)
            .unwrap();
        let raw_max = raw_codec.table().separators().last().copied().unwrap();
        let agg_max = agg_codec.table().separators().last().copied().unwrap();
        assert!(raw_max > agg_max * 10.0, "raw {raw_max} vs aggregated {agg_max}");
    }
}
