//! Time-series primitives (paper Definition 1).
//!
//! A time series is an ordered sequence of `(timestamp, value)` pairs with
//! non-decreasing timestamps. Smart-meter streams are *nominally* regular
//! (e.g. 1 Hz for REDD-style data) but contain gaps, so the representation
//! stores explicit timestamps and offers helpers for day-splitting, gap
//! detection, and coverage accounting that the paper's experiment protocol
//! relies on (only days with ≥ 20 h of data are kept, §3.1).

use crate::error::{Error, Result};

/// Unix timestamp in seconds. The paper's datasets span months at 1 Hz, so
/// `i64` seconds are plenty.
pub type Timestamp = i64;

/// Number of seconds in a day; used by the day-splitting helpers.
pub const SECONDS_PER_DAY: i64 = 86_400;

/// One measurement: `(t_i, v_i)` per Definition 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Measurement timestamp (Unix seconds).
    pub t: Timestamp,
    /// Measured value, e.g. power in watts.
    pub v: f64,
}

impl Sample {
    /// Convenience constructor.
    pub fn new(t: Timestamp, v: f64) -> Self {
        Sample { t, v }
    }
}

/// A time series `S = {s_1, s_2, ...}` with non-decreasing timestamps
/// (Definition 1: whenever `j <= i`, `t_i` is no earlier than `t_j`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { samples: Vec::new() }
    }

    /// Creates an empty series with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        TimeSeries { samples: Vec::with_capacity(n) }
    }

    /// Builds a series from raw samples, validating timestamp monotonicity
    /// and value finiteness.
    pub fn from_samples(samples: Vec<Sample>) -> Result<Self> {
        for (i, w) in samples.windows(2).enumerate() {
            if w[1].t < w[0].t {
                return Err(Error::NonMonotonicTimestamps { index: i + 1 });
            }
        }
        if let Some(i) = samples.iter().position(|s| !s.v.is_finite()) {
            return Err(Error::NonFiniteValue { index: i });
        }
        Ok(TimeSeries { samples })
    }

    /// Builds a series from raw samples **without** validating order or
    /// finiteness. This is the deliberate escape hatch for fault injection
    /// and quality tooling that must represent dirty meter readings (NaN
    /// runs, reset spikes) before they reach the sanitizer; everything
    /// downstream of [`crate::quality::Sanitizer`] may assume the invariants
    /// hold. Do not feed an unchecked dirty series straight to an encoder.
    pub fn from_samples_unchecked(samples: Vec<Sample>) -> Self {
        TimeSeries { samples }
    }

    /// Builds a regular series: `values[i]` is stamped `start + i * interval`.
    ///
    /// `interval` is in seconds and must be positive.
    pub fn from_regular(start: Timestamp, interval: i64, values: &[f64]) -> Result<Self> {
        if interval <= 0 {
            return Err(Error::InvalidParameter {
                name: "interval",
                reason: format!("must be positive, got {interval}"),
            });
        }
        if let Some(i) = values.iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue { index: i });
        }
        let samples = values
            .iter()
            .enumerate()
            .map(|(i, &v)| Sample::new(start + i as i64 * interval, v))
            .collect();
        Ok(TimeSeries { samples })
    }

    /// Removes all samples, keeping the allocation (scratch-buffer reuse in
    /// the fleet engine's hot path).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Replaces this series' contents with a copy of `other`, reusing the
    /// existing allocation where possible.
    pub fn copy_from(&mut self, other: &TimeSeries) {
        self.samples.clear();
        self.samples.extend_from_slice(&other.samples);
    }

    /// Appends a sample, enforcing non-decreasing timestamps and finite
    /// values. Dirty readings (NaN, ±inf) must go through
    /// [`crate::quality::Sanitizer`] before they can enter a series.
    pub fn push(&mut self, t: Timestamp, v: f64) -> Result<()> {
        if let Some(last) = self.samples.last() {
            if t < last.t {
                return Err(Error::NonMonotonicTimestamps { index: self.samples.len() });
            }
        }
        if !v.is_finite() {
            return Err(Error::NonFiniteValue { index: self.samples.len() });
        }
        self.samples.push(Sample::new(t, v));
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Borrow the underlying samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterator over `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, f64)> + '_ {
        self.samples.iter().map(|s| (s.t, s.v))
    }

    /// Copies the values into a vector (used by separator learners, which
    /// only need the marginal distribution).
    pub fn values(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.v).collect()
    }

    /// Copies the timestamps into a vector.
    pub fn timestamps(&self) -> Vec<Timestamp> {
        self.samples.iter().map(|s| s.t).collect()
    }

    /// First timestamp, if any.
    pub fn start(&self) -> Option<Timestamp> {
        self.samples.first().map(|s| s.t)
    }

    /// Last timestamp, if any.
    pub fn end(&self) -> Option<Timestamp> {
        self.samples.last().map(|s| s.t)
    }

    /// Minimum value. Series are NaN-free by construction — [`push`],
    /// [`from_samples`] and [`from_regular`] reject non-finite values, and
    /// only [`from_samples_unchecked`] (quality/fault-injection tooling) can
    /// bypass the invariant — so plain `f64::min` folding is exact here.
    ///
    /// [`push`]: Self::push
    /// [`from_samples`]: Self::from_samples
    /// [`from_regular`]: Self::from_regular
    /// [`from_samples_unchecked`]: Self::from_samples_unchecked
    pub fn min_value(&self) -> Option<f64> {
        self.samples.iter().map(|s| s.v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.min(v),
            })
        })
    }

    /// Maximum value.
    pub fn max_value(&self) -> Option<f64> {
        self.samples.iter().map(|s| s.v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Arithmetic mean of the values.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|s| s.v).sum::<f64>() / self.samples.len() as f64)
    }

    /// Sub-series with `from <= t < to` (half-open window).
    pub fn window(&self, from: Timestamp, to: Timestamp) -> TimeSeries {
        let lo = self.samples.partition_point(|s| s.t < from);
        let hi = self.samples.partition_point(|s| s.t < to);
        TimeSeries { samples: self.samples[lo..hi].to_vec() }
    }

    /// Sub-series containing the first `duration` seconds of data,
    /// relative to the first timestamp. Used by the paper's protocol of
    /// learning separators from "the first two days of data" (§3).
    pub fn head_duration(&self, duration: i64) -> TimeSeries {
        match self.start() {
            None => TimeSeries::new(),
            Some(t0) => self.window(t0, t0 + duration),
        }
    }

    /// Sub-series after skipping the first `duration` seconds.
    pub fn skip_duration(&self, duration: i64) -> TimeSeries {
        match self.start() {
            None => TimeSeries::new(),
            Some(t0) => self.window(t0 + duration, i64::MAX),
        }
    }

    /// Splits into calendar days (UTC midnight boundaries). Days with no
    /// samples are omitted. Returns `(day_start_timestamp, sub-series)`.
    pub fn split_days(&self) -> Vec<(Timestamp, TimeSeries)> {
        let mut out: Vec<(Timestamp, TimeSeries)> = Vec::new();
        for &s in &self.samples {
            let day = s.t.div_euclid(SECONDS_PER_DAY) * SECONDS_PER_DAY;
            match out.last_mut() {
                Some((d, ts)) if *d == day => ts.samples.push(s),
                _ => out.push((day, TimeSeries { samples: vec![s] })),
            }
        }
        out
    }

    /// Seconds of the day covered by samples, assuming the nominal sampling
    /// `interval`: each sample covers `interval` seconds. Saturates at
    /// `SECONDS_PER_DAY`. Used for the ≥ 20 h/day filter.
    pub fn coverage_seconds(&self, interval: i64) -> i64 {
        (self.samples.len() as i64 * interval).min(SECONDS_PER_DAY)
    }

    /// Detects gaps: maximal stretches where consecutive timestamps differ by
    /// more than `tolerance` seconds. Returns `(gap_start, gap_end)` pairs
    /// (exclusive of the samples that bound them).
    pub fn gaps(&self, tolerance: i64) -> Vec<(Timestamp, Timestamp)> {
        self.samples
            .windows(2)
            .filter(|w| w[1].t - w[0].t > tolerance)
            .map(|w| (w[0].t, w[1].t))
            .collect()
    }

    /// Element-wise sum of two series sharing identical timestamps; used by
    /// the paper's protocol of summing a house's two mains phases (§3:
    /// "summing the two main power time series for each house").
    ///
    /// Timestamps present in only one series are passed through unchanged, so
    /// gaps in one phase do not silently drop the other phase's data.
    pub fn merge_sum(&self, other: &TimeSeries) -> TimeSeries {
        let mut out = Vec::with_capacity(self.len().max(other.len()));
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.samples.len() && j < other.samples.len() {
            let (a, b) = (self.samples[i], other.samples[j]);
            match a.t.cmp(&b.t) {
                std::cmp::Ordering::Less => {
                    out.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(Sample::new(a.t, a.v + b.v));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.samples[i..]);
        out.extend_from_slice(&other.samples[j..]);
        TimeSeries { samples: out }
    }

    /// Consumes the series, returning the raw samples.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }
}

impl FromIterator<(Timestamp, f64)> for TimeSeries {
    /// Collects from `(t, v)` pairs. Panics in debug builds if timestamps
    /// are decreasing or values are non-finite; prefer
    /// [`TimeSeries::from_samples`] for untrusted input.
    fn from_iter<I: IntoIterator<Item = (Timestamp, f64)>>(iter: I) -> Self {
        let samples: Vec<Sample> = iter.into_iter().map(|(t, v)| Sample::new(t, v)).collect();
        debug_assert!(samples.windows(2).all(|w| w[0].t <= w[1].t));
        debug_assert!(samples.iter().all(|s| s.v.is_finite()));
        TimeSeries { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: &[f64]) -> TimeSeries {
        TimeSeries::from_regular(0, 1, values).unwrap()
    }

    #[test]
    fn from_regular_stamps_correctly() {
        let s = TimeSeries::from_regular(100, 15, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.timestamps(), vec![100, 115, 130]);
        assert_eq!(s.values(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_regular_rejects_nonpositive_interval() {
        assert!(TimeSeries::from_regular(0, 0, &[1.0]).is_err());
        assert!(TimeSeries::from_regular(0, -5, &[1.0]).is_err());
    }

    #[test]
    fn from_samples_validates_order() {
        let bad = vec![Sample::new(5, 1.0), Sample::new(3, 2.0)];
        assert_eq!(
            TimeSeries::from_samples(bad).unwrap_err(),
            Error::NonMonotonicTimestamps { index: 1 }
        );
        let ok = vec![Sample::new(3, 1.0), Sample::new(3, 2.0), Sample::new(4, 0.0)];
        assert!(TimeSeries::from_samples(ok).is_ok(), "equal timestamps are allowed");
    }

    #[test]
    fn push_enforces_order() {
        let mut s = TimeSeries::new();
        s.push(10, 1.0).unwrap();
        s.push(10, 2.0).unwrap();
        assert!(s.push(9, 3.0).is_err());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn constructors_reject_non_finite_values() {
        // Regression: NaN/inf used to slip in here and only blow up later
        // inside the encoder; the invariant is now enforced at the boundary.
        let mut s = TimeSeries::new();
        s.push(0, 1.0).unwrap();
        assert_eq!(s.push(1, f64::NAN).unwrap_err(), Error::NonFiniteValue { index: 1 });
        assert_eq!(s.push(1, f64::INFINITY).unwrap_err(), Error::NonFiniteValue { index: 1 });
        assert_eq!(s.len(), 1, "rejected samples must not be appended");

        let bad = vec![Sample::new(0, 1.0), Sample::new(1, f64::NEG_INFINITY)];
        assert_eq!(TimeSeries::from_samples(bad).unwrap_err(), Error::NonFiniteValue { index: 1 });
        assert_eq!(
            TimeSeries::from_regular(0, 1, &[1.0, f64::NAN]).unwrap_err(),
            Error::NonFiniteValue { index: 1 }
        );
    }

    #[test]
    fn unchecked_constructor_bypasses_validation() {
        // The documented escape hatch for quality/fault-injection tooling.
        let s = TimeSeries::from_samples_unchecked(vec![
            Sample::new(0, f64::NAN),
            Sample::new(1, -5.0),
        ]);
        assert_eq!(s.len(), 2);
        assert!(s.samples()[0].v.is_nan());
    }

    #[test]
    fn window_is_half_open() {
        let s = ts(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let w = s.window(1, 3);
        assert_eq!(w.values(), vec![1.0, 2.0]);
        assert_eq!(w.timestamps(), vec![1, 2]);
    }

    #[test]
    fn head_and_skip_partition_the_series() {
        let s = TimeSeries::from_regular(1000, 10, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let head = s.head_duration(20);
        let tail = s.skip_duration(20);
        assert_eq!(head.values(), vec![1.0, 2.0]);
        assert_eq!(tail.values(), vec![3.0, 4.0]);
        assert_eq!(head.len() + tail.len(), s.len());
    }

    #[test]
    fn split_days_respects_midnight() {
        let samples = vec![
            Sample::new(SECONDS_PER_DAY - 1, 1.0),
            Sample::new(SECONDS_PER_DAY, 2.0),
            Sample::new(SECONDS_PER_DAY + 1, 3.0),
        ];
        let s = TimeSeries::from_samples(samples).unwrap();
        let days = s.split_days();
        assert_eq!(days.len(), 2);
        assert_eq!(days[0].0, 0);
        assert_eq!(days[0].1.len(), 1);
        assert_eq!(days[1].0, SECONDS_PER_DAY);
        assert_eq!(days[1].1.len(), 2);
    }

    #[test]
    fn split_days_handles_negative_timestamps() {
        let s = TimeSeries::from_samples(vec![Sample::new(-1, 1.0), Sample::new(0, 2.0)]).unwrap();
        let days = s.split_days();
        assert_eq!(days.len(), 2);
        assert_eq!(days[0].0, -SECONDS_PER_DAY);
    }

    #[test]
    fn gaps_detects_missing_stretches() {
        let s = TimeSeries::from_samples(vec![
            Sample::new(0, 1.0),
            Sample::new(1, 1.0),
            Sample::new(100, 1.0),
            Sample::new(101, 1.0),
        ])
        .unwrap();
        assert_eq!(s.gaps(1), vec![(1, 100)]);
        assert_eq!(s.gaps(99), vec![]);
    }

    #[test]
    fn merge_sum_adds_matching_and_passes_through() {
        let a = TimeSeries::from_samples(vec![Sample::new(0, 1.0), Sample::new(2, 3.0)]).unwrap();
        let b = TimeSeries::from_samples(vec![
            Sample::new(0, 10.0),
            Sample::new(1, 20.0),
            Sample::new(2, 30.0),
        ])
        .unwrap();
        let m = a.merge_sum(&b);
        assert_eq!(m.timestamps(), vec![0, 1, 2]);
        assert_eq!(m.values(), vec![11.0, 20.0, 33.0]);
    }

    #[test]
    fn stats_helpers() {
        let s = ts(&[2.0, 4.0, 6.0]);
        assert_eq!(s.min_value(), Some(2.0));
        assert_eq!(s.max_value(), Some(6.0));
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(TimeSeries::new().mean(), None);
    }

    #[test]
    fn coverage_saturates() {
        let s = ts(&[0.0; 10]);
        assert_eq!(s.coverage_seconds(1), 10);
        assert_eq!(s.coverage_seconds(100_000), SECONDS_PER_DAY);
    }
}
