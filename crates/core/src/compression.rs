//! Compression-ratio accounting (paper §2.3).
//!
//! "If the original data is stored as double (64 bit) and sampled at 1 Hz,
//! we have around 680 kB of data per day. Now if we use 16 symbols and an
//! aggregation of 15 minutes, it would leave us with only 384 bit, three
//! order of magnitude lower."

use crate::error::{Error, Result};

/// Sizing report for one encoding configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionReport {
    /// Raw samples covered by the report (e.g. one day at 1 Hz = 86 400).
    pub raw_samples: u64,
    /// Bits per raw sample (64 for `f64`).
    pub bits_per_raw_sample: u32,
    /// Symbols emitted after vertical segmentation.
    pub symbols: u64,
    /// Bits per symbol (`log2 k`).
    pub bits_per_symbol: u32,
    /// One-time lookup-table wire cost in bits (amortized separately).
    pub table_bits: u64,
    /// Number of reporting periods the table cost is amortized over.
    pub amortization_periods: u64,
}

impl CompressionReport {
    /// Builds a report; `amortization_periods` ≥ 1.
    pub fn new(
        raw_samples: u64,
        bits_per_raw_sample: u32,
        symbols: u64,
        bits_per_symbol: u32,
        table_bits: u64,
        amortization_periods: u64,
    ) -> Result<Self> {
        if bits_per_raw_sample == 0 || bits_per_symbol == 0 {
            return Err(Error::InvalidParameter {
                name: "bits",
                reason: "bit widths must be positive".to_string(),
            });
        }
        if amortization_periods == 0 {
            return Err(Error::InvalidParameter {
                name: "amortization_periods",
                reason: "must be at least 1".to_string(),
            });
        }
        Ok(CompressionReport {
            raw_samples,
            bits_per_raw_sample,
            symbols,
            bits_per_symbol,
            table_bits,
            amortization_periods,
        })
    }

    /// Raw payload size in bits.
    pub fn raw_bits(&self) -> u64 {
        self.raw_samples * self.bits_per_raw_sample as u64
    }

    /// Symbolic payload size in bits, excluding the table.
    pub fn symbol_bits(&self) -> u64 {
        self.symbols * self.bits_per_symbol as u64
    }

    /// Symbolic size including the table cost amortized over
    /// `amortization_periods`.
    pub fn amortized_bits(&self) -> f64 {
        self.symbol_bits() as f64 + self.table_bits as f64 / self.amortization_periods as f64
    }

    /// Payload-only compression ratio (raw / symbolic).
    pub fn ratio(&self) -> f64 {
        self.raw_bits() as f64 / self.symbol_bits() as f64
    }

    /// Compression ratio including the amortized table cost.
    pub fn amortized_ratio(&self) -> f64 {
        self.raw_bits() as f64 / self.amortized_bits()
    }

    /// Orders of magnitude of the payload-only ratio (`log10`).
    pub fn orders_of_magnitude(&self) -> f64 {
        self.ratio().log10()
    }
}

/// The paper's worked example: one day at `sample_hz` Hz of 64-bit doubles,
/// aggregated to `window_secs` windows with an alphabet of `k` symbols.
pub fn day_report(
    sample_hz: u64,
    window_secs: u64,
    k: usize,
    table_bits: u64,
    amortization_days: u64,
) -> Result<CompressionReport> {
    if sample_hz == 0 || window_secs == 0 {
        return Err(Error::InvalidParameter {
            name: "sample_hz/window_secs",
            reason: "must be positive".to_string(),
        });
    }
    if !k.is_power_of_two() || k < 2 {
        return Err(Error::InvalidAlphabetSize(k));
    }
    let raw_samples = 86_400 * sample_hz;
    let symbols = 86_400 / window_secs;
    CompressionReport::new(
        raw_samples,
        64,
        symbols,
        k.trailing_zeros(),
        table_bits,
        amortization_days.max(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // 1 Hz doubles, 15-minute windows, 16 symbols.
        let r = day_report(1, 900, 16, 0, 1).unwrap();
        assert_eq!(r.raw_bits(), 86_400 * 64);
        assert_eq!(r.raw_bits() / 8 / 1024, 675, "≈ 680 kB of data per day");
        assert_eq!(r.symbol_bits(), 384, "the paper's 384 bit");
        assert!(r.orders_of_magnitude() >= 3.0, "three orders of magnitude lower");
        assert!((r.ratio() - 14_400.0).abs() < 1e-9);
    }

    #[test]
    fn table_cost_amortizes_away() {
        let table_bits = 5_000 * 8;
        let day1 = day_report(1, 900, 16, table_bits, 1).unwrap();
        let day365 = day_report(1, 900, 16, table_bits, 365).unwrap();
        assert!(day1.amortized_ratio() < day365.amortized_ratio());
        assert!(day365.amortized_ratio() / day365.ratio() > 0.7);
        assert!(day1.amortized_bits() > day1.symbol_bits() as f64);
    }

    #[test]
    fn ratio_scales_with_alphabet() {
        let k16 = day_report(1, 900, 16, 0, 1).unwrap();
        let k2 = day_report(1, 900, 2, 0, 1).unwrap();
        assert!((k2.ratio() / k16.ratio() - 4.0).abs() < 1e-9, "4-bit vs 1-bit symbols");
    }

    #[test]
    fn validation() {
        assert!(day_report(0, 900, 16, 0, 1).is_err());
        assert!(day_report(1, 0, 16, 0, 1).is_err());
        assert!(day_report(1, 900, 3, 0, 1).is_err());
        assert!(CompressionReport::new(1, 0, 1, 1, 0, 1).is_err());
        assert!(CompressionReport::new(1, 64, 1, 1, 0, 0).is_err());
    }
}
