//! Unified telemetry: a zero-dependency metric [`Registry`], log2-bucketed
//! [`Log2Histogram`]s, scoped [`Span`] timers, and two exporters (the
//! engine-stats JSON blocks and a Prometheus text format).
//!
//! PRs 1–4 left the crate with five hand-rolled stats blocks
//! ([`crate::engine::EngineStats`], [`crate::ingest::IngestStats`],
//! [`crate::pool::PoolStats`], [`crate::quality::QualityStats`],
//! [`crate::engine::EvalStats`]) that each invented their own counter
//! names and JSON layout. This module is the single source of truth they
//! now render through: every metric is declared once in [`CATALOG`] with
//! its JSON key, Prometheus name, type, and unit, and the blocks'
//! `to_json` output is produced by [`Registry::write_block_json`] from
//! those declarations — so the JSON shape, the Prometheus exposition, and
//! the `OBSERVABILITY.md` reference manual can never drift apart (CI
//! diffs the rendered names against the manual).
//!
//! ## Determinism contract
//!
//! The repo-wide rule — *byte-identical results at any worker count* —
//! extends to telemetry:
//!
//! * Counters and histograms only ever record **deterministic quantities**
//!   (sample counts, frame sizes, job attempts), never wall-clock. Worker
//!   shards ([`ShardSet`]) are merged in worker-index order, and since
//!   every merge is a commutative `u64` add over a deterministic multiset
//!   of observations, the merged totals are identical at 1, 2, or 8
//!   workers.
//! * Wall-clock lives only in **gauges** (`*_secs`) and **spans**, which
//!   are structurally deterministic (same paths, same call counts) but
//!   carry non-deterministic durations.
//!
//! ## Example
//!
//! ```
//! use sms_core::telemetry::Registry;
//!
//! let reg = Registry::with_catalog();
//! reg.add("sms_engine_samples_in", 86_400);
//! reg.observe("sms_ingest_frame_bytes", 512);
//! {
//!     let _root = reg.span("encode_fleet");
//!     let _child = reg.span("train"); // nests: "encode_fleet/train"
//! }
//! let text = reg.render_prometheus();
//! assert!(text.contains("sms_engine_samples_in 86400"));
//! assert!(text.contains("span=\"encode_fleet/train\""));
//! ```

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::thread::ThreadId;
use std::time::Instant;

use crate::json::JsonWriter;

/// What a metric measures and how it may be updated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic `u64` total (events, samples, bytes).
    Counter,
    /// Point-in-time `u64` level (worker counts, queue depths).
    Gauge,
    /// Point-in-time `f64` level (stage wall times, rates).
    GaugeF64,
    /// A [`Log2Histogram`] of `u64` observations.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn prometheus_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge | MetricKind::GaugeF64 => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// The declaration of one metric: where it lives in the engine-stats JSON,
/// what it is called in Prometheus output, and what it measures.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Stats block the metric belongs to (`"engine"`, `"ingest"`,
    /// `"eval"`, `"pool"`, `"quality"`).
    pub block: &'static str,
    /// Key within the block's JSON object. A dotted key (for example
    /// `"defects.non_finite"`) renders as a nested object.
    pub key: &'static str,
    /// Globally unique Prometheus metric name (`sms_<block>_<key>`).
    pub name: &'static str,
    /// How the metric is typed and updated.
    pub kind: MetricKind,
    /// Unit of the recorded value (`"samples"`, `"bytes"`, `"seconds"`…).
    pub unit: &'static str,
    /// One-line description, emitted as the Prometheus `# HELP` text.
    pub help: &'static str,
}

macro_rules! spec {
    ($block:literal, $key:literal, $name:literal, $kind:ident, $unit:literal, $help:literal) => {
        MetricSpec {
            block: $block,
            key: $key,
            name: $name,
            kind: MetricKind::$kind,
            unit: $unit,
            help: $help,
        }
    };
}

/// Every metric the crate can emit, in the exact order the legacy
/// `to_json` layouts write their keys. [`Registry::write_block_json`]
/// iterates this order, which is what keeps the five migrated stats
/// blocks byte-identical to their pre-telemetry JSON output.
pub const CATALOG: &[MetricSpec] = &[
    // --- engine -----------------------------------------------------------
    spec!(
        "engine",
        "workers",
        "sms_engine_workers",
        Gauge,
        "threads",
        "Worker threads used by the fleet engine."
    ),
    spec!(
        "engine",
        "houses",
        "sms_engine_houses",
        Gauge,
        "houses",
        "Households encoded in the run."
    ),
    spec!(
        "engine",
        "samples_in",
        "sms_engine_samples_in",
        Counter,
        "samples",
        "Raw samples consumed by the engine."
    ),
    spec!(
        "engine",
        "symbols_out",
        "sms_engine_symbols_out",
        Counter,
        "symbols",
        "Symbols produced by the engine."
    ),
    spec!(
        "engine",
        "train_secs",
        "sms_engine_train_secs",
        GaugeF64,
        "seconds",
        "Wall time of the up-front training stage."
    ),
    spec!(
        "engine",
        "encode_secs",
        "sms_engine_encode_secs",
        GaugeF64,
        "seconds",
        "Wall time of the parallel encode stage."
    ),
    spec!(
        "engine",
        "samples_per_sec",
        "sms_engine_samples_per_sec",
        GaugeF64,
        "samples/second",
        "Raw samples consumed per wall-clock second."
    ),
    spec!(
        "engine",
        "symbols_per_sec",
        "sms_engine_symbols_per_sec",
        GaugeF64,
        "symbols/second",
        "Symbols produced per wall-clock second."
    ),
    spec!(
        "engine",
        "house_samples",
        "sms_engine_house_samples",
        Histogram,
        "samples",
        "Per-house input sample counts."
    ),
    spec!(
        "engine",
        "house_symbols",
        "sms_engine_house_symbols",
        Histogram,
        "symbols",
        "Per-house output symbol counts."
    ),
    spec!(
        "engine",
        "encode_batch_values",
        "sms_engine_encode_batch_values",
        Histogram,
        "values",
        "Per-house value counts pushed through the columnar encode fast path."
    ),
    // --- ingest -----------------------------------------------------------
    spec!(
        "ingest",
        "frames_ok",
        "sms_ingest_frames_ok",
        Counter,
        "frames",
        "Frames decoded successfully."
    ),
    spec!(
        "ingest",
        "frames_corrupt",
        "sms_ingest_frames_corrupt",
        Counter,
        "frames",
        "Frames rejected with a decode error."
    ),
    spec!(
        "ingest",
        "resyncs",
        "sms_ingest_resyncs",
        Counter,
        "scans",
        "Times the decoder scanned forward to a new frame boundary."
    ),
    spec!(
        "ingest",
        "frames_oversized",
        "sms_ingest_frames_oversized",
        Counter,
        "frames",
        "Frames whose header announced a payload above the cap."
    ),
    spec!(
        "ingest",
        "bytes_in",
        "sms_ingest_bytes_in",
        Counter,
        "bytes",
        "Raw bytes fed into the gateway."
    ),
    spec!(
        "ingest",
        "bytes_decoded",
        "sms_ingest_bytes_decoded",
        Counter,
        "bytes",
        "Bytes consumed by successfully decoded frames (header + payload)."
    ),
    spec!(
        "ingest",
        "bytes_discarded",
        "sms_ingest_bytes_discarded",
        Counter,
        "bytes",
        "Bytes discarded by corruption resyncs scanning for a frame boundary."
    ),
    spec!(
        "ingest",
        "backpressure_stalls",
        "sms_ingest_backpressure_stalls",
        Counter,
        "stalls",
        "Times a downstream feed was rejected or had to back off."
    ),
    spec!(
        "ingest",
        "meters_rejected",
        "sms_ingest_meters_rejected",
        Counter,
        "chunks",
        "Chunks rejected because the meter would exceed max_meters."
    ),
    spec!(
        "ingest",
        "backlog_rejections",
        "sms_ingest_backlog_rejections",
        Counter,
        "chunks",
        "Chunks rejected because the byte backlog cap would be exceeded."
    ),
    spec!(
        "ingest",
        "decode_secs",
        "sms_ingest_decode_secs",
        GaugeF64,
        "seconds",
        "Wall time spent in wire decode (including resync scans)."
    ),
    spec!(
        "ingest",
        "feed_secs",
        "sms_ingest_feed_secs",
        GaugeF64,
        "seconds",
        "Wall time spent feeding decoded data downstream."
    ),
    spec!(
        "ingest",
        "frame_bytes",
        "sms_ingest_frame_bytes",
        Histogram,
        "bytes",
        "Wire sizes of successfully decoded frames."
    ),
    // --- eval -------------------------------------------------------------
    spec!("eval", "cells", "sms_eval_cells", Counter, "cells", "Experiment cells completed."),
    spec!("eval", "folds", "sms_eval_folds", Counter, "folds", "Cross-validation folds executed."),
    spec!(
        "eval",
        "train_secs",
        "sms_eval_train_secs",
        GaugeF64,
        "seconds",
        "Total per-fold training wall time."
    ),
    spec!(
        "eval",
        "test_secs",
        "sms_eval_test_secs",
        GaugeF64,
        "seconds",
        "Total per-fold prediction wall time."
    ),
    spec!(
        "eval",
        "workers",
        "sms_eval_workers",
        Gauge,
        "threads",
        "Worker threads used by the evaluation pool."
    ),
    spec!(
        "eval",
        "max_queue_depth",
        "sms_eval_max_queue_depth",
        Gauge,
        "jobs",
        "High-water mark of the evaluation pool's job queue."
    ),
    spec!(
        "eval",
        "fold_test_rows",
        "sms_eval_fold_test_rows",
        Histogram,
        "rows",
        "Test-set sizes of the executed cross-validation folds."
    ),
    // --- pool -------------------------------------------------------------
    spec!(
        "pool",
        "workers",
        "sms_pool_workers",
        Gauge,
        "threads",
        "Worker threads actually spawned."
    ),
    spec!("pool", "jobs", "sms_pool_jobs", Counter, "jobs", "Jobs executed."),
    spec!(
        "pool",
        "queue_capacity",
        "sms_pool_queue_capacity",
        Gauge,
        "jobs",
        "Capacity of the bounded job queue."
    ),
    spec!(
        "pool",
        "max_queue_depth",
        "sms_pool_max_queue_depth",
        Gauge,
        "jobs",
        "High-water mark of jobs enqueued but not yet claimed."
    ),
    spec!(
        "pool",
        "panics",
        "sms_pool_panics",
        Counter,
        "attempts",
        "Job attempts that panicked (caught by the supervisor)."
    ),
    spec!(
        "pool",
        "retries",
        "sms_pool_retries",
        Counter,
        "attempts",
        "Retry attempts executed after a panicking attempt."
    ),
    spec!(
        "pool",
        "gave_up",
        "sms_pool_gave_up",
        Counter,
        "jobs",
        "Jobs that exhausted every allowed attempt."
    ),
    spec!(
        "pool",
        "deadline_exceeded",
        "sms_pool_deadline_exceeded",
        Counter,
        "jobs",
        "Jobs skipped because the per-run deadline had elapsed."
    ),
    spec!(
        "pool",
        "respawns",
        "sms_pool_respawns",
        Counter,
        "workers",
        "Worker thread bodies re-armed after a crash."
    ),
    spec!(
        "pool",
        "job_attempts",
        "sms_pool_job_attempts",
        Histogram,
        "attempts",
        "Attempts needed per resolved job (1 = first try)."
    ),
    // --- quality ----------------------------------------------------------
    spec!("quality", "houses", "sms_quality_houses", Counter, "houses", "Houses sanitized."),
    spec!(
        "quality",
        "quarantined",
        "sms_quality_quarantined",
        Counter,
        "houses",
        "Houses quarantined (dirty data or exhausted retries)."
    ),
    spec!(
        "quality",
        "samples_in",
        "sms_quality_samples_in",
        Counter,
        "samples",
        "Samples examined across the fleet."
    ),
    spec!(
        "quality",
        "samples_out",
        "sms_quality_samples_out",
        Counter,
        "samples",
        "Samples surviving sanitization across the fleet."
    ),
    spec!(
        "quality",
        "defects.non_finite",
        "sms_quality_defects_non_finite",
        Counter,
        "defects",
        "NaN/infinite values seen."
    ),
    spec!(
        "quality",
        "defects.negative_power",
        "sms_quality_defects_negative_power",
        Counter,
        "defects",
        "Negative power readings seen."
    ),
    spec!(
        "quality",
        "defects.duplicate_timestamps",
        "sms_quality_defects_duplicate_timestamps",
        Counter,
        "defects",
        "Duplicated timestamps seen."
    ),
    spec!(
        "quality",
        "defects.out_of_order",
        "sms_quality_defects_out_of_order",
        Counter,
        "defects",
        "Out-of-order timestamps seen."
    ),
    spec!(
        "quality",
        "defects.gaps",
        "sms_quality_defects_gaps",
        Counter,
        "defects",
        "Gap spans seen."
    ),
    spec!(
        "quality",
        "defects.reset_spikes",
        "sms_quality_defects_reset_spikes",
        Counter,
        "defects",
        "Reset spikes seen."
    ),
    spec!(
        "quality",
        "dropped",
        "sms_quality_dropped",
        Counter,
        "samples",
        "Samples discarded across the fleet."
    ),
    spec!(
        "quality",
        "clamped",
        "sms_quality_clamped",
        Counter,
        "samples",
        "Values clamped across the fleet."
    ),
    spec!(
        "quality",
        "filled",
        "sms_quality_filled",
        Counter,
        "samples",
        "Samples repaired or synthesized by fill-forward."
    ),
    spec!(
        "quality",
        "marked_missing",
        "sms_quality_marked_missing",
        Counter,
        "spans",
        "Spans marked missing across the fleet."
    ),
    spec!(
        "quality",
        "sanitize_secs",
        "sms_quality_sanitize_secs",
        GaugeF64,
        "seconds",
        "Wall time of the sanitization pre-pass."
    ),
    spec!(
        "quality",
        "house_defects",
        "sms_quality_house_defects",
        Histogram,
        "defects",
        "Per-house defect totals found by the sanitizer."
    ),
    // --- gateway ----------------------------------------------------------
    spec!(
        "gateway",
        "connections_accepted",
        "sms_gateway_connections_accepted",
        Counter,
        "connections",
        "Meter connections accepted and handed to a session worker."
    ),
    spec!(
        "gateway",
        "connections_rejected",
        "sms_gateway_connections_rejected",
        Counter,
        "connections",
        "Connections refused at accept time (cap reached or draining)."
    ),
    spec!(
        "gateway",
        "connections_active",
        "sms_gateway_connections_active",
        Gauge,
        "connections",
        "Currently open meter sessions."
    ),
    spec!(
        "gateway",
        "auth_failures",
        "sms_gateway_auth_failures",
        Counter,
        "handshakes",
        "Handshakes presenting a wrong auth token."
    ),
    spec!(
        "gateway",
        "handshake_errors",
        "sms_gateway_handshake_errors",
        Counter,
        "handshakes",
        "Malformed handshakes (bad magic or oversized token)."
    ),
    spec!(
        "gateway",
        "rate_limit_hits",
        "sms_gateway_rate_limit_hits",
        Counter,
        "episodes",
        "Rate-limit throttle episodes (typed RateLimited errors)."
    ),
    spec!(
        "gateway",
        "quota_closed",
        "sms_gateway_quota_closed",
        Counter,
        "connections",
        "Connections closed for exceeding their byte quota."
    ),
    spec!(
        "gateway",
        "idle_closed",
        "sms_gateway_idle_closed",
        Counter,
        "connections",
        "Connections closed by the idle timeout."
    ),
    spec!(
        "gateway",
        "bytes_in",
        "sms_gateway_bytes_in",
        Counter,
        "bytes",
        "Bytes read from meter sockets (handshakes included)."
    ),
    spec!(
        "gateway",
        "frames_acked",
        "sms_gateway_frames_acked",
        Counter,
        "frames",
        "Frames decoded, committed to the fleet output, and acknowledged."
    ),
    spec!(
        "gateway",
        "drain_secs",
        "sms_gateway_drain_secs",
        GaugeF64,
        "seconds",
        "Wall time graceful shutdown spent draining in-flight sessions."
    ),
    // --- shard: consistent-hash fleet partitioning (sms_core::shard) ----
    spec!(
        "shard",
        "shards",
        "sms_shard_shards",
        Gauge,
        "shards",
        "Shards on the consistent-hash ring."
    ),
    spec!(
        "shard",
        "houses_routed",
        "sms_shard_houses_routed",
        Counter,
        "houses",
        "Houses routed through the ring across every batch."
    ),
    spec!(
        "shard",
        "cache_hits",
        "sms_shard_cache_hits",
        Counter,
        "lookups",
        "Per-shard lookup-table cache hits (training skipped)."
    ),
    spec!(
        "shard",
        "cache_misses",
        "sms_shard_cache_misses",
        Counter,
        "lookups",
        "Per-shard lookup-table cache misses (house trained)."
    ),
    spec!(
        "shard",
        "cache_evictions",
        "sms_shard_cache_evictions",
        Counter,
        "tables",
        "Tables evicted from the per-shard LRU caches."
    ),
    spec!(
        "shard",
        "max_shard_houses",
        "sms_shard_max_shard_houses",
        Gauge,
        "houses",
        "Houses on the most loaded shard (ring-balance witness)."
    ),
    spec!(
        "shard",
        "merge_wait_secs",
        "sms_shard_merge_wait_secs",
        GaugeF64,
        "seconds",
        "Wall time the deterministic merge stage spent placing results."
    ),
    // --- store: bit-packed segment store (sms_core::segstore) -----------
    spec!(
        "store",
        "segments_written",
        "sms_store_segments_written",
        Counter,
        "segments",
        "Segments appended to the store."
    ),
    spec!(
        "store",
        "symbols_written",
        "sms_store_symbols_written",
        Counter,
        "symbols",
        "Symbols appended across every segment."
    ),
    spec!(
        "store",
        "packed_bytes",
        "sms_store_packed_bytes",
        Counter,
        "bytes",
        "Bit-packed payload bytes in the store arena."
    ),
    spec!(
        "store",
        "recompressed_bytes",
        "sms_store_recompressed_bytes",
        Counter,
        "bytes",
        "Total bytes after the second-stage RLE + dictionary pass."
    ),
    spec!(
        "store",
        "reads",
        "sms_store_reads",
        Counter,
        "queries",
        "Full-resolution time-range reads served."
    ),
    spec!(
        "store",
        "truncated_reads",
        "sms_store_truncated_reads",
        Counter,
        "queries",
        "Resolution-truncating reads served (pure bit-slice, no re-decode)."
    ),
    spec!(
        "store",
        "segments_pruned",
        "sms_store_segments_pruned",
        Counter,
        "segments",
        "Segments answered from footer bounds without a payload scan."
    ),
    spec!(
        "store",
        "query_secs",
        "sms_store_query_secs",
        GaugeF64,
        "seconds",
        "Wall time spent serving store queries."
    ),
    // --- durable: WAL + checkpoint durability layer (sms_core::durable) --
    spec!(
        "durable",
        "wal_appends",
        "sms_durable_wal_appends",
        Counter,
        "records",
        "Records appended to the write-ahead log."
    ),
    spec!(
        "durable",
        "wal_bytes",
        "sms_durable_wal_bytes",
        Counter,
        "bytes",
        "Bytes appended to the write-ahead log, record headers included."
    ),
    spec!(
        "durable",
        "fsyncs",
        "sms_durable_fsyncs",
        Counter,
        "syncs",
        "Backend sync calls (WAL group commits, checkpoint/manifest/directory syncs)."
    ),
    spec!(
        "durable",
        "torn_records_dropped",
        "sms_durable_torn_records_dropped",
        Counter,
        "records",
        "Torn or corrupt WAL tail records discarded (and truncated away) during recovery."
    ),
    spec!(
        "durable",
        "checkpoints",
        "sms_durable_checkpoints",
        Counter,
        "checkpoints",
        "Atomic checkpoints committed (image synced, renamed, manifest record durable)."
    ),
    spec!(
        "durable",
        "recoveries",
        "sms_durable_recoveries",
        Counter,
        "recoveries",
        "Recoveries performed over existing on-disk state at open."
    ),
    spec!(
        "durable",
        "replayed_records",
        "sms_durable_replayed_records",
        Counter,
        "records",
        "WAL records replayed on top of a checkpoint during recovery."
    ),
    spec!(
        "durable",
        "shard_failovers",
        "sms_durable_shard_failovers",
        Counter,
        "failovers",
        "Shards marked dead after backend I/O errors, houses re-routed to successor vnodes."
    ),
    // --- adaptive ---------------------------------------------------------
    spec!(
        "adaptive",
        "rebuilds",
        "sms_adaptive_rebuilds",
        Counter,
        "rebuilds",
        "Lookup-table rebuilds triggered by the drift detector."
    ),
    spec!(
        "adaptive",
        "suppressed_hysteresis",
        "sms_adaptive_suppressed_hysteresis",
        Counter,
        "decisions",
        "Over-threshold drift readings suppressed because the detector was not re-armed."
    ),
    spec!(
        "adaptive",
        "suppressed_min_interval",
        "sms_adaptive_suppressed_min_interval",
        Counter,
        "decisions",
        "Over-threshold drift readings suppressed by the minimum rebuild interval."
    ),
    spec!(
        "adaptive",
        "epochs_shipped",
        "sms_adaptive_epochs_shipped",
        Counter,
        "epochs",
        "Epoch-versioned lookup tables shipped after drift cutover."
    ),
    spec!(
        "adaptive",
        "sketch_bytes",
        "sms_adaptive_sketch_bytes",
        Gauge,
        "bytes",
        "Bytes held by streaming quantile sketches across all drift detectors."
    ),
    spec!(
        "adaptive",
        "samples",
        "sms_adaptive_samples",
        Counter,
        "samples",
        "Raw samples folded into drift detectors."
    ),
    spec!(
        "adaptive",
        "symbols",
        "sms_adaptive_symbols",
        Counter,
        "symbols",
        "Symbols emitted by adaptive encoders."
    ),
    spec!(
        "adaptive",
        "cutover_lag",
        "sms_adaptive_cutover_lag",
        Histogram,
        "samples",
        "Samples between a suppressed over-threshold drift reading and the eventual rebuild."
    ),
];

/// Looks up a metric's [`CATALOG`] declaration by Prometheus name.
pub fn catalog_spec(name: &str) -> Option<&'static MetricSpec> {
    CATALOG.iter().find(|s| s.name == name)
}

/// Number of buckets in a [`Log2Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-layout histogram with power-of-two bucket boundaries, sized for
/// latencies in microseconds, frame sizes in bytes, and per-house counts.
///
/// Bucket `0` counts zero-valued observations; bucket `i` (for `i ≥ 1`)
/// counts values in `[2^(i-1), 2^i - 1]`; the last bucket absorbs
/// everything from `2^30` up. The layout is fixed so two histograms always
/// merge bucket-by-bucket — the property that makes per-worker shards
/// order-insensitive.
///
/// ```
/// use sms_core::telemetry::Log2Histogram;
///
/// let mut h = Log2Histogram::default();
/// h.observe(0);
/// h.observe(1);
/// h.observe(900); // 2^9 ≤ 900 < 2^10 → bucket 10
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 901);
/// assert_eq!(Log2Histogram::bucket_index(900), 10);
/// assert_eq!(h.buckets()[10], 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Log2Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0 }
    }
}

impl Log2Histogram {
    /// An empty histogram (same as `default()`, usable in `const` context).
    pub const fn new() -> Self {
        Log2Histogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0 }
    }

    /// The bucket `value` falls into: `0` for zero, otherwise
    /// `min(bit_length(value), 31)`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The largest value bucket `i` counts, or `None` for the unbounded
    /// last bucket (rendered as `+Inf` in Prometheus output).
    pub fn bucket_upper_edge(i: usize) -> Option<u64> {
        match i {
            0 => Some(0),
            _ if i < HISTOGRAM_BUCKETS - 1 => Some((1u64 << i) - 1),
            _ => None,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Adds every bucket of `other` into `self`. Merging is commutative
    /// and associative, so shard order cannot change the result.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw per-bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Writes `{"unit":…,"count":…,"sum":…,"buckets":[…]}` into `w`,
    /// trimming trailing empty buckets (the boundaries are fixed by the
    /// type, so the reader reconstructs them from the index alone).
    pub fn write_json(&self, w: &mut JsonWriter, unit: &str) {
        let used = HISTOGRAM_BUCKETS - self.buckets.iter().rev().take_while(|&&b| b == 0).count();
        w.begin_object();
        w.key("unit");
        w.string(unit);
        w.key("count");
        w.u64(self.count);
        w.key("sum");
        w.u64(self.sum);
        w.key("buckets");
        w.u64_array(&self.buckets[..used]);
        w.end_object();
    }
}

/// One metric's current value, typed per its [`MetricKind`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// `u64` total or level ([`MetricKind::Counter`] / [`MetricKind::Gauge`]).
    U64(u64),
    /// `f64` level ([`MetricKind::GaugeF64`]).
    F64(f64),
    /// Histogram state ([`MetricKind::Histogram`]), boxed to keep the
    /// common scalar variants pointer-sized.
    Histogram(Box<Log2Histogram>),
}

impl MetricValue {
    fn zero_for(kind: MetricKind) -> MetricValue {
        match kind {
            MetricKind::Counter | MetricKind::Gauge => MetricValue::U64(0),
            MetricKind::GaugeF64 => MetricValue::F64(0.0),
            MetricKind::Histogram => MetricValue::Histogram(Box::new(Log2Histogram::new())),
        }
    }
}

#[derive(Debug)]
struct Metric {
    spec: MetricSpec,
    value: MetricValue,
}

/// One span's accumulated state: full path, call count, wall seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// `/`-joined path from the root span (for example
    /// `"encode_fleet/train"`).
    pub path: String,
    /// Completed activations of this exact path.
    pub calls: u64,
    /// Wall seconds accumulated over those activations.
    pub secs: f64,
}

#[derive(Debug, Default)]
struct Inner {
    metrics: Vec<Metric>,
    by_name: HashMap<&'static str, usize>,
    spans: Vec<SpanSnapshot>,
    by_path: HashMap<String, usize>,
    stacks: HashMap<ThreadId, Vec<usize>>,
}

impl Inner {
    fn register(&mut self, spec: MetricSpec) -> usize {
        if let Some(&i) = self.by_name.get(spec.name) {
            return i;
        }
        let i = self.metrics.len();
        self.metrics.push(Metric { spec, value: MetricValue::zero_for(spec.kind) });
        self.by_name.insert(spec.name, i);
        i
    }

    fn ensure(&mut self, name: &'static str, kind: MetricKind) -> usize {
        if let Some(&i) = self.by_name.get(name) {
            return i;
        }
        let spec = catalog_spec(name).copied().unwrap_or(MetricSpec {
            block: "adhoc",
            key: name,
            name,
            kind,
            unit: "",
            help: "ad-hoc metric (not in the catalog)",
        });
        self.register(spec)
    }

    fn span_node(&mut self, path: &str) -> usize {
        if let Some(&i) = self.by_path.get(path) {
            return i;
        }
        let i = self.spans.len();
        self.spans.push(SpanSnapshot { path: path.to_string(), calls: 0, secs: 0.0 });
        self.by_path.insert(path.to_string(), i);
        i
    }
}

/// The central instrument store: typed metrics in registration order plus
/// the span tree. Cheap to create, internally synchronized (`&self`
/// everywhere), and safe to share across worker threads.
///
/// ```
/// use sms_core::telemetry::{Registry, MetricKind};
///
/// let reg = Registry::new();
/// reg.add("sms_pool_jobs", 3);
/// reg.set("sms_pool_workers", 2);
/// reg.observe("sms_pool_job_attempts", 1);
/// let snap = reg.snapshot();
/// assert_eq!(snap.len(), 3);
/// assert_eq!(snap[0].0.kind, MetricKind::Counter);
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry; metrics register lazily on first touch.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry with every [`CATALOG`] metric pre-registered at zero, so
    /// exports always expose the complete metric surface (this is what the
    /// `check_metrics_docs.sh` CI step diffs against `OBSERVABILITY.md`).
    pub fn with_catalog() -> Self {
        let reg = Registry::new();
        {
            let mut inner = reg.lock();
            for spec in CATALOG {
                inner.register(*spec);
            }
        }
        reg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means a panic unwound through a caller —
        // the counters themselves are always in a consistent state.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers `spec` (idempotent; the first registration wins).
    pub fn register(&self, spec: MetricSpec) {
        self.lock().register(spec);
    }

    /// Registers every catalog metric of `block`, in catalog order.
    pub fn register_block(&self, block: &str) {
        let mut inner = self.lock();
        for spec in CATALOG.iter().filter(|s| s.block == block) {
            inner.register(*spec);
        }
    }

    /// Adds `delta` to a counter (registers it on first touch).
    pub fn add(&self, name: &'static str, delta: u64) {
        let mut inner = self.lock();
        let i = inner.ensure(name, MetricKind::Counter);
        if let MetricValue::U64(v) = &mut inner.metrics[i].value {
            *v += delta;
        }
    }

    /// Sets a `u64` gauge (registers it on first touch).
    pub fn set(&self, name: &'static str, value: u64) {
        let mut inner = self.lock();
        let i = inner.ensure(name, MetricKind::Gauge);
        if let MetricValue::U64(v) = &mut inner.metrics[i].value {
            *v = value;
        }
    }

    /// Sets an `f64` gauge (registers it on first touch).
    pub fn set_f64(&self, name: &'static str, value: f64) {
        let mut inner = self.lock();
        let i = inner.ensure(name, MetricKind::GaugeF64);
        if let MetricValue::F64(v) = &mut inner.metrics[i].value {
            *v = value;
        }
    }

    /// Raises a `u64` gauge to `value` if it is below it.
    pub fn set_max(&self, name: &'static str, value: u64) {
        let mut inner = self.lock();
        let i = inner.ensure(name, MetricKind::Gauge);
        if let MetricValue::U64(v) = &mut inner.metrics[i].value {
            *v = (*v).max(value);
        }
    }

    /// Records one histogram observation (registers it on first touch).
    pub fn observe(&self, name: &'static str, value: u64) {
        let mut inner = self.lock();
        let i = inner.ensure(name, MetricKind::Histogram);
        if let MetricValue::Histogram(h) = &mut inner.metrics[i].value {
            h.observe(value);
        }
    }

    /// Merges a whole histogram into the named metric.
    pub fn merge_histogram(&self, name: &'static str, hist: &Log2Histogram) {
        let mut inner = self.lock();
        let i = inner.ensure(name, MetricKind::Histogram);
        if let MetricValue::Histogram(h) = &mut inner.metrics[i].value {
            h.merge(hist);
        }
    }

    /// Folds one worker [`Shard`] into the registry. Call in worker-index
    /// order; every fold is a commutative add, so the merged totals are
    /// independent of worker count and scheduling.
    pub fn absorb_shard(&self, shard: &Shard) {
        for (name, delta) in &shard.counters {
            self.add(name, *delta);
        }
        for (name, hist) in &shard.hists {
            self.merge_histogram(name, hist);
        }
    }

    /// Reads one metric's current value, if registered.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        let inner = self.lock();
        inner.by_name.get(name).map(|&i| inner.metrics[i].value.clone())
    }

    /// Every registered metric `(spec, value)`, in registration order.
    pub fn snapshot(&self) -> Vec<(MetricSpec, MetricValue)> {
        self.lock().metrics.iter().map(|m| (m.spec, m.value.clone())).collect()
    }

    // --- spans ------------------------------------------------------------

    /// Opens a scoped timer. The span's path nests under whatever span is
    /// currently open **on this thread**; dropping the guard records one
    /// call plus the elapsed wall time and pops the span — including
    /// during a panic unwind, so a panicking job cannot leave the stack
    /// corrupted for the jobs that follow it on the same worker
    /// (see the supervised [`crate::pool`]).
    ///
    /// ```
    /// use sms_core::telemetry::Registry;
    ///
    /// let reg = Registry::new();
    /// {
    ///     let _a = reg.span("encode");
    ///     let _b = reg.span("train");
    /// }
    /// let paths: Vec<String> =
    ///     reg.span_snapshots().into_iter().map(|s| s.path).collect();
    /// assert_eq!(paths, ["encode", "encode/train"]);
    /// ```
    pub fn span(&self, name: &str) -> Span<'_> {
        let thread = std::thread::current().id();
        let mut inner = self.lock();
        let top = {
            let stack = inner.stacks.entry(thread).or_default();
            (stack.len(), stack.last().copied())
        };
        let (saved_depth, parent_node) = top;
        let parent = parent_node.map(|i| inner.spans[i].path.clone());
        let path = match parent {
            Some(p) => format!("{p}/{name}"),
            None => name.to_string(),
        };
        let node = inner.span_node(&path);
        inner.stacks.entry(thread).or_default().push(node);
        Span { registry: self, thread, node, saved_depth, start: Instant::now() }
    }

    /// Merges an already-finished span (for example one captured inside
    /// [`crate::engine::EngineStats`]) into this registry's span tree.
    pub fn record_span(&self, path: &str, calls: u64, secs: f64) {
        let mut inner = self.lock();
        let i = inner.span_node(path);
        inner.spans[i].calls += calls;
        inner.spans[i].secs += secs;
    }

    /// Every span recorded so far, sorted by path for deterministic
    /// output.
    pub fn span_snapshots(&self) -> Vec<SpanSnapshot> {
        let mut spans = self.lock().spans.clone();
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        spans
    }

    // --- exporters --------------------------------------------------------

    /// Writes the named block's scalar metrics as `"key":value` fields
    /// into an **already open** JSON object, in catalog order, nesting
    /// dotted keys. Histograms are skipped here (they render through
    /// [`write_histograms_json`](Self::write_histograms_json)), which is
    /// exactly what keeps the migrated blocks' JSON byte-identical to
    /// their hand-rolled predecessors.
    pub fn write_block_fields(&self, w: &mut JsonWriter, block: &str) {
        let inner = self.lock();
        let mut open_group: Option<&str> = None;
        for m in inner.metrics.iter().filter(|m| m.spec.block == block) {
            if matches!(m.spec.kind, MetricKind::Histogram) {
                continue;
            }
            match m.spec.key.split_once('.') {
                Some((group, leaf)) => {
                    if open_group != Some(group) {
                        if open_group.is_some() {
                            w.end_object();
                        }
                        w.key(group);
                        w.begin_object();
                        open_group = Some(group);
                    }
                    w.key(leaf);
                    write_value(w, &m.value);
                }
                None => {
                    if open_group.take().is_some() {
                        w.end_object();
                    }
                    w.key(m.spec.key);
                    write_value(w, &m.value);
                }
            }
        }
        if open_group.is_some() {
            w.end_object();
        }
    }

    /// Writes the named block as one complete JSON object.
    pub fn write_block_json(&self, w: &mut JsonWriter, block: &str) {
        w.begin_object();
        self.write_block_fields(w, block);
        w.end_object();
    }

    /// Writes every registered histogram as one JSON object keyed by
    /// Prometheus name, in registration order.
    pub fn write_histograms_json(&self, w: &mut JsonWriter) {
        let inner = self.lock();
        w.begin_object();
        for m in &inner.metrics {
            if let MetricValue::Histogram(h) = &m.value {
                w.key(m.spec.name);
                h.write_json(w, m.spec.unit);
            }
        }
        w.end_object();
    }

    /// Writes the span tree as a JSON array of
    /// `{"path":…,"calls":…,"secs":…}` objects, sorted by path.
    pub fn write_spans_json(&self, w: &mut JsonWriter) {
        w.begin_array();
        for s in self.span_snapshots() {
            w.begin_object();
            w.key("path");
            w.string(&s.path);
            w.key("calls");
            w.u64(s.calls);
            w.key("secs");
            w.f64(s.secs);
            w.end_object();
        }
        w.end_array();
    }

    /// Renders every metric and span in the Prometheus text exposition
    /// format (`# HELP` / `# TYPE` comments, cumulative histogram buckets
    /// with `le` labels, spans as `sms_span_seconds{span="…"}` /
    /// `sms_span_calls{span="…"}` series).
    ///
    /// ```
    /// use sms_core::telemetry::Registry;
    ///
    /// let reg = Registry::new();
    /// reg.observe("sms_ingest_frame_bytes", 5);
    /// let text = reg.render_prometheus();
    /// assert!(text.contains("# TYPE sms_ingest_frame_bytes histogram"));
    /// assert!(text.contains("sms_ingest_frame_bytes_bucket{le=\"7\"} 1"));
    /// assert!(text.contains("sms_ingest_frame_bytes_count 1"));
    /// ```
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let snapshot = self.snapshot();
        for (spec, value) in &snapshot {
            let _ = writeln!(out, "# HELP {} {}", spec.name, spec.help);
            let _ = writeln!(out, "# TYPE {} {}", spec.name, spec.kind.prometheus_type());
            match value {
                MetricValue::U64(v) => {
                    let _ = writeln!(out, "{} {}", spec.name, v);
                }
                MetricValue::F64(v) => {
                    let _ = writeln!(out, "{} {}", spec.name, fmt_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, b) in h.buckets().iter().enumerate() {
                        cumulative += b;
                        match Log2Histogram::bucket_upper_edge(i) {
                            Some(le) => {
                                let _ = writeln!(
                                    out,
                                    "{}_bucket{{le=\"{}\"}} {}",
                                    spec.name, le, cumulative
                                );
                            }
                            None => {
                                let _ = writeln!(
                                    out,
                                    "{}_bucket{{le=\"+Inf\"}} {}",
                                    spec.name, cumulative
                                );
                            }
                        }
                    }
                    let _ = writeln!(out, "{}_sum {}", spec.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", spec.name, h.count());
                }
            }
        }
        let spans = self.span_snapshots();
        if !spans.is_empty() {
            let _ =
                writeln!(out, "# HELP sms_span_seconds Wall seconds accumulated per span path.");
            let _ = writeln!(out, "# TYPE sms_span_seconds counter");
            for s in &spans {
                let _ = writeln!(
                    out,
                    "sms_span_seconds{{span=\"{}\"}} {}",
                    escape_label(&s.path),
                    fmt_f64(s.secs)
                );
            }
            let _ = writeln!(out, "# HELP sms_span_calls Completed activations per span path.");
            let _ = writeln!(out, "# TYPE sms_span_calls counter");
            for s in &spans {
                let _ = writeln!(
                    out,
                    "sms_span_calls{{span=\"{}\"}} {}",
                    escape_label(&s.path),
                    s.calls
                );
            }
        }
        out
    }
}

/// RAII guard for one span activation; see [`Registry::span`].
#[derive(Debug)]
pub struct Span<'a> {
    registry: &'a Registry,
    thread: ThreadId,
    node: usize,
    saved_depth: usize,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        let mut inner = self.registry.lock();
        inner.spans[self.node].calls += 1;
        inner.spans[self.node].secs += secs;
        if let Some(stack) = inner.stacks.get_mut(&self.thread) {
            // Truncating (not popping) self-heals the stack when children
            // leaked past their parent — the panic-unwind case.
            stack.truncate(self.saved_depth);
        }
    }
}

/// One worker's private metric shard: plain owned counters and histograms
/// with no locking against other workers. Collect shards with
/// [`ShardSet`] and fold them into a [`Registry`] (or a stats block) in
/// worker-index order.
#[derive(Debug, Clone, Default)]
pub struct Shard {
    counters: Vec<(&'static str, u64)>,
    hists: Vec<(&'static str, Log2Histogram)>,
}

impl Shard {
    /// An empty shard.
    pub fn new() -> Self {
        Shard::default()
    }

    /// Adds `delta` to this shard's counter `name`.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((name, delta)),
        }
    }

    /// Records one observation into this shard's histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        match self.hists.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => h.observe(value),
            None => {
                let mut h = Log2Histogram::new();
                h.observe(value);
                self.hists.push((name, h));
            }
        }
    }

    /// This shard's counter total for `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v)
    }

    /// This shard's histogram for `name` (empty if never touched).
    pub fn histogram(&self, name: &str) -> Log2Histogram {
        self.hists.iter().find(|(n, _)| *n == name).map_or_else(Log2Histogram::new, |(_, h)| *h)
    }

    /// Folds `other` into `self` (commutative adds only).
    pub fn merge(&mut self, other: &Shard) {
        for (name, delta) in &other.counters {
            self.add(name, *delta);
        }
        for (name, hist) in &other.hists {
            match self.hists.iter_mut().find(|(n, _)| n == name) {
                Some((_, h)) => h.merge(hist),
                None => self.hists.push((name, *hist)),
            }
        }
    }
}

/// A fixed set of per-worker [`Shard`]s. Worker `w` records through
/// `with(w, …)` — each shard has its own lock, so workers never contend
/// with each other — and the coordinator folds the shards together **in
/// worker-index order** with [`merged`](Self::merged).
///
/// ```
/// use sms_core::telemetry::ShardSet;
///
/// let shards = ShardSet::new(2);
/// shards.with(0, |s| s.observe("sms_pool_job_attempts", 1));
/// shards.with(1, |s| s.observe("sms_pool_job_attempts", 3));
/// let merged = shards.merged();
/// assert_eq!(merged.histogram("sms_pool_job_attempts").count(), 2);
/// ```
#[derive(Debug)]
pub struct ShardSet {
    shards: Vec<Mutex<Shard>>,
}

impl ShardSet {
    /// `workers` empty shards.
    pub fn new(workers: usize) -> Self {
        ShardSet { shards: (0..workers).map(|_| Mutex::new(Shard::new())).collect() }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the set has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Runs `f` with exclusive access to worker `w`'s shard.
    pub fn with<R>(&self, w: usize, f: impl FnOnce(&mut Shard) -> R) -> R {
        let mut shard = self.shards[w].lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut shard)
    }

    /// Folds every shard, **in index order**, into one merged [`Shard`].
    pub fn merged(&self) -> Shard {
        let mut out = Shard::new();
        for s in &self.shards {
            out.merge(&s.lock().unwrap_or_else(PoisonError::into_inner));
        }
        out
    }
}

/// Renders the full `--metrics` JSON document: experiment name, every
/// registered block's scalar metrics, all histograms, and the span tree.
/// The output parses with [`crate::json::parse`] and always contains the
/// top-level keys `experiment`, `metrics`, `histograms`, `spans`.
///
/// ```
/// use sms_core::telemetry::{render_metrics_json, Registry};
///
/// let reg = Registry::with_catalog();
/// reg.add("sms_engine_samples_in", 7);
/// let doc = render_metrics_json(&reg, "fleet");
/// let parsed = sms_core::json::parse(&doc).unwrap();
/// assert_eq!(parsed.get("experiment").and_then(|v| v.as_str()), Some("fleet"));
/// let engine = parsed.get("metrics").and_then(|m| m.get("engine")).unwrap();
/// assert_eq!(engine.get("samples_in").and_then(|v| v.as_u64()), Some(7));
/// ```
pub fn render_metrics_json(reg: &Registry, experiment: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("experiment");
    w.string(experiment);
    w.key("metrics");
    w.begin_object();
    let mut blocks: Vec<&'static str> = Vec::new();
    for (spec, _) in reg.snapshot() {
        if !blocks.contains(&spec.block) {
            blocks.push(spec.block);
        }
    }
    for block in blocks {
        w.key(block);
        reg.write_block_json(&mut w, block);
    }
    w.end_object();
    w.key("histograms");
    reg.write_histograms_json(&mut w);
    w.key("spans");
    reg.write_spans_json(&mut w);
    w.end_object();
    w.finish()
}

fn write_value(w: &mut JsonWriter, value: &MetricValue) {
    match value {
        MetricValue::U64(v) => {
            w.u64(*v);
        }
        MetricValue::F64(v) => {
            w.f64(*v);
        }
        MetricValue::Histogram(_) => unreachable!("histograms render separately"),
    }
}

/// Formats an `f64` like [`JsonWriter::f64`] (shortest round-trip, `.0`
/// marker on whole numbers) so JSON and Prometheus agree byte-for-byte.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return if v.is_nan() {
            "NaN".to_string()
        } else if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        };
    }
    let mut s = format!("{v}");
    if v.fract() == 0.0 && v.abs() < 1e17 {
        s.push_str(".0");
    }
    s
}

fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(1023), 10);
        assert_eq!(Log2Histogram::bucket_index(1024), 11);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Edges agree with the index rule: a bucket's upper edge maps into
        // that bucket, edge + 1 maps into the next.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let le = Log2Histogram::bucket_upper_edge(i).unwrap();
            assert_eq!(Log2Histogram::bucket_index(le), i);
            assert_eq!(Log2Histogram::bucket_index(le + 1), i + 1);
        }
    }

    #[test]
    fn histogram_merge_is_order_insensitive() {
        let values = [0u64, 1, 7, 900, 4096, 1 << 40];
        let mut serial = Log2Histogram::new();
        for v in values {
            serial.observe(v);
        }
        // Split across 3 "workers" two different ways; merge both orders.
        let mut a = [Log2Histogram::new(), Log2Histogram::new(), Log2Histogram::new()];
        for (i, v) in values.iter().enumerate() {
            a[i % 3].observe(*v);
        }
        let mut fwd = Log2Histogram::new();
        for h in &a {
            fwd.merge(h);
        }
        let mut rev = Log2Histogram::new();
        for h in a.iter().rev() {
            rev.merge(h);
        }
        assert_eq!(fwd, serial);
        assert_eq!(rev, serial);
    }

    #[test]
    fn catalog_names_are_unique_and_follow_the_naming_rule() {
        let mut seen = std::collections::HashSet::new();
        for spec in CATALOG {
            assert!(seen.insert(spec.name), "duplicate metric name {}", spec.name);
            let expected = format!("sms_{}_{}", spec.block, spec.key.replace('.', "_"));
            assert_eq!(spec.name, expected, "name must be sms_<block>_<key>");
        }
    }

    #[test]
    fn block_json_nests_dotted_keys() {
        let reg = Registry::new();
        reg.register_block("quality");
        reg.add("sms_quality_defects_gaps", 3);
        reg.add("sms_quality_houses", 2);
        let mut w = JsonWriter::new();
        reg.write_block_json(&mut w, "quality");
        let json = w.finish();
        let parsed = crate::json::parse(&json).unwrap();
        assert_eq!(parsed.get("houses").and_then(|v| v.as_u64()), Some(2));
        let defects = parsed.get("defects").expect("nested defects object");
        assert_eq!(defects.get("gaps").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(defects.get("non_finite").and_then(|v| v.as_u64()), Some(0));
    }

    #[test]
    fn spans_nest_per_thread_and_self_heal_after_panics() {
        let reg = Registry::new();
        {
            let _root = reg.span("root");
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _child = reg.span("child");
                panic!("boom");
            }));
            // The panicked child's guard dropped during unwind; a new span
            // must nest under root, not under the dead child.
            let _next = reg.span("next");
        }
        let paths: Vec<String> = reg.span_snapshots().into_iter().map(|s| s.path).collect();
        assert_eq!(paths, ["root", "root/child", "root/next"]);
    }

    #[test]
    fn shard_set_merges_in_index_order_to_the_same_totals() {
        let shards = ShardSet::new(4);
        for (w, v) in [(0usize, 5u64), (1, 9), (2, 5), (3, 1)] {
            shards.with(w, |s| {
                s.add("jobs", 1);
                s.observe("sizes", v);
            });
        }
        let merged = shards.merged();
        assert_eq!(merged.counter("jobs"), 4);
        let mut expected = Log2Histogram::new();
        for v in [5u64, 9, 5, 1] {
            expected.observe(v);
        }
        assert_eq!(merged.histogram("sizes"), expected);
    }

    #[test]
    fn prometheus_output_is_stable_and_parseable() {
        let build = || {
            let reg = Registry::with_catalog();
            reg.add("sms_engine_samples_in", 1234);
            reg.set_f64("sms_engine_train_secs", 1.5);
            reg.observe("sms_pool_job_attempts", 1);
            reg.record_span("fleet/encode", 2, 0.25);
            reg
        };
        let a = build().render_prometheus();
        let b = build().render_prometheus();
        assert_eq!(a, b, "same inputs must render identically");
        for line in a.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment: {line}"
                );
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("name value");
            assert!(
                !series.is_empty() && !series.contains(' ') || series.contains("{"),
                "bad series: {line}"
            );
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "unparseable value in: {line}"
            );
        }
        assert!(a.contains("sms_engine_samples_in 1234"));
        assert!(a.contains("sms_engine_train_secs 1.5"));
        assert!(a.contains("sms_span_calls{span=\"fleet/encode\"} 2"));
    }

    #[test]
    fn metrics_json_has_documented_top_level_keys() {
        let reg = Registry::with_catalog();
        reg.add("sms_ingest_bytes_in", 10);
        let doc = render_metrics_json(&reg, "ingest");
        let parsed = crate::json::parse(&doc).unwrap();
        for key in ["experiment", "metrics", "histograms", "spans"] {
            assert!(parsed.get(key).is_some(), "missing {key} in {doc}");
        }
        for block in ["engine", "ingest", "eval", "pool", "quality"] {
            assert!(
                parsed.get("metrics").and_then(|m| m.get(block)).is_some(),
                "missing block {block}"
            );
        }
    }
}
