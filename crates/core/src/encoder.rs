//! Online (streaming) conversion, the sensor side of the paper's
//! architecture (§2: "the lookup table is built once at the sensor level and
//! then sent to the aggregation server before starting to send the symbolic
//! data").
//!
//! [`OnlineEncoder`] turns a stream of raw samples into a stream of symbols
//! one window at a time; [`SensorPipeline`] adds the training phase and the
//! wire protocol ([`SensorMessage`]).

use crate::alphabet::Alphabet;
use crate::error::{Error, Result};
use crate::json::{self, JsonValue, JsonWriter};
use crate::lookup::LookupTable;
use crate::separators::{SeparatorMethod, StreamingLearner};
use crate::symbol::Symbol;
use crate::timeseries::Timestamp;
use crate::vertical::Aggregation;

/// Streaming vertical + horizontal segmentation with a fixed, pre-trained
/// lookup table. Feed samples in timestamp order; a symbol is emitted every
/// time a wall-clock window closes.
#[derive(Debug, Clone)]
pub struct OnlineEncoder {
    table: LookupTable,
    window_secs: i64,
    aggregation: Aggregation,
    min_samples: usize,
    // Current window state.
    window_start: Option<Timestamp>,
    count: usize,
    sum: f64,
    min: f64,
    max: f64,
    first: f64,
    last: f64,
}

/// One emitted symbol with the window it summarizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedWindow {
    /// Start of the closed window.
    pub window_start: Timestamp,
    /// The symbol summarizing the window.
    pub symbol: Symbol,
    /// Number of raw samples aggregated into the symbol.
    pub samples: u32,
}

impl OnlineEncoder {
    /// Creates an encoder emitting one symbol per `window_secs` window.
    pub fn new(table: LookupTable, window_secs: i64, aggregation: Aggregation) -> Result<Self> {
        if window_secs <= 0 {
            return Err(Error::InvalidParameter {
                name: "window_secs",
                reason: format!("must be positive, got {window_secs}"),
            });
        }
        Ok(OnlineEncoder {
            table,
            window_secs,
            aggregation,
            min_samples: 1,
            window_start: None,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            first: 0.0,
            last: 0.0,
        })
    }

    /// Requires at least `n` samples for a window to emit a symbol
    /// (sparser windows are dropped as gaps).
    pub fn with_min_samples(mut self, n: usize) -> Self {
        self.min_samples = n.max(1);
        self
    }

    /// The lookup table in use.
    pub fn table(&self) -> &LookupTable {
        &self.table
    }

    /// Replaces the lookup table (used by the adaptive encoder when the
    /// distribution drifts, §4).
    pub fn set_table(&mut self, table: LookupTable) {
        self.table = table;
    }

    fn aggregate_current(&self) -> f64 {
        match self.aggregation {
            Aggregation::Mean => self.sum / self.count as f64,
            Aggregation::Sum => self.sum,
            Aggregation::Min => self.min,
            Aggregation::Max => self.max,
            Aggregation::First => self.first,
            Aggregation::Last => self.last,
        }
    }

    fn close_window(&mut self) -> Option<EncodedWindow> {
        let start = self.window_start?;
        let out = (self.count >= self.min_samples).then(|| EncodedWindow {
            window_start: start,
            // `push` rejects non-finite samples, so the aggregate can
            // overflow to ±∞ (which encodes to an outer bin) but can never
            // be NaN — the only value `encode_value` refuses.
            symbol: self
                .table
                .encode_value(self.aggregate_current())
                .expect("aggregate of finite samples is never NaN"),
            samples: self.count as u32,
        });
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        out
    }

    /// Feeds one sample. Returns the symbol of the *previous* window when
    /// `t` crosses a window boundary (possibly none if that window was too
    /// sparse).
    pub fn push(&mut self, t: Timestamp, v: f64) -> Result<Option<EncodedWindow>> {
        if !v.is_finite() {
            return Err(Error::InvalidParameter {
                name: "v",
                reason: format!("must be finite, got {v}"),
            });
        }
        let start = t.div_euclid(self.window_secs) * self.window_secs;
        let emitted = match self.window_start {
            Some(s) if s == start => None,
            Some(s) => {
                if start < s {
                    return Err(Error::NonMonotonicTimestamps { index: 0 });
                }
                let e = self.close_window();
                self.window_start = Some(start);
                e
            }
            None => {
                self.window_start = Some(start);
                None
            }
        };
        if self.count == 0 {
            self.first = v;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.last = v;
        Ok(emitted)
    }

    /// Flushes the open window (e.g. at end of stream).
    pub fn finish(&mut self) -> Option<EncodedWindow> {
        let e = self.close_window();
        self.window_start = None;
        e
    }
}

/// Wire messages from sensor to aggregation server.
///
/// The size skew between variants is deliberate: a table (which now carries
/// its inline 32-slot `FlatSeparators`) is a rare control message built on
/// the stack, handed to the wire encoder and dropped — messages are never
/// stored in bulk, so boxing would buy nothing and cost an allocation on
/// the (re)issue path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum SensorMessage {
    /// A (re)issued lookup table; subsequent symbols use it.
    Table(LookupTable),
    /// One encoded window.
    Window(EncodedWindow),
    /// An epoch-versioned lookup table, shipped when the adaptive path cuts
    /// over after drift. The epoch is a per-meter monotonic version: stored
    /// segments record which epoch encoded them, so old epochs remain
    /// decodable after a cutover. Epoch 0 is reserved for the pre-drift
    /// table implied by [`SensorMessage::Table`].
    EpochTable {
        /// Monotonic per-meter table version (first cutover ships epoch 1).
        epoch: u32,
        /// The rebuilt table taking effect at this epoch.
        table: LookupTable,
    },
}

impl SensorMessage {
    /// JSON wire encoding: externally tagged, `{"Table":{…}}`,
    /// `{"Window":{…}}` (the shape serde's derive produced before the
    /// offline rewrite, so old captures keep parsing) or
    /// `{"EpochTable":{"epoch":N,"table":{…}}}`.
    pub fn to_json(&self) -> Result<String> {
        let mut w = JsonWriter::new();
        w.begin_object();
        match self {
            SensorMessage::Table(t) => {
                w.key("Table");
                t.write_json(&mut w);
            }
            SensorMessage::EpochTable { epoch, table } => {
                w.key("EpochTable").begin_object();
                w.key("epoch").u64(*epoch as u64);
                w.key("table");
                table.write_json(&mut w);
                w.end_object();
            }
            SensorMessage::Window(win) => {
                w.key("Window").begin_object();
                w.key("window_start").i64(win.window_start);
                w.key("symbol").begin_object();
                w.key("code").u64(win.symbol.rank() as u64);
                w.key("len").u64(win.symbol.resolution_bits() as u64);
                w.end_object();
                w.key("samples").u64(win.samples as u64);
                w.end_object();
            }
        }
        w.end_object();
        Ok(w.finish())
    }

    /// JSON wire decoding.
    pub fn from_json(s: &str) -> Result<Self> {
        let doc = json::parse(s).map_err(Error::Serde)?;
        if let Some(table) = doc.get("Table") {
            return Ok(SensorMessage::Table(LookupTable::from_json_value(table)?));
        }
        if let Some(et) = doc.get("EpochTable") {
            let epoch = et
                .get("epoch")
                .and_then(JsonValue::as_u64)
                .filter(|&e| e <= u32::MAX as u64)
                .ok_or_else(|| Error::Serde("invalid `epoch`".to_string()))?;
            let table =
                et.get("table").ok_or_else(|| Error::Serde("missing `table`".to_string()))?;
            return Ok(SensorMessage::EpochTable {
                epoch: epoch as u32,
                table: LookupTable::from_json_value(table)?,
            });
        }
        if let Some(win) = doc.get("Window") {
            let int_field = |key: &str| {
                win.get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| Error::Serde(format!("invalid `{key}`")))
            };
            let window_start = win
                .get("window_start")
                .and_then(|v| v.as_f64())
                .filter(|t| t.fract() == 0.0)
                .ok_or_else(|| Error::Serde("invalid `window_start`".to_string()))?
                as Timestamp;
            let symbol =
                win.get("symbol").ok_or_else(|| Error::Serde("missing `symbol`".to_string()))?;
            let code = symbol
                .get("code")
                .and_then(JsonValue::as_u64)
                .filter(|&c| c <= u16::MAX as u64)
                .ok_or_else(|| Error::Serde("invalid `symbol.code`".to_string()))?;
            let len = symbol
                .get("len")
                .and_then(JsonValue::as_u64)
                .filter(|&l| l <= u8::MAX as u64)
                .ok_or_else(|| Error::Serde("invalid `symbol.len`".to_string()))?;
            let samples = int_field("samples")?;
            if samples > u32::MAX as u64 {
                return Err(Error::Serde("`samples` out of range".to_string()));
            }
            return Ok(SensorMessage::Window(EncodedWindow {
                window_start,
                symbol: Symbol::from_rank(code as u16, len as u8)?,
                samples: samples as u32,
            }));
        }
        Err(Error::Serde("expected a `Table`, `EpochTable` or `Window` message".to_string()))
    }
}

/// Sensor-side state machine implementing the paper's full protocol:
/// 1. **Training**: buffer `train_duration` seconds of raw samples (the paper
///    uses the first two days) into a [`StreamingLearner`];
/// 2. **Table emission**: learn separators, build the table, emit
///    [`SensorMessage::Table`];
/// 3. **Streaming**: encode every subsequent window, emitting
///    [`SensorMessage::Window`]s. Training samples are *also* replayed
///    through the encoder, so no data is lost.
#[derive(Debug)]
pub struct SensorPipeline {
    method: SeparatorMethod,
    alphabet: Alphabet,
    window_secs: i64,
    aggregation: Aggregation,
    train_duration: i64,
    state: PipelineState,
}

// One state per pipeline (not collection-stored), so the variant size skew
// from the table-carrying encoder is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum PipelineState {
    Training {
        learner: StreamingLearner,
        buffer: Vec<(Timestamp, f64)>,
        started: Option<Timestamp>,
    },
    Streaming {
        encoder: OnlineEncoder,
    },
}

impl SensorPipeline {
    /// Creates a pipeline that trains for `train_duration` seconds before
    /// streaming symbols.
    pub fn new(
        method: SeparatorMethod,
        alphabet: Alphabet,
        window_secs: i64,
        aggregation: Aggregation,
        train_duration: i64,
    ) -> Result<Self> {
        if window_secs <= 0 || train_duration <= 0 {
            return Err(Error::InvalidParameter {
                name: "window_secs/train_duration",
                reason: "must be positive".to_string(),
            });
        }
        Ok(SensorPipeline {
            method,
            alphabet,
            window_secs,
            aggregation,
            train_duration,
            state: PipelineState::Training {
                learner: StreamingLearner::exact(method, alphabet.size())?,
                buffer: Vec::new(),
                started: None,
            },
        })
    }

    /// Whether the pipeline is still in its training phase.
    pub fn is_training(&self) -> bool {
        matches!(self.state, PipelineState::Training { .. })
    }

    /// Feeds one sample; returns the messages to ship (zero or more — the
    /// transition out of training emits the table plus any windows covered
    /// by the buffered training data).
    pub fn push(&mut self, t: Timestamp, v: f64) -> Result<Vec<SensorMessage>> {
        match &mut self.state {
            PipelineState::Training { learner, buffer, started } => {
                let t0 = *started.get_or_insert(t);
                if t - t0 < self.train_duration {
                    learner.push(v)?;
                    buffer.push((t, v));
                    return Ok(Vec::new());
                }
                // Training complete: build table, replay buffer, continue.
                let separators = learner.separators()?;
                let values: Vec<f64> = buffer.iter().map(|&(_, v)| v).collect();
                let table =
                    LookupTable::from_parts(self.method, self.alphabet, separators, &values)?;
                let mut encoder =
                    OnlineEncoder::new(table.clone(), self.window_secs, self.aggregation)?;
                let mut msgs = vec![SensorMessage::Table(table)];
                for &(bt, bv) in buffer.iter() {
                    if let Some(w) = encoder.push(bt, bv)? {
                        msgs.push(SensorMessage::Window(w));
                    }
                }
                if let Some(w) = encoder.push(t, v)? {
                    msgs.push(SensorMessage::Window(w));
                }
                self.state = PipelineState::Streaming { encoder };
                Ok(msgs)
            }
            PipelineState::Streaming { encoder } => {
                Ok(encoder.push(t, v)?.map(SensorMessage::Window).into_iter().collect())
            }
        }
    }

    /// Flushes the trailing window at end of stream.
    pub fn finish(&mut self) -> Vec<SensorMessage> {
        match &mut self.state {
            PipelineState::Streaming { encoder } => {
                encoder.finish().map(SensorMessage::Window).into_iter().collect()
            }
            PipelineState::Training { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LookupTable {
        LookupTable::custom(&[100.0, 200.0, 300.0], 0.0, 400.0).unwrap()
    }

    #[test]
    fn online_encoder_emits_on_window_close() {
        let mut enc = OnlineEncoder::new(table(), 60, Aggregation::Mean).unwrap();
        for t in 0..60 {
            assert_eq!(enc.push(t, 50.0).unwrap(), None);
        }
        // First sample of next window triggers emission of window [0, 60).
        let e = enc.push(60, 350.0).unwrap().expect("window closed");
        assert_eq!(e.window_start, 0);
        assert_eq!(e.samples, 60);
        assert_eq!(e.symbol.rank(), 0);
        let f = enc.finish().expect("flush open window");
        assert_eq!(f.window_start, 60);
        assert_eq!(f.symbol.rank(), 3);
        assert!(enc.finish().is_none(), "second flush is a no-op");
    }

    #[test]
    fn online_encoder_matches_batch_aggregation() {
        use crate::horizontal::horizontal_segmentation;
        use crate::timeseries::TimeSeries;
        use crate::vertical::aggregate_by_window;

        let values: Vec<f64> = (0..500).map(|i| ((i * 97) % 400) as f64).collect();
        let series = TimeSeries::from_regular(0, 7, &values).unwrap();
        let t = table();

        let agg = aggregate_by_window(&series, 60, Aggregation::Mean, 1).unwrap();
        let batch = horizontal_segmentation(&agg, &t).unwrap();

        let mut enc = OnlineEncoder::new(t, 60, Aggregation::Mean).unwrap();
        let mut online = Vec::new();
        for (ts, v) in series.iter() {
            if let Some(w) = enc.push(ts, v).unwrap() {
                online.push((w.window_start, w.symbol));
            }
        }
        if let Some(w) = enc.finish() {
            online.push((w.window_start, w.symbol));
        }
        let batch_pairs: Vec<(Timestamp, Symbol)> = batch.iter().collect();
        assert_eq!(online, batch_pairs);
    }

    #[test]
    fn online_encoder_rejects_time_regression_and_nan() {
        let mut enc = OnlineEncoder::new(table(), 60, Aggregation::Mean).unwrap();
        enc.push(120, 10.0).unwrap();
        assert!(enc.push(0, 10.0).is_err());
        assert!(enc.push(120, f64::NAN).is_err());
    }

    #[test]
    fn min_samples_drops_sparse_windows() {
        let mut enc =
            OnlineEncoder::new(table(), 60, Aggregation::Mean).unwrap().with_min_samples(10);
        enc.push(0, 50.0).unwrap();
        // Jump two windows ahead: sparse window [0,60) is dropped.
        assert_eq!(enc.push(130, 50.0).unwrap(), None);
    }

    #[test]
    fn pipeline_trains_then_streams() {
        let mut p = SensorPipeline::new(
            SeparatorMethod::Median,
            Alphabet::with_size(4).unwrap(),
            60,
            Aggregation::Mean,
            600, // train on 10 minutes
        )
        .unwrap();
        let mut msgs = Vec::new();
        for t in 0..1200i64 {
            let v = ((t * 31) % 400) as f64;
            msgs.extend(p.push(t, v).unwrap());
        }
        msgs.extend(p.finish());

        // Exactly one table message, emitted before any window message.
        let table_positions: Vec<usize> = msgs
            .iter()
            .enumerate()
            .filter(|(_, m)| matches!(m, SensorMessage::Table(_)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(table_positions, vec![0]);

        // Training data is replayed: windows cover t=0 onwards, 20 windows total.
        let windows: Vec<&EncodedWindow> = msgs
            .iter()
            .filter_map(|m| match m {
                SensorMessage::Window(w) => Some(w),
                _ => None,
            })
            .collect();
        assert_eq!(windows.len(), 20);
        assert_eq!(windows[0].window_start, 0);
        assert_eq!(windows.last().unwrap().window_start, 1140);
        assert!(!p.is_training());
    }

    #[test]
    fn sensor_message_json_roundtrip() {
        let m = SensorMessage::Window(EncodedWindow {
            window_start: 900,
            symbol: Symbol::from_rank(3, 2).unwrap(),
            samples: 42,
        });
        let j = m.to_json().unwrap();
        assert_eq!(SensorMessage::from_json(&j).unwrap(), m);
        let t = SensorMessage::Table(table());
        let j = t.to_json().unwrap();
        assert_eq!(SensorMessage::from_json(&j).unwrap(), t);
        let e = SensorMessage::EpochTable { epoch: 7, table: table() };
        let j = e.to_json().unwrap();
        assert_eq!(SensorMessage::from_json(&j).unwrap(), e);
        assert!(SensorMessage::from_json("{}").is_err());
        assert!(SensorMessage::from_json(r#"{"EpochTable":{"epoch":5000000000}}"#).is_err());
    }

    #[test]
    fn pipeline_validates_parameters() {
        let a = Alphabet::with_size(4).unwrap();
        assert!(SensorPipeline::new(SeparatorMethod::Median, a, 0, Aggregation::Mean, 10).is_err());
        assert!(SensorPipeline::new(SeparatorMethod::Median, a, 60, Aggregation::Mean, 0).is_err());
    }
}
