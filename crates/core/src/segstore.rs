//! Persistent columnar segment store for encoded symbol streams.
//!
//! The paper's §2.3 compression story prices a day of readings at "only
//! 384 bit" — but that figure is only real if the symbols are actually
//! *stored* as packed bits. This module is that storage layer: encoded
//! [`SymbolicSeries`] are appended as **time-indexed segments** whose
//! payload is the MSB-first bit-packing of [`crate::symbol::SymbolWriter`],
//! with a per-segment footer (`min_rank`/`max_rank`/`count`) that lets
//! queries skip payloads entirely.
//!
//! Two properties of the alphabet's prefix partial order (§4, symbol
//! construction by recursive range halving) do the heavy lifting:
//!
//! 1. **Resolution truncation is a bit-slice.** A `b`-bit symbol's `r`-bit
//!    coarsening is its first `r` bits ([`crate::symbol::Symbol::truncate`]),
//!    and symbols are packed MSB-first — so reading a segment at a coarser
//!    resolution reads the first `r` bits of every `b`-bit group and never
//!    decodes the rest ([`SegmentStore::read_truncated`]).
//! 2. **Rank order survives truncation.** `a ≤ b ⇒ a>>k ≤ b>>k`, so the
//!    footer's min/max ranks bound every coarser read too, and a segment
//!    whose bounds collapse to one coarse rank aggregates without a scan
//!    ([`SegmentStore::aggregate_range`]).
//!
//! Aggregates reconstruct means through the lookup table's per-bin means
//! (§2.3 / [`crate::lookup::LookupTable::bin_means`]): the mean over a
//! time range is `Σ count[rank]·bin_mean[rank] / n`, computed from packed
//! bits without materializing a [`SymbolicSeries`].
//!
//! A second-stage re-compression pass ([`SegmentStore::recompress`]) runs
//! zero-dependency RLE + dictionary coding over the packed blocks and
//! reports bytes before/after, grounding the comparison against "Can the
//! Multi-Incoming Smart Meter Compressed Streams be Re-Compressed?"
//! (arXiv:2006.03208).
//!
//! ## Arithmetic hardening
//!
//! All segment sizes and offsets are `u64` end to end; every conversion to
//! `usize` is a checked `try_from`, every offset sum a `checked_add`, and
//! [`SegmentStore::from_bytes`] validates announced counts against the
//! actual buffer length **before any allocation** — the same
//! truncation/pre-allocation bug class the wire decoder's
//! [`Error::FrameTooLarge`] path closed.

use std::time::Instant;

use crate::error::{Error, Result};
use crate::horizontal::SymbolicSeries;
use crate::lookup::LookupTable;
use crate::symbol::{Symbol, MAX_RESOLUTION_BITS};
use crate::telemetry::Registry;
use crate::timeseries::Timestamp;

/// Magic prefix of a persisted store image (v2: epoch-tagged segments).
pub const STORE_MAGIC: &[u8; 4] = b"SMS2";

/// Magic prefix of the epoch-less v1 image layout. Still readable:
/// [`SegmentStore::from_bytes`] decodes v1 images with every segment at
/// epoch 0, so stores persisted before drift adaptation existed keep
/// loading (the "old epochs remain decodable" invariant extends to disk).
pub const STORE_MAGIC_V1: &[u8; 4] = b"SMS1";

/// Fixed wire size of one serialized v1 [`SegmentMeta`] (no epoch).
const META_V1_WIRE_BYTES: u64 = 8 + 8 + 8 + 8 + 8 + 8 + 2 + 2 + 1;

/// Fixed wire size of one serialized [`SegmentMeta`]: the v1 layout with
/// the separator epoch (`u32`) appended **last**, so every v1 field sits at
/// the same offset in both versions.
const META_WIRE_BYTES: u64 = META_V1_WIRE_BYTES + 4;

/// Fixed header size of a persisted image (magic + meta count + arena len).
const HEADER_BYTES: u64 = 4 + 8 + 8;

/// Trailing CRC32 footer of a persisted image (over everything before it).
const FOOTER_BYTES: u64 = 4;

/// High bit of a re-compressed segment's leading byte: the RLE + dictionary
/// tokenization would have expanded this segment (short or high-entropy
/// payloads), so the bit-packed payload follows verbatim instead. Safe to
/// overload because `resolution_bits ≤ 16 < 0x80`.
const RECOMPRESS_RAW_ESCAPE: u8 = 0x80;

/// Hard ceiling on the symbol count a re-compressed segment may announce.
/// [`decompress_segment`] sizes its output from an untrusted varint; this cap
/// bounds that allocation (2^27 ranks = 256 MiB) against hostile headers. Far
/// above any real segment — a year of 1-second readings is ~31.5 M symbols.
const MAX_DECODE_SYMBOLS: u64 = 1 << 27;

/// Counters for one [`SegmentStore`]; rendered as the `"store"` block of
/// [`crate::engine::EngineStats::to_json`] and the Prometheus exposition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StoreStats {
    /// Segments appended.
    pub segments_written: u64,
    /// Symbols appended across every segment.
    pub symbols_written: u64,
    /// Packed payload bytes in the arena.
    pub packed_bytes: u64,
    /// Total bytes after the second-stage RLE + dictionary pass (0 until
    /// [`SegmentStore::recompress`] runs).
    pub recompressed_bytes: u64,
    /// Full-resolution range reads served.
    pub reads: u64,
    /// Resolution-truncating reads served (pure bit-slice, no re-decode).
    pub truncated_reads: u64,
    /// Segments answered without scanning their payload: excluded by the
    /// footer/time bounds, or wholly counted from the footer alone.
    pub segments_pruned: u64,
    /// Wall time spent serving queries, seconds.
    pub query_secs: f64,
}

impl StoreStats {
    /// Registers this block's [`crate::telemetry::CATALOG`] metrics into
    /// `reg` and loads their current values.
    pub fn register_into(&self, reg: &Registry) {
        reg.register_block("store");
        reg.add("sms_store_segments_written", self.segments_written);
        reg.add("sms_store_symbols_written", self.symbols_written);
        reg.add("sms_store_packed_bytes", self.packed_bytes);
        reg.add("sms_store_recompressed_bytes", self.recompressed_bytes);
        reg.add("sms_store_reads", self.reads);
        reg.add("sms_store_truncated_reads", self.truncated_reads);
        reg.add("sms_store_segments_pruned", self.segments_pruned);
        reg.set_f64("sms_store_query_secs", self.query_secs);
    }
}

/// One segment's descriptor: where its packed payload lives in the arena
/// plus the footer bounds that let queries prune it without a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// House (meter) id the segment belongs to.
    pub house: u64,
    /// Timestamp of the first symbol.
    pub start: Timestamp,
    /// Seconds between consecutive symbols (0 for single-symbol segments).
    pub interval: i64,
    /// Symbols in the segment.
    pub count: u64,
    /// Resolution of every symbol, in bits.
    pub resolution_bits: u8,
    /// Smallest symbol rank in the segment (footer).
    pub min_rank: u16,
    /// Largest symbol rank in the segment (footer).
    pub max_rank: u16,
    /// Byte offset of the packed payload in the arena.
    pub offset: u64,
    /// Packed payload length in bytes.
    pub len: u64,
    /// Separator epoch the segment's symbols were encoded under (`0` for
    /// pre-drift tables and every v1 image). Symbols from different epochs
    /// are not comparable — their separators differ — so queries mixing
    /// epochs must re-decode through the matching epoch's table.
    pub epoch: u32,
}

impl SegmentMeta {
    /// Timestamp of the last symbol.
    pub fn end(&self) -> Timestamp {
        self.start + (self.count as i64 - 1) * self.interval
    }

    /// Rows (symbol indices) of this segment overlapping `[t0, t1]`,
    /// inclusive on both ends, or `None` when disjoint.
    fn overlap_rows(&self, t0: Timestamp, t1: Timestamp) -> Option<(u64, u64)> {
        if self.count == 0 || t1 < self.start || t0 > self.end() {
            return None;
        }
        let first = if t0 <= self.start {
            0
        } else {
            // self.interval > 0 here: count == 1 segments were handled by
            // the disjointness check above (start == end). Widen to i128:
            // t0 - start fits i64 (t0 <= end, extent validated), but adding
            // interval - 1 can pass i64::MAX for near-extent intervals.
            (((t0 - self.start) as i128 + self.interval as i128 - 1) / self.interval as i128) as u64
        };
        let last = if t1 >= self.end() {
            self.count - 1
        } else {
            ((t1 - self.start) / self.interval) as u64
        };
        if first > last {
            None
        } else {
            Some((first, last))
        }
    }
}

/// Aggregate of one time-range query, computed with pushdown (per-rank
/// counts from packed bits, means reconstructed through the lookup table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Symbols in range.
    pub count: u64,
    /// Mean of the per-symbol reconstructed values (`0.0` when empty).
    pub mean: f64,
    /// Smallest rank in range at the query resolution (`0` when empty).
    pub min_rank: u16,
    /// Largest rank in range at the query resolution (`0` when empty).
    pub max_rank: u16,
}

/// Sizing report of one [`SegmentStore::recompress`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Recompression {
    /// Segments re-compressed.
    pub segments: u64,
    /// Packed payload bytes before the pass.
    pub packed_bytes: u64,
    /// Bytes after RLE + dictionary coding (headers included).
    pub recompressed_bytes: u64,
}

impl Recompression {
    /// Compression ratio of the second stage (`packed / recompressed`).
    pub fn ratio(&self) -> f64 {
        self.packed_bytes as f64 / (self.recompressed_bytes as f64).max(f64::MIN_POSITIVE)
    }
}

/// Append-only columnar store of bit-packed symbol segments.
///
/// Segments append cheapest in nondecreasing `(house, start)` order (the
/// order the sharded engine's deterministic merge emits); out-of-order
/// appends stay correct but pay an index insertion. Queries take `&mut
/// self` to maintain the [`StoreStats`] counters.
///
/// ```
/// use sms_core::prelude::*;
/// use sms_core::segstore::SegmentStore;
///
/// let history = TimeSeries::from_regular(0, 900, &[1.0, 5.0, 9.0, 13.0]).unwrap();
/// let codec = CodecBuilder::new()
///     .alphabet_size(4).unwrap()
///     .no_aggregation()
///     .train(&history).unwrap();
/// let series = codec.encode(&history).unwrap();
///
/// let mut store = SegmentStore::new();
/// store.append(7, &series).unwrap();
/// let back = store.read_range(7, 0, i64::MAX).unwrap();
/// assert_eq!(back.symbols(), series.symbols());
/// // Truncating to 1 bit is a bit-slice of the same payload.
/// let coarse = store.read_truncated(7, 0, i64::MAX, 1).unwrap();
/// assert_eq!(coarse.resolution_bits(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SegmentStore {
    metas: Vec<SegmentMeta>,
    arena: Vec<u8>,
    /// Meta indices sorted by `(house, start)`; appends in that order are
    /// O(1), stragglers pay a sorted insertion.
    index: Vec<u32>,
    stats: StoreStats,
}

impl SegmentStore {
    /// An empty store.
    pub fn new() -> Self {
        SegmentStore::default()
    }

    /// Number of segments stored.
    pub fn segment_count(&self) -> usize {
        self.metas.len()
    }

    /// Packed payload bytes stored.
    pub fn arena_bytes(&self) -> u64 {
        self.arena.len() as u64
    }

    /// Segment descriptors, in append order.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.metas
    }

    /// Counters for this store.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Appends `series` as one segment of `house` at epoch 0 (the pre-drift
    /// separator table). See [`append_epoch`](Self::append_epoch).
    pub fn append(&mut self, house: u64, series: &SymbolicSeries) -> Result<usize> {
        self.append_epoch(house, 0, series)
    }

    /// Appends `series` as one segment of `house`, recording the separator
    /// `epoch` its symbols were encoded under. The series must be
    /// **regular** — consecutive timestamps a constant positive interval
    /// apart — because the segment stores only `(start, interval, count)`;
    /// irregular series get a typed [`Error::Store`].
    pub fn append_epoch(
        &mut self,
        house: u64,
        epoch: u32,
        series: &SymbolicSeries,
    ) -> Result<usize> {
        if series.is_empty() {
            return Err(Error::EmptyInput("segment series"));
        }
        if self.metas.len() >= u32::MAX as usize {
            return Err(Error::Store("segment index full (u32::MAX segments)".to_string()));
        }
        let ts = series.timestamps();
        let interval = if ts.len() >= 2 { ts[1] - ts[0] } else { 0 };
        if ts.len() >= 2 && interval <= 0 {
            return Err(Error::Store(format!("segment interval must be positive, got {interval}")));
        }
        for (i, w) in ts.windows(2).enumerate() {
            if w[1] - w[0] != interval {
                return Err(Error::Store(format!(
                    "irregular series: interval {} at index {} differs from {}",
                    w[1] - w[0],
                    i + 1,
                    interval
                )));
            }
        }
        let mut min_rank = u16::MAX;
        let mut max_rank = 0u16;
        for s in series.symbols() {
            min_rank = min_rank.min(s.rank());
            max_rank = max_rank.max(s.rank());
        }
        let payload = series.pack_symbols();
        let offset = self.arena.len() as u64;
        let len = payload.len() as u64;
        offset.checked_add(len).ok_or_else(|| Error::Store("arena offset overflow".to_string()))?;
        self.arena.extend_from_slice(&payload);
        let meta = SegmentMeta {
            house,
            start: ts[0],
            interval,
            count: series.len() as u64,
            resolution_bits: series.resolution_bits(),
            min_rank,
            max_rank,
            offset,
            len,
            epoch,
        };
        let id = self.metas.len();
        self.metas.push(meta);
        self.index_insert(id as u32);
        self.stats.segments_written += 1;
        self.stats.symbols_written += meta.count;
        self.stats.packed_bytes += len;
        Ok(id)
    }

    fn index_key(&self, id: u32) -> (u64, Timestamp) {
        let m = &self.metas[id as usize];
        (m.house, m.start)
    }

    fn index_insert(&mut self, id: u32) {
        let key = self.index_key(id);
        match self.index.last() {
            Some(&last) if self.index_key(last) > key => {
                let pos = self.index.partition_point(|&i| self.index_key(i) <= key);
                self.index.insert(pos, id);
            }
            _ => self.index.push(id),
        }
    }

    /// Whether any segment of `house` exists.
    pub fn contains_house(&self, house: u64) -> bool {
        let lo = self.index.partition_point(|&i| self.index_key(i) < (house, Timestamp::MIN));
        self.index.get(lo).is_some_and(|&i| self.metas[i as usize].house == house)
    }

    /// The house's segment metas in `(house, start)` order.
    fn house_segments(&self, house: u64) -> impl Iterator<Item = &SegmentMeta> {
        let lo = self.index.partition_point(|&i| self.index_key(i) < (house, Timestamp::MIN));
        self.index[lo..]
            .iter()
            .map(move |&i| &self.metas[i as usize])
            .take_while(move |m| m.house == house)
    }

    /// Reads `house`'s symbols in `[t0, t1]` at full resolution. Every
    /// touched segment must share one resolution (mixed-resolution houses
    /// read through [`read_truncated`](Self::read_truncated) at the coarsest
    /// stored resolution instead). Unknown houses get a typed
    /// [`Error::Store`]; an empty overlap returns an empty series.
    pub fn read_range(
        &mut self,
        house: u64,
        t0: Timestamp,
        t1: Timestamp,
    ) -> Result<SymbolicSeries> {
        if !self.contains_house(house) {
            return Err(Error::Store(format!("house {house} has no segments")));
        }
        let bits = self.house_segments(house).next().map(|m| m.resolution_bits).unwrap_or(1);
        let t = Instant::now();
        let result = self.read_at(house, t0, t1, bits, true, None);
        self.stats.reads += 1;
        self.stats.query_secs += t.elapsed().as_secs_f64();
        result
    }

    /// Separator epochs with at least one segment for `house`, ascending.
    pub fn house_epochs(&self, house: u64) -> Vec<u32> {
        let mut epochs: Vec<u32> = self.house_segments(house).map(|m| m.epoch).collect();
        epochs.sort_unstable();
        epochs.dedup();
        epochs
    }

    /// Reads `house`'s symbols in `[t0, t1]` restricted to segments of one
    /// separator `epoch`, truncated to `to_bits`. Like
    /// [`read_truncated`](Self::read_truncated) this is a pure bit-slice of
    /// the packed payloads — segments of other epochs are skipped entirely,
    /// never decoded, so a stored image holding both pre- and post-cutover
    /// segments serves each epoch independently.
    pub fn read_epoch_truncated(
        &mut self,
        house: u64,
        epoch: u32,
        t0: Timestamp,
        t1: Timestamp,
        to_bits: u8,
    ) -> Result<SymbolicSeries> {
        let t = Instant::now();
        let result = self.read_at(house, t0, t1, to_bits, false, Some(epoch));
        self.stats.truncated_reads += 1;
        self.stats.query_secs += t.elapsed().as_secs_f64();
        result
    }

    /// Reads `house`'s symbols in `[t0, t1]` truncated to `to_bits` —
    /// a pure bit-slice of the packed payload (the first `to_bits` of each
    /// symbol's group), never a decode-then-truncate.
    pub fn read_truncated(
        &mut self,
        house: u64,
        t0: Timestamp,
        t1: Timestamp,
        to_bits: u8,
    ) -> Result<SymbolicSeries> {
        let t = Instant::now();
        let result = self.read_at(house, t0, t1, to_bits, false, None);
        self.stats.truncated_reads += 1;
        self.stats.query_secs += t.elapsed().as_secs_f64();
        result
    }

    fn read_at(
        &self,
        house: u64,
        t0: Timestamp,
        t1: Timestamp,
        read_bits: u8,
        exact: bool,
        epoch: Option<u32>,
    ) -> Result<SymbolicSeries> {
        if read_bits == 0 || read_bits > MAX_RESOLUTION_BITS {
            return Err(Error::InvalidResolution(read_bits));
        }
        let mut out = SymbolicSeries::new(read_bits)?;
        let mut rows: Vec<(u64, u64, &SegmentMeta)> = Vec::new();
        for m in self.house_segments(house) {
            if epoch.is_some_and(|e| m.epoch != e) {
                continue;
            }
            if exact && m.resolution_bits != read_bits {
                return Err(Error::ResolutionMismatch {
                    left: m.resolution_bits,
                    right: read_bits,
                });
            }
            if m.resolution_bits < read_bits {
                return Err(Error::Store(format!(
                    "cannot read {read_bits}-bit symbols from a {}-bit segment \
                     (truncation only coarsens)",
                    m.resolution_bits
                )));
            }
            if let Some((first, last)) = m.overlap_rows(t0, t1) {
                rows.push((first, last, m));
            }
        }
        for (first, last, m) in rows {
            let payload = self.payload(m)?;
            let b = m.resolution_bits as usize;
            for row in first..=last {
                let code = read_bits_at(payload, row as usize * b, read_bits);
                let sym = Symbol::from_rank(code, read_bits)?;
                out.push(m.start + row as i64 * m.interval, sym)?;
            }
        }
        Ok(out)
    }

    fn payload(&self, m: &SegmentMeta) -> Result<&[u8]> {
        let offset = usize::try_from(m.offset)
            .map_err(|_| Error::Store(format!("segment offset {} exceeds usize", m.offset)))?;
        let len = usize::try_from(m.len)
            .map_err(|_| Error::Store(format!("segment length {} exceeds usize", m.len)))?;
        let end = offset
            .checked_add(len)
            .ok_or_else(|| Error::Store("segment extent overflow".to_string()))?;
        self.arena.get(offset..end).ok_or_else(|| {
            Error::Store(format!(
                "segment extent [{offset}, {end}) outside the {}-byte arena",
                self.arena.len()
            ))
        })
    }

    /// Counts `house`'s symbols in `[t0, t1]` whose first
    /// `prefix.resolution_bits()` bits equal `prefix` — the symbol-prefix
    /// predicate of the alphabet's partial order. Segments whose footer
    /// bounds fall outside (or entirely inside) the prefix's rank range are
    /// answered without touching their payload.
    pub fn count_prefix(
        &mut self,
        house: u64,
        t0: Timestamp,
        t1: Timestamp,
        prefix: Symbol,
    ) -> Result<u64> {
        let t = Instant::now();
        let mut total = 0u64;
        let mut pruned = 0u64;
        let plen = prefix.resolution_bits();
        let mut scans: Vec<(u64, u64, &SegmentMeta)> = Vec::new();
        for m in self.house_segments(house) {
            if plen > m.resolution_bits {
                return Err(Error::Store(format!(
                    "prefix of {plen} bits is finer than the {}-bit segment",
                    m.resolution_bits
                )));
            }
            let Some((first, last)) = m.overlap_rows(t0, t1) else {
                continue;
            };
            // The prefix covers ranks [lo, hi] at the segment's resolution;
            // truncation preserves rank order, so the footer prunes.
            let shift = m.resolution_bits - plen;
            let lo = prefix.rank() << shift;
            // In u32: at 16-bit resolution the top prefix's exclusive bound
            // is 65536, which wraps to 0 in u16 and would underflow below.
            let hi = (((prefix.rank() as u32 + 1) << shift) - 1) as u16;
            if m.max_rank < lo || m.min_rank > hi {
                pruned += 1;
                continue;
            }
            let whole = first == 0 && last == m.count - 1;
            if whole && m.min_rank >= lo && m.max_rank <= hi {
                total += m.count;
                pruned += 1;
                continue;
            }
            scans.push((first, last, m));
        }
        for (first, last, m) in scans {
            let payload = self.payload(m)?;
            let b = m.resolution_bits as usize;
            for row in first..=last {
                if read_bits_at(payload, row as usize * b, plen) == prefix.rank() {
                    total += 1;
                }
            }
        }
        self.stats.segments_pruned += pruned;
        self.stats.query_secs += t.elapsed().as_secs_f64();
        Ok(total)
    }

    /// Aggregates `house`'s symbols in `[t0, t1]` at `table`'s resolution
    /// with pushdown: per-rank counts accumulate straight from the packed
    /// bits (truncating on the fly when the table is coarser than the
    /// segment), and the mean reconstructs as
    /// `Σ count[rank]·bin_mean[rank] / n` through the table (§2.3). A
    /// segment fully inside the range whose footer bounds collapse to one
    /// rank at the query resolution is counted without a scan.
    pub fn aggregate_range(
        &mut self,
        house: u64,
        t0: Timestamp,
        t1: Timestamp,
        table: &LookupTable,
    ) -> Result<Aggregate> {
        let t = Instant::now();
        let read_bits = table.resolution_bits();
        let mut counts = vec![0u64; 1usize << read_bits];
        let mut pruned = 0u64;
        let mut scans: Vec<(u64, u64, &SegmentMeta)> = Vec::new();
        for m in self.house_segments(house) {
            if read_bits > m.resolution_bits {
                return Err(Error::Store(format!(
                    "aggregate table of {read_bits} bits is finer than the {}-bit segment",
                    m.resolution_bits
                )));
            }
            let Some((first, last)) = m.overlap_rows(t0, t1) else {
                continue;
            };
            let shift = m.resolution_bits - read_bits;
            let (lo, hi) = (m.min_rank >> shift, m.max_rank >> shift);
            let whole = first == 0 && last == m.count - 1;
            if whole && lo == hi {
                counts[lo as usize] += m.count;
                pruned += 1;
                continue;
            }
            scans.push((first, last, m));
        }
        for (first, last, m) in scans {
            let payload = self.payload(m)?;
            let b = m.resolution_bits as usize;
            for row in first..=last {
                counts[read_bits_at(payload, row as usize * b, read_bits) as usize] += 1;
            }
        }
        self.stats.segments_pruned += pruned;
        let n: u64 = counts.iter().sum();
        let means = table.bin_means();
        let mut sum = 0.0;
        let mut min_rank = 0u16;
        let mut max_rank = 0u16;
        let mut seen = false;
        for (rank, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            sum += c as f64 * means[rank];
            if !seen {
                min_rank = rank as u16;
                seen = true;
            }
            max_rank = rank as u16;
        }
        self.stats.query_secs += t.elapsed().as_secs_f64();
        Ok(Aggregate {
            count: n,
            mean: if n == 0 { 0.0 } else { sum / n as f64 },
            min_rank,
            max_rank,
        })
    }

    // --- second-stage re-compression ------------------------------------

    /// Runs the zero-dependency second-stage pass (RLE over symbol ranks,
    /// then a first-appearance dictionary of `(rank, run)` pairs with
    /// fixed-width bit-packed indices; segments the tokenization would
    /// expand fall back to a raw-escape copy of the packed payload) over
    /// every segment, recording total bytes before/after in [`StoreStats`]. Payloads are left untouched —
    /// this prices the arXiv:2006.03208 question, it does not re-write the
    /// arena.
    pub fn recompress(&mut self) -> Result<Recompression> {
        let mut report = Recompression::default();
        for i in 0..self.metas.len() {
            let m = self.metas[i];
            let bytes = self.recompress_segment(&m)?;
            report.segments += 1;
            report.packed_bytes += m.len;
            report.recompressed_bytes += bytes.len() as u64;
        }
        self.stats.recompressed_bytes = report.recompressed_bytes;
        Ok(report)
    }

    /// Re-compresses one segment's payload; [`decompress_segment`] inverts
    /// it exactly.
    pub fn recompress_segment(&self, m: &SegmentMeta) -> Result<Vec<u8>> {
        let payload = self.payload(m)?;
        let b = m.resolution_bits as usize;
        // RLE over ranks.
        let mut tokens: Vec<(u16, u64)> = Vec::new();
        for row in 0..m.count {
            let rank = read_bits_at(payload, row as usize * b, m.resolution_bits);
            match tokens.last_mut() {
                Some((r, run)) if *r == rank => *run += 1,
                _ => tokens.push((rank, 1)),
            }
        }
        // First-appearance dictionary of (rank, run) pairs.
        let mut dict: Vec<(u16, u64)> = Vec::new();
        let mut indices: Vec<u32> = Vec::with_capacity(tokens.len());
        for tok in &tokens {
            let idx = match dict.iter().position(|d| d == tok) {
                Some(i) => i,
                None => {
                    dict.push(*tok);
                    dict.len() - 1
                }
            };
            indices.push(idx as u32);
        }
        let width = index_width(dict.len());
        let mut out = Vec::new();
        out.push(m.resolution_bits);
        write_varint(&mut out, m.count);
        write_varint(&mut out, tokens.len() as u64);
        write_varint(&mut out, dict.len() as u64);
        for (rank, run) in &dict {
            write_varint(&mut out, *rank as u64);
            write_varint(&mut out, *run);
        }
        let mut bits = BitSink::new();
        for idx in &indices {
            bits.write(*idx, width);
        }
        out.extend_from_slice(&bits.finish());
        // Raw escape: on segments the tokenization expands (few runs, or
        // too short to amortize the dictionary), keep the packed payload
        // verbatim so re-compression is never worse than ~2 bytes/segment.
        let mut raw = Vec::with_capacity(11 + payload.len());
        raw.push(RECOMPRESS_RAW_ESCAPE | m.resolution_bits);
        write_varint(&mut raw, m.count);
        raw.extend_from_slice(payload);
        Ok(if out.len() <= raw.len() { out } else { raw })
    }

    // --- persistence ------------------------------------------------------

    /// Serializes the whole store (header, metas, arena) into one image,
    /// closed by a CRC32 footer over everything before it — bit-rot
    /// anywhere in the image (header, metas, or mid-arena) fails
    /// [`from_bytes`](Self::from_bytes) with a typed error instead of
    /// round-tripping silently as wrong symbols.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            (HEADER_BYTES + META_WIRE_BYTES * self.metas.len() as u64 + FOOTER_BYTES) as usize,
        );
        out.extend_from_slice(STORE_MAGIC);
        out.extend_from_slice(&(self.metas.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.arena.len() as u64).to_le_bytes());
        // Serialize in index (house, start) order so the image is a pure
        // function of the stored content, not the append interleaving.
        for &i in &self.index {
            let m = &self.metas[i as usize];
            out.extend_from_slice(&m.house.to_le_bytes());
            out.extend_from_slice(&m.start.to_le_bytes());
            out.extend_from_slice(&m.interval.to_le_bytes());
            out.extend_from_slice(&m.count.to_le_bytes());
            out.extend_from_slice(&m.offset.to_le_bytes());
            out.extend_from_slice(&m.len.to_le_bytes());
            out.extend_from_slice(&m.min_rank.to_le_bytes());
            out.extend_from_slice(&m.max_rank.to_le_bytes());
            out.push(m.resolution_bits);
            // v2: the epoch goes LAST so every v1 field keeps its offset.
            out.extend_from_slice(&m.epoch.to_le_bytes());
        }
        out.extend_from_slice(&self.arena);
        let crc = crate::durable::crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes an image produced by [`to_bytes`](Self::to_bytes).
    ///
    /// The CRC32 footer is verified first (whole-image integrity), then
    /// every announced length is validated against the actual buffer
    /// **before** any allocation: a hostile header cannot make this
    /// function reserve memory it will never fill, and bit-rot anywhere
    /// in the image is a typed [`Error::Store`], not silent corruption.
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        if (buf.len() as u64) < HEADER_BYTES + FOOTER_BYTES {
            return Err(Error::Store("image too short or bad magic".to_string()));
        }
        // v1 images predate drift adaptation: same layout minus the
        // trailing epoch in each meta, every segment at epoch 0.
        let meta_wire = match &buf[..4] {
            m if m == STORE_MAGIC => META_WIRE_BYTES,
            m if m == STORE_MAGIC_V1 => META_V1_WIRE_BYTES,
            _ => return Err(Error::Store("image too short or bad magic".to_string())),
        };
        // Whole-image integrity first: the CRC32 footer covers header,
        // metas, and arena, so bit-rot anywhere fails here — before any
        // length is trusted.
        let (buf, footer) = buf.split_at(buf.len() - FOOTER_BYTES as usize);
        let want = u32::from_le_bytes(footer.try_into().expect("4 bytes"));
        let got = crate::durable::crc32(buf);
        if got != want {
            return Err(Error::Store(format!(
                "image checksum mismatch: footer {want:#010x}, computed {got:#010x}"
            )));
        }
        let total = buf.len() as u64;
        let meta_count = u64::from_le_bytes(buf[4..12].try_into().expect("8 bytes"));
        let arena_len = u64::from_le_bytes(buf[12..20].try_into().expect("8 bytes"));
        let metas_bytes = meta_count
            .checked_mul(meta_wire)
            .ok_or_else(|| Error::Store(format!("meta count {meta_count} overflows")))?;
        let announced = HEADER_BYTES
            .checked_add(metas_bytes)
            .and_then(|v| v.checked_add(arena_len))
            .ok_or_else(|| Error::Store("announced image size overflows".to_string()))?;
        if announced != total {
            return Err(Error::Store(format!(
                "announced {meta_count} metas + {arena_len} arena bytes = {announced} bytes, \
                 but the image holds {total}"
            )));
        }
        if meta_count > u32::MAX as u64 {
            return Err(Error::Store(format!(
                "meta count {meta_count} exceeds the u32 segment index"
            )));
        }
        // All announced sizes reconcile with the buffer we actually hold —
        // only now is allocation sized from them.
        let n = usize::try_from(meta_count)
            .map_err(|_| Error::Store(format!("meta count {meta_count} exceeds usize")))?;
        let mut metas = Vec::with_capacity(n);
        let mut at = HEADER_BYTES as usize;
        for _ in 0..n {
            let f = &buf[at..at + meta_wire as usize];
            let m = SegmentMeta {
                house: u64::from_le_bytes(f[0..8].try_into().expect("8 bytes")),
                start: i64::from_le_bytes(f[8..16].try_into().expect("8 bytes")),
                interval: i64::from_le_bytes(f[16..24].try_into().expect("8 bytes")),
                count: u64::from_le_bytes(f[24..32].try_into().expect("8 bytes")),
                offset: u64::from_le_bytes(f[32..40].try_into().expect("8 bytes")),
                len: u64::from_le_bytes(f[40..48].try_into().expect("8 bytes")),
                min_rank: u16::from_le_bytes(f[48..50].try_into().expect("2 bytes")),
                max_rank: u16::from_le_bytes(f[50..52].try_into().expect("2 bytes")),
                resolution_bits: f[52],
                epoch: if meta_wire == META_WIRE_BYTES {
                    u32::from_le_bytes(f[53..57].try_into().expect("4 bytes"))
                } else {
                    0
                },
            };
            validate_meta(&m, arena_len)?;
            metas.push(m);
            at += meta_wire as usize;
        }
        let arena = buf[at..].to_vec();
        let mut store =
            SegmentStore { metas, arena, index: Vec::new(), stats: StoreStats::default() };
        let mut index: Vec<u32> = (0..store.metas.len() as u32).collect();
        index.sort_by_key(|&i| {
            let m = &store.metas[i as usize];
            (m.house, m.start)
        });
        store.index = index;
        store.stats.segments_written = meta_count;
        store.stats.symbols_written = store.metas.iter().map(|m| m.count).sum();
        store.stats.packed_bytes = arena_len;
        Ok(store)
    }
}

fn validate_meta(m: &SegmentMeta, arena_len: u64) -> Result<()> {
    if m.resolution_bits == 0 || m.resolution_bits > MAX_RESOLUTION_BITS {
        return Err(Error::Store(format!(
            "segment resolution {} bits outside 1..={MAX_RESOLUTION_BITS}",
            m.resolution_bits
        )));
    }
    if m.count == 0 {
        return Err(Error::Store("segment with zero symbols".to_string()));
    }
    if m.count > 1 && m.interval <= 0 {
        return Err(Error::Store(format!(
            "multi-symbol segment with non-positive interval {}",
            m.interval
        )));
    }
    // `end()` computes start + (count-1)*interval unchecked; a hostile meta
    // (e.g. interval = i64::MAX, count >= 2) must not reach query arithmetic.
    let end_in_range = i64::try_from(m.count - 1)
        .ok()
        .and_then(|rows| rows.checked_mul(m.interval))
        .and_then(|span| m.start.checked_add(span));
    if end_in_range.is_none() {
        return Err(Error::Store(format!(
            "segment time extent overflows i64 (start {}, interval {}, count {})",
            m.start, m.interval, m.count
        )));
    }
    let bits = m
        .count
        .checked_mul(m.resolution_bits as u64)
        .ok_or_else(|| Error::Store(format!("segment bit size overflows ({} symbols)", m.count)))?;
    if m.len != bits.div_ceil(8) {
        return Err(Error::Store(format!(
            "segment payload of {} bytes does not match {} symbols × {} bits",
            m.len, m.count, m.resolution_bits
        )));
    }
    let end = m
        .offset
        .checked_add(m.len)
        .ok_or_else(|| Error::Store("segment extent overflow".to_string()))?;
    if end > arena_len {
        return Err(Error::Store(format!(
            "segment extent [{}, {end}) outside the {arena_len}-byte arena",
            m.offset
        )));
    }
    let max_rank_for_bits = ((1u32 << m.resolution_bits) - 1) as u16;
    if m.min_rank > m.max_rank || m.max_rank > max_rank_for_bits {
        return Err(Error::Store(format!(
            "segment footer ranks [{}, {}] invalid for {} bits",
            m.min_rank, m.max_rank, m.resolution_bits
        )));
    }
    Ok(())
}

/// Reads `n ≤ 16` bits MSB-first at `bit_off`, matching
/// [`crate::symbol::SymbolWriter`]'s layout. Reads past the final byte see
/// zero padding (callers bound rows by the segment count, so real symbol
/// bits are always in range).
#[inline]
fn read_bits_at(data: &[u8], bit_off: usize, n: u8) -> u16 {
    debug_assert!((1..=16).contains(&n));
    let byte = bit_off >> 3;
    let shift = bit_off & 7;
    let mut window: u32 = 0;
    for i in 0..3 {
        window = (window << 8) | *data.get(byte + i).unwrap_or(&0) as u32;
    }
    ((window >> (24 - shift - n as usize)) & ((1u32 << n) - 1)) as u16
}

/// Bits needed to index a dictionary of `len` entries (min 1).
fn index_width(len: usize) -> u8 {
    let mut w = 1u8;
    while (1usize << w) < len {
        w += 1;
    }
    w
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], at: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte =
            buf.get(*at).ok_or_else(|| Error::Store("varint ran off the buffer".to_string()))?;
        *at += 1;
        if shift >= 64 {
            return Err(Error::Store("varint longer than 64 bits".to_string()));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// MSB-first bit sink for the re-compression index stream.
struct BitSink {
    buf: Vec<u8>,
    bit_pos: u8,
}

impl BitSink {
    fn new() -> Self {
        BitSink { buf: Vec::new(), bit_pos: 0 }
    }

    fn write(&mut self, value: u32, width: u8) {
        for i in (0..width).rev() {
            if self.bit_pos == 0 {
                self.buf.push(0);
            }
            if (value >> i) & 1 == 1 {
                *self.buf.last_mut().expect("just pushed") |= 1 << (7 - self.bit_pos);
            }
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Inverts [`SegmentStore::recompress_segment`], returning the segment's
/// resolution and rank stream — the round-trip witness that the
/// second-stage pass is lossless.
pub fn decompress_segment(bytes: &[u8]) -> Result<(u8, Vec<u16>)> {
    let mut at = 0usize;
    let &first =
        bytes.first().ok_or_else(|| Error::Store("empty re-compressed segment".to_string()))?;
    at += 1;
    let bits = first & !RECOMPRESS_RAW_ESCAPE;
    if bits == 0 || bits > MAX_RESOLUTION_BITS {
        return Err(Error::Store(format!("re-compressed resolution {bits} invalid")));
    }
    let count = read_varint(bytes, &mut at)?;
    if count > MAX_DECODE_SYMBOLS {
        return Err(Error::Store(format!(
            "re-compressed segment announces {count} symbols (cap {MAX_DECODE_SYMBOLS})"
        )));
    }
    if first & RECOMPRESS_RAW_ESCAPE != 0 {
        // Raw escape: the bit-packed payload follows verbatim. Reconcile
        // the announced count against the buffer before any allocation.
        let body = &bytes[at..];
        let expected = count
            .checked_mul(bits as u64)
            .map(|b| b.div_ceil(8))
            .ok_or_else(|| Error::Store(format!("raw segment count {count} overflows")))?;
        if body.len() as u64 != expected {
            return Err(Error::Store(format!(
                "raw segment carries {} bytes, {count} x {bits}-bit symbols need {expected}",
                body.len()
            )));
        }
        let out =
            (0..count as usize).map(|row| read_bits_at(body, row * bits as usize, bits)).collect();
        return Ok((bits, out));
    }
    let n_tokens = read_varint(bytes, &mut at)?;
    let dict_len = read_varint(bytes, &mut at)?;
    // Both counts are bounded by what the buffer can actually describe
    // before any allocation: each dict entry needs ≥ 2 bytes, each token
    // ≥ 1 bit, and the decoded stream can't exceed `count` symbols.
    let remaining = (bytes.len() - at) as u64;
    if dict_len.checked_mul(2).is_none_or(|b| b > remaining) {
        return Err(Error::Store(format!(
            "dictionary of {dict_len} entries cannot fit in {remaining} bytes"
        )));
    }
    if n_tokens > count {
        return Err(Error::Store(format!(
            "{n_tokens} RLE tokens announced for only {count} symbols"
        )));
    }
    let mut dict = Vec::with_capacity(dict_len as usize);
    for _ in 0..dict_len {
        let rank = read_varint(bytes, &mut at)?;
        let run = read_varint(bytes, &mut at)?;
        if rank > u16::MAX as u64 {
            return Err(Error::Store(format!("dictionary rank {rank} exceeds u16")));
        }
        dict.push((rank as u16, run));
    }
    let width = index_width(dict.len());
    let body = &bytes[at..];
    let mut out: Vec<u16> = Vec::with_capacity(count as usize);
    for i in 0..n_tokens as usize {
        let bit_off = i * width as usize;
        if bit_off + width as usize > body.len() * 8 {
            return Err(Error::Store("token stream ran off the buffer".to_string()));
        }
        let idx = read_bits_at(body, bit_off, width) as usize;
        let (rank, run) = *dict
            .get(idx)
            .ok_or_else(|| Error::Store(format!("token index {idx} outside the dictionary")))?;
        // Hostile run lengths must not expand past the announced count —
        // check before pushing so a single token can't exhaust memory.
        if run > count - out.len() as u64 {
            return Err(Error::Store(format!(
                "run of {run} overflows the announced {count} symbols"
            )));
        }
        for _ in 0..run {
            out.push(rank);
        }
    }
    if out.len() as u64 != count {
        return Err(Error::Store(format!(
            "decoded {} symbols, header announced {count}",
            out.len()
        )));
    }
    Ok((bits, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::separators::SeparatorMethod;
    use crate::timeseries::TimeSeries;

    fn table(bits: u8) -> LookupTable {
        let values: Vec<f64> = (0..512).map(|i| ((i * 37) % 400) as f64).collect();
        LookupTable::learn(
            SeparatorMethod::Median,
            Alphabet::with_size(1 << bits).unwrap(),
            &values,
        )
        .unwrap()
    }

    fn series(bits: u8, n: usize, start: i64) -> SymbolicSeries {
        let t = table(bits);
        let values: Vec<f64> = (0..n).map(|i| ((i * 73 + 11) % 400) as f64).collect();
        let ts = TimeSeries::from_regular(start, 900, &values).unwrap();
        crate::horizontal::horizontal_segmentation(&ts, &t).unwrap()
    }

    #[test]
    fn append_and_read_back_roundtrip() {
        let s = series(4, 100, 0);
        let mut store = SegmentStore::new();
        store.append(3, &s).unwrap();
        let back = store.read_range(3, i64::MIN, i64::MAX).unwrap();
        assert_eq!(back.symbols(), s.symbols());
        assert_eq!(back.timestamps(), s.timestamps());
        assert_eq!(store.stats().reads, 1);
    }

    #[test]
    fn time_range_reads_slice_rows() {
        let s = series(4, 96, 0);
        let mut store = SegmentStore::new();
        store.append(1, &s).unwrap();
        let mid = store.read_range(1, 900 * 10, 900 * 19).unwrap();
        assert_eq!(mid.len(), 10);
        assert_eq!(mid.timestamps()[0], 9000);
        assert_eq!(mid.symbols(), &s.symbols()[10..20]);
    }

    #[test]
    fn truncated_read_is_a_bit_slice_equal_to_truncate_resolution() {
        let s = series(5, 64, 0);
        let mut store = SegmentStore::new();
        store.append(9, &s).unwrap();
        for r in 1..=5u8 {
            let sliced = store.read_truncated(9, i64::MIN, i64::MAX, r).unwrap();
            let truncated = s.truncate_resolution(r).unwrap();
            assert_eq!(sliced.symbols(), truncated.symbols(), "bits {r}");
        }
        assert_eq!(store.stats().truncated_reads, 5);
    }

    #[test]
    fn irregular_series_is_a_typed_error() {
        let t = table(2);
        let mut s = SymbolicSeries::new(2).unwrap();
        for (ts, v) in [(0i64, 10.0), (900, 200.0), (2700, 390.0)] {
            s.push(ts, t.encode_value(v).unwrap()).unwrap();
        }
        let mut store = SegmentStore::new();
        match store.append(1, &s) {
            Err(Error::Store(msg)) => assert!(msg.contains("irregular"), "{msg}"),
            other => panic!("expected Store error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_house_is_a_typed_error() {
        let mut store = SegmentStore::new();
        assert!(matches!(store.read_range(5, 0, 100), Err(Error::Store(_))));
    }

    #[test]
    fn prefix_count_matches_scan_and_prunes() {
        let s = series(4, 200, 0);
        let mut store = SegmentStore::new();
        store.append(2, &s).unwrap();
        // A constant low-rank segment that the footer alone can answer.
        let t = table(4);
        let mut lows = SymbolicSeries::new(4).unwrap();
        for i in 0..50 {
            lows.push(200 * 900 + i * 900, t.encode_value(1.0).unwrap()).unwrap();
        }
        store.append(2, &lows).unwrap();
        for plen in 1..=4u8 {
            for code in 0..(1u16 << plen) {
                let prefix = Symbol::from_rank(code, plen).unwrap();
                let got = store.count_prefix(2, i64::MIN, i64::MAX, prefix).unwrap();
                let expected = s
                    .symbols()
                    .iter()
                    .chain(lows.symbols())
                    .filter(|sym| prefix.covers(**sym))
                    .count() as u64;
                assert_eq!(got, expected, "prefix {code}/{plen}");
            }
        }
        assert!(store.stats().segments_pruned > 0, "footer pruning never fired");
    }

    #[test]
    fn aggregate_pushdown_matches_naive_mean() {
        let t = table(4);
        let s = series(4, 150, 0);
        let mut store = SegmentStore::new();
        store.append(8, &s).unwrap();
        let agg = store.aggregate_range(8, 900 * 20, 900 * 119, &t).unwrap();
        let naive: Vec<f64> = s.symbols()[20..120]
            .iter()
            .map(|sym| t.decode_symbol(*sym, crate::lookup::SymbolSemantics::RangeMean).unwrap())
            .collect();
        let mean = naive.iter().sum::<f64>() / naive.len() as f64;
        assert_eq!(agg.count, 100);
        assert!((agg.mean - mean).abs() < 1e-9, "{} vs {mean}", agg.mean);
        // Coarser aggregate through a coarsened table: still exact against
        // the naive coarse decode.
        let t2 = t.coarsen(2).unwrap();
        let agg2 = store.aggregate_range(8, 900 * 20, 900 * 119, &t2).unwrap();
        let naive2: Vec<f64> = s.symbols()[20..120]
            .iter()
            .map(|sym| {
                t2.decode_symbol(
                    sym.truncate(2).unwrap(),
                    crate::lookup::SymbolSemantics::RangeMean,
                )
                .unwrap()
            })
            .collect();
        let mean2 = naive2.iter().sum::<f64>() / naive2.len() as f64;
        assert!((agg2.mean - mean2).abs() < 1e-9);
    }

    #[test]
    fn persistence_roundtrip_and_hostile_headers() {
        let mut store = SegmentStore::new();
        store.append(1, &series(4, 96, 0)).unwrap();
        store.append(2, &series(3, 48, 0)).unwrap();
        let img = store.to_bytes();
        let mut back = SegmentStore::from_bytes(&img).unwrap();
        assert_eq!(back.segment_count(), 2);
        let a = store.read_range(1, i64::MIN, i64::MAX).unwrap();
        let b = back.read_range(1, i64::MIN, i64::MAX).unwrap();
        assert_eq!(a.symbols(), b.symbols());

        // Re-seals a poked image's CRC32 footer so the poke reaches the
        // structural validation it targets (a stale footer would trip the
        // checksum first and mask the real check).
        let refoot = |mut evil: Vec<u8>| {
            let body = evil.len() - FOOTER_BYTES as usize;
            let crc = crate::durable::crc32(&evil[..body]);
            evil[body..].copy_from_slice(&crc.to_le_bytes());
            evil
        };
        // Hostile meta count: announced bytes no longer reconcile.
        let mut evil = img.clone();
        evil[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(SegmentStore::from_bytes(&refoot(evil)), Err(Error::Store(_))));
        // Hostile arena length.
        let mut evil = img.clone();
        evil[12..20].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(matches!(SegmentStore::from_bytes(&refoot(evil)), Err(Error::Store(_))));
        // Truncated image.
        assert!(matches!(SegmentStore::from_bytes(&img[..10]), Err(Error::Store(_))));
        // Segment extent poked outside the arena.
        let mut evil = img.clone();
        let off_at = HEADER_BYTES as usize + 32;
        evil[off_at..off_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(SegmentStore::from_bytes(&refoot(evil)), Err(Error::Store(_))));
        // Hostile interval: i64::MAX on a multi-symbol segment would make
        // end() = start + (count-1)*interval overflow in every later query.
        let mut evil = img.clone();
        let ivl_at = HEADER_BYTES as usize + 16;
        evil[ivl_at..ivl_at + 8].copy_from_slice(&i64::MAX.to_le_bytes());
        assert!(matches!(SegmentStore::from_bytes(&refoot(evil)), Err(Error::Store(_))));
    }

    #[test]
    fn epoch_segments_roundtrip_and_read_per_epoch() {
        let pre = series(4, 48, 0);
        let post = series(4, 48, 48 * 900);
        let mut store = SegmentStore::new();
        store.append(5, &pre).unwrap(); // epoch 0
        store.append_epoch(5, 1, &post).unwrap();
        assert_eq!(store.house_epochs(5), vec![0, 1]);

        // Persist and reload: epochs survive the image.
        let img = store.to_bytes();
        assert_eq!(&img[..4], STORE_MAGIC);
        let mut back = SegmentStore::from_bytes(&img).unwrap();
        assert_eq!(back.segments().iter().map(|m| m.epoch).collect::<Vec<_>>(), vec![0, 1]);

        // Per-epoch reads are pure bit-slices over that epoch's segments
        // only — the other epoch's payloads are never touched.
        for bits in 1..=4u8 {
            let e0 = back.read_epoch_truncated(5, 0, i64::MIN, i64::MAX, bits).unwrap();
            assert_eq!(e0.symbols(), pre.truncate_resolution(bits).unwrap().symbols());
            let e1 = back.read_epoch_truncated(5, 1, i64::MIN, i64::MAX, bits).unwrap();
            assert_eq!(e1.symbols(), post.truncate_resolution(bits).unwrap().symbols());
        }
        let none = back.read_epoch_truncated(5, 9, i64::MIN, i64::MAX, 4).unwrap();
        assert!(none.is_empty(), "an unknown epoch reads as empty, not as a mix");
    }

    #[test]
    fn v1_images_without_epochs_still_load() {
        // Build the v2 image, then rewrite it into the v1 layout by hand:
        // magic SMS1, each meta minus its trailing 4-byte epoch, re-sealed
        // CRC. from_bytes must load it with every segment at epoch 0.
        let mut store = SegmentStore::new();
        store.append(1, &series(4, 96, 0)).unwrap();
        store.append(2, &series(3, 48, 0)).unwrap();
        let v2 = store.to_bytes();
        let n = store.segment_count();
        let mut v1 = Vec::new();
        v1.extend_from_slice(STORE_MAGIC_V1);
        v1.extend_from_slice(&v2[4..HEADER_BYTES as usize]);
        let metas_at = HEADER_BYTES as usize;
        for i in 0..n {
            let rec = &v2[metas_at + i * META_WIRE_BYTES as usize..];
            v1.extend_from_slice(&rec[..META_V1_WIRE_BYTES as usize]);
        }
        let arena_at = metas_at + n * META_WIRE_BYTES as usize;
        v1.extend_from_slice(&v2[arena_at..v2.len() - FOOTER_BYTES as usize]);
        let crc = crate::durable::crc32(&v1);
        v1.extend_from_slice(&crc.to_le_bytes());

        let mut back = SegmentStore::from_bytes(&v1).unwrap();
        assert_eq!(back.segment_count(), 2);
        assert!(back.segments().iter().all(|m| m.epoch == 0));
        let a = store.read_range(1, i64::MIN, i64::MAX).unwrap();
        let b = back.read_range(1, i64::MIN, i64::MAX).unwrap();
        assert_eq!(a.symbols(), b.symbols());
    }

    #[test]
    fn bit_rot_anywhere_in_the_image_fails_the_checksum() {
        let mut store = SegmentStore::new();
        for h in 0..4u64 {
            store.append(h, &series(4, 24, 0)).unwrap();
        }
        let img = store.to_bytes();
        // Flip one bit at every position: header, metas, mid-arena, footer.
        for at in [0, 5, HEADER_BYTES as usize + 3, img.len() - 10, img.len() - 1] {
            let mut evil = img.clone();
            evil[at] ^= 0x10;
            match SegmentStore::from_bytes(&evil) {
                Err(Error::Store(_)) => {}
                other => panic!("bit flip at byte {at} was not detected: {other:?}"),
            }
        }
        assert!(SegmentStore::from_bytes(&img).is_ok());
    }

    #[test]
    fn count_prefix_at_max_resolution_does_not_overflow() {
        // 16-bit segments: the top prefix's exclusive rank bound is 65536,
        // which wraps to 0 as u16 — the old hi computation underflowed.
        let mut s = SymbolicSeries::new(16).unwrap();
        for i in 0..32u16 {
            s.push(i as i64 * 900, Symbol::from_rank(i * 2048, 16).unwrap()).unwrap();
        }
        let mut store = SegmentStore::new();
        store.append(11, &s).unwrap();
        for plen in 1..=3u8 {
            for code in 0..(1u16 << plen) {
                let prefix = Symbol::from_rank(code, plen).unwrap();
                let got = store.count_prefix(11, i64::MIN, i64::MAX, prefix).unwrap();
                let expected = s.symbols().iter().filter(|sym| prefix.covers(**sym)).count() as u64;
                assert_eq!(got, expected, "prefix {code}/{plen}");
            }
        }
    }

    #[test]
    fn hostile_recompressed_buffers_are_typed_errors() {
        // Announced count far past the decode cap: must error before the
        // output allocation, not panic on with_capacity.
        let mut evil = vec![4u8];
        write_varint(&mut evil, u64::MAX); // count
        write_varint(&mut evil, 1); // tokens
        write_varint(&mut evil, 1); // dict entries
        write_varint(&mut evil, 0); // rank
        write_varint(&mut evil, u64::MAX); // run
        evil.push(0); // index stream
        assert!(matches!(decompress_segment(&evil), Err(Error::Store(_))));

        // Count under the cap but a dictionary run that expands way past
        // it: must error at the offending token, not push 2^40 ranks.
        let mut evil = vec![4u8];
        write_varint(&mut evil, 10); // count
        write_varint(&mut evil, 2); // tokens
        write_varint(&mut evil, 1); // dict entries
        write_varint(&mut evil, 3); // rank
        write_varint(&mut evil, 1u64 << 40); // run
        evil.push(0); // index stream
        assert!(matches!(decompress_segment(&evil), Err(Error::Store(_))));

        // Raw escape with a count its body can't carry.
        let mut evil = vec![RECOMPRESS_RAW_ESCAPE | 4u8];
        write_varint(&mut evil, u64::MAX / 32); // count
        evil.push(0);
        assert!(matches!(decompress_segment(&evil), Err(Error::Store(_))));
    }

    #[test]
    fn image_is_append_order_independent() {
        let a_series = series(4, 96, 0);
        let b_series = series(4, 48, 0);
        let mut fwd = SegmentStore::new();
        fwd.append(1, &a_series).unwrap();
        fwd.append(2, &b_series).unwrap();
        let mut rev = SegmentStore::new();
        rev.append(2, &b_series).unwrap();
        rev.append(1, &a_series).unwrap();
        // Arena layout differs with append order, but reads agree.
        let x = fwd.read_range(2, i64::MIN, i64::MAX).unwrap();
        let y = rev.read_range(2, i64::MIN, i64::MAX).unwrap();
        assert_eq!(x.symbols(), y.symbols());
    }

    #[test]
    fn recompression_roundtrips_and_shrinks_runs() {
        let t = table(4);
        let mut runs = SymbolicSeries::new(4).unwrap();
        for i in 0..400i64 {
            let v = if (i / 100) % 2 == 0 { 5.0 } else { 350.0 };
            runs.push(i * 900, t.encode_value(v).unwrap()).unwrap();
        }
        let mut store = SegmentStore::new();
        store.append(4, &runs).unwrap();
        let report = store.recompress().unwrap();
        assert!(report.recompressed_bytes < report.packed_bytes, "{report:?}");
        let bytes = store.recompress_segment(&store.segments()[0]).unwrap();
        let (bits, ranks) = decompress_segment(&bytes).unwrap();
        assert_eq!(bits, 4);
        assert_eq!(ranks, runs.ranks());
        assert_eq!(store.stats().recompressed_bytes, report.recompressed_bytes);
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            write_varint(&mut buf, v);
            let mut at = 0;
            assert_eq!(read_varint(&buf, &mut at).unwrap(), v);
            assert_eq!(at, buf.len());
        }
    }

    #[test]
    fn store_stats_register_into_catalog() {
        let stats = StoreStats {
            segments_written: 3,
            symbols_written: 288,
            packed_bytes: 144,
            ..Default::default()
        };
        let reg = Registry::new();
        stats.register_into(&reg);
        let text = reg.render_prometheus();
        assert!(text.contains("sms_store_segments_written 3"));
        assert!(text.contains("sms_store_packed_bytes 144"));
    }
}
