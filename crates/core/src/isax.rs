//! iSAX baseline (Shieh & Keogh 2008): SAX words whose symbols carry
//! *individual* cardinalities, enabling a multi-resolution index over
//! terabyte-scale series collections. The paper cites iSAX as the other
//! closest prior approach (§2.2); we implement the word representation, the
//! lower-bounding distance, and a small in-memory index sufficient to
//! demonstrate (and test) the mechanism.
//!
//! Note the structural kinship with the paper's own symbols: an iSAX symbol
//! of cardinality `2^b` is exactly a `b`-bit binary symbol, and promoting
//! cardinality appends bits — the same prefix structure as
//! [`crate::symbol::Symbol`].

use crate::error::{Error, Result};
use crate::sax::{gaussian_breakpoints, paa, z_normalize};
use crate::separators::def3_bin_index;
use crate::symbol::Symbol;
use std::collections::HashMap;

/// An iSAX word: one [`Symbol`] (rank + per-symbol bit width) per PAA segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ISaxWord {
    /// Per-segment symbols, possibly of different resolutions.
    pub symbols: Vec<Symbol>,
    /// Original series length (for the lower-bounding distance).
    pub original_len: usize,
}

impl ISaxWord {
    /// The conventional iSAX rendering, e.g. `"6.8 3.8 0.2"` (rank.cardinality).
    pub fn notation(&self) -> String {
        self.symbols
            .iter()
            .map(|s| format!("{}.{}", s.rank(), 1u32 << s.resolution_bits()))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Truncates every symbol to `bits`, producing the coarser word.
    pub fn demote(&self, bits: u8) -> Result<ISaxWord> {
        let symbols = self.symbols.iter().map(|s| s.truncate(bits)).collect::<Result<Vec<_>>>()?;
        Ok(ISaxWord { symbols, original_len: self.original_len })
    }

    /// Whether `self` (possibly coarser) covers `other` segment-wise: every
    /// symbol of `self` is a prefix of the corresponding symbol of `other`.
    pub fn covers(&self, other: &ISaxWord) -> bool {
        self.symbols.len() == other.symbols.len()
            && self.symbols.iter().zip(&other.symbols).all(|(a, b)| a.covers(*b))
    }
}

/// iSAX encoder at a base cardinality.
#[derive(Debug, Clone)]
pub struct ISax {
    word_length: usize,
    base_bits: u8,
    /// Breakpoints per bit-width `b` (index `b`, 1-based; `[0]` unused).
    breakpoint_tables: Vec<Vec<f64>>,
}

impl ISax {
    /// `word_length` segments at base cardinality `2^base_bits`.
    pub fn new(word_length: usize, base_bits: u8) -> Result<Self> {
        if word_length == 0 {
            return Err(Error::InvalidParameter {
                name: "word_length",
                reason: "must be positive".to_string(),
            });
        }
        if base_bits == 0 || base_bits > 10 {
            return Err(Error::InvalidResolution(base_bits));
        }
        let mut breakpoint_tables = vec![Vec::new()];
        for b in 1..=base_bits {
            breakpoint_tables.push(gaussian_breakpoints(1usize << b)?);
        }
        Ok(ISax { word_length, base_bits, breakpoint_tables })
    }

    /// Base resolution in bits.
    pub fn base_bits(&self) -> u8 {
        self.base_bits
    }

    /// Word length in segments.
    pub fn word_length(&self) -> usize {
        self.word_length
    }

    /// Encodes at the base cardinality.
    pub fn encode(&self, values: &[f64]) -> Result<ISaxWord> {
        let z = z_normalize(values);
        if z.is_empty() {
            return Err(Error::EmptyInput("ISax::encode"));
        }
        let segments = paa(&z, self.word_length)?;
        let bp = &self.breakpoint_tables[self.base_bits as usize];
        let symbols = segments
            .iter()
            .map(|&v| {
                // Definition 3 tie rule, shared with `LookupTable` and `Sax`:
                // a value exactly on a breakpoint takes the lower symbol.
                let rank = def3_bin_index(bp, v) as u16;
                Symbol::from_rank(rank, self.base_bits)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ISaxWord { symbols, original_len: values.len() })
    }

    /// Lower-bounding distance between a query's PAA (z-normalized) and an
    /// iSAX word with mixed cardinalities (Shieh & Keogh's MINDIST_PAA_iSAX).
    pub fn mindist_paa(&self, query_paa: &[f64], word: &ISaxWord) -> Result<f64> {
        if query_paa.len() != word.symbols.len() {
            return Err(Error::InvalidParameter {
                name: "query_paa",
                reason: format!(
                    "length {} does not match word length {}",
                    query_paa.len(),
                    word.symbols.len()
                ),
            });
        }
        let n = word.original_len as f64;
        let w = word.symbols.len() as f64;
        let mut sum = 0.0;
        for (&q, sym) in query_paa.iter().zip(&word.symbols) {
            let bits = sym.resolution_bits() as usize;
            if bits >= self.breakpoint_tables.len() {
                return Err(Error::InvalidResolution(sym.resolution_bits()));
            }
            let bp = &self.breakpoint_tables[bits];
            let r = sym.rank() as usize;
            // Symbol r occupies (bp[r-1], bp[r]] with ±∞ outer edges.
            let lo = if r == 0 { f64::NEG_INFINITY } else { bp[r - 1] };
            let hi = if r == bp.len() { f64::INFINITY } else { bp[r] };
            let d = if q < lo {
                lo - q
            } else if q > hi {
                q - hi
            } else {
                0.0
            };
            sum += d * d;
        }
        Ok((n / w).sqrt() * sum.sqrt())
    }
}

/// A minimal in-memory iSAX index: a hash of words at adaptive per-node
/// resolutions, each bucket splitting (by promoting one segment's
/// cardinality) once it exceeds `bucket_capacity`. Supports insertion and
/// approximate nearest-neighbour search, enough to exercise the
/// multi-resolution machinery end to end.
#[derive(Debug)]
pub struct ISaxIndex {
    isax: ISax,
    bucket_capacity: usize,
    root: Node,
    len: usize,
    /// z-normalized originals, kept when exact search is enabled.
    series: Vec<Vec<f64>>,
    store_series: bool,
}

/// Work accounting for one exact search (shows how much the iSAX lower
/// bound prunes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidates whose lower bound was evaluated.
    pub lower_bounds: usize,
    /// Candidates whose *true* Euclidean distance had to be computed.
    pub true_distances: usize,
}

#[derive(Debug)]
enum Node {
    /// Leaf bucket of `(word, id)` entries at the node's resolution.
    Leaf { entries: Vec<(ISaxWord, u64)> },
    /// Internal split on `segment`: children keyed by that segment's symbol
    /// promoted one bit.
    Internal { segment: usize, children: HashMap<Symbol, Node>, depth_bits: u8 },
}

impl ISaxIndex {
    /// Creates an index over words from `isax`, splitting buckets larger
    /// than `bucket_capacity`.
    pub fn new(isax: ISax, bucket_capacity: usize) -> Result<Self> {
        if bucket_capacity == 0 {
            return Err(Error::InvalidParameter {
                name: "bucket_capacity",
                reason: "must be positive".to_string(),
            });
        }
        Ok(ISaxIndex {
            isax,
            bucket_capacity,
            root: Node::Leaf { entries: Vec::new() },
            len: 0,
            series: Vec::new(),
            store_series: false,
        })
    }

    /// Enables exact search by retaining the z-normalized series alongside
    /// their words (must be set before the first insert).
    pub fn with_exact_search(mut self) -> Result<Self> {
        if self.len > 0 {
            return Err(Error::InvalidParameter {
                name: "with_exact_search",
                reason: "must be enabled before inserting".to_string(),
            });
        }
        self.store_series = true;
        Ok(self)
    }

    /// Number of indexed series.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Encodes and inserts a series under `id`.
    pub fn insert(&mut self, values: &[f64], id: u64) -> Result<()> {
        let word = self.isax.encode(values)?;
        let base_bits = self.isax.base_bits();
        let capacity = self.bucket_capacity;
        Self::insert_into(&mut self.root, word, id, 1, base_bits, capacity);
        if self.store_series {
            // Ids double as storage indices when exact search is on.
            if id as usize != self.series.len() {
                return Err(Error::InvalidParameter {
                    name: "id",
                    reason: "exact-search indexes require ids 0,1,2,… in insert order".to_string(),
                });
            }
            self.series.push(z_normalize(values));
        }
        self.len += 1;
        Ok(())
    }

    /// Exact 1-NN by z-normalized Euclidean distance: ranks every indexed
    /// word by its lower-bound distance, then computes true distances in
    /// ascending lower-bound order, stopping as soon as the next lower bound
    /// cannot beat the best true distance found (the classic iSAX exact-
    /// search argument). Requires [`ISaxIndex::with_exact_search`].
    pub fn exact_nearest(&self, values: &[f64]) -> Result<Option<(u64, f64, SearchStats)>> {
        if !self.store_series {
            return Err(Error::InvalidParameter {
                name: "exact_nearest",
                reason: "index was not built with_exact_search()".to_string(),
            });
        }
        if self.is_empty() {
            return Ok(None);
        }
        let query_paa = paa(&z_normalize(values), self.isax.word_length())?;
        let qz = z_normalize(values);

        // Collect (lower_bound, id) over all leaves.
        let mut candidates: Vec<(f64, u64)> = Vec::with_capacity(self.len);
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf { entries } => {
                    for (w, id) in entries {
                        candidates.push((self.isax.mindist_paa(&query_paa, w)?, *id));
                    }
                }
                Node::Internal { children, .. } => stack.extend(children.values()),
            }
        }
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite lower bounds"));

        let mut stats = SearchStats { lower_bounds: candidates.len(), true_distances: 0 };
        let mut best: Option<(u64, f64)> = None;
        for &(lb, id) in &candidates {
            if let Some((_, bd)) = best {
                if lb >= bd {
                    break; // every remaining lower bound is ≥ lb ≥ best
                }
            }
            let s = &self.series[id as usize];
            let n = s.len().min(qz.len());
            let d = crate::sax::euclidean(&qz[..n], &s[..n])?;
            stats.true_distances += 1;
            if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((id, d));
            }
        }
        Ok(best.map(|(id, d)| (id, d, stats)))
    }

    fn insert_into(
        node: &mut Node,
        word: ISaxWord,
        id: u64,
        split_bits: u8,
        base_bits: u8,
        capacity: usize,
    ) {
        match node {
            Node::Leaf { entries } => {
                entries.push((word, id));
                if entries.len() > capacity && split_bits <= base_bits {
                    // Split on the segment with the most diversity at split_bits.
                    let word_len = entries[0].0.symbols.len();
                    let mut best_seg = 0;
                    let mut best_diversity = 0;
                    for seg in 0..word_len {
                        let mut seen: Vec<u16> = entries
                            .iter()
                            .map(|(w, _)| {
                                w.symbols[seg].truncate(split_bits).expect("split ≤ base").rank()
                            })
                            .collect();
                        seen.sort_unstable();
                        seen.dedup();
                        if seen.len() > best_diversity {
                            best_diversity = seen.len();
                            best_seg = seg;
                        }
                    }
                    let drained = std::mem::take(entries);
                    let mut children: HashMap<Symbol, Node> = HashMap::new();
                    for (w, wid) in drained {
                        let key = w.symbols[best_seg].truncate(split_bits).expect("split ≤ base");
                        let child = children
                            .entry(key)
                            .or_insert_with(|| Node::Leaf { entries: Vec::new() });
                        Self::insert_into(child, w, wid, split_bits + 1, base_bits, capacity);
                    }
                    *node = Node::Internal { segment: best_seg, children, depth_bits: split_bits };
                }
            }
            Node::Internal { segment, children, depth_bits } => {
                let key = word.symbols[*segment].truncate(*depth_bits).expect("depth ≤ base");
                let depth = *depth_bits;
                let child =
                    children.entry(key).or_insert_with(|| Node::Leaf { entries: Vec::new() });
                Self::insert_into(child, word, id, depth + 1, base_bits, capacity);
            }
        }
    }

    /// Approximate nearest neighbour: walks to the bucket the query's word
    /// would land in, then returns the bucket entry with the smallest
    /// lower-bound distance. `None` on an empty index.
    pub fn approximate_search(&self, values: &[f64]) -> Result<Option<u64>> {
        if self.is_empty() {
            return Ok(None);
        }
        let word = self.isax.encode(values)?;
        let query_paa = paa(&z_normalize(values), self.isax.word_length())?;
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    if entries.is_empty() {
                        return Ok(None);
                    }
                    let mut best = (f64::INFINITY, entries[0].1);
                    for (w, id) in entries {
                        let d = self.isax.mindist_paa(&query_paa, w)?;
                        if d < best.0 {
                            best = (d, *id);
                        }
                    }
                    return Ok(Some(best.1));
                }
                Node::Internal { segment, children, depth_bits } => {
                    let key = word.symbols[*segment].truncate(*depth_bits).expect("depth ≤ base");
                    match children.get(&key) {
                        Some(child) => node = child,
                        None => {
                            // Query's branch is empty: fall back to any child.
                            match children.values().next() {
                                Some(child) => node = child,
                                None => return Ok(None),
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sax::euclidean;

    #[test]
    fn tie_on_breakpoint_takes_lower_symbol() {
        // Mirror of the SAX tie regression: a z-score of exactly 0.0 sits on
        // the middle breakpoint of the 2-bit (k=4) table and must take the
        // lower symbol (rank 1) under Definition 3's shared tie rule.
        let isax = ISax::new(3, 2).unwrap();
        let word = isax.encode(&[-1.0, 0.0, 1.0]).unwrap();
        assert_eq!(word.symbols[1].rank(), 1, "z-score on β_2 must take the lower symbol");
    }

    fn series(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 40) as f64 / 1000.0
            })
            .collect()
    }

    #[test]
    fn notation_formats_rank_dot_cardinality() {
        let w = ISaxWord {
            symbols: vec![Symbol::from_rank(6, 3).unwrap(), Symbol::from_rank(1, 1).unwrap()],
            original_len: 16,
        };
        assert_eq!(w.notation(), "6.8 1.2");
    }

    #[test]
    fn demote_and_covers() {
        let isax = ISax::new(4, 3).unwrap();
        let w = isax.encode(&series(7, 64)).unwrap();
        let coarse = w.demote(1).unwrap();
        assert!(coarse.covers(&w));
        assert!(!w.covers(&coarse) || w == coarse);
        assert!(coarse.covers(&coarse));
    }

    #[test]
    fn mindist_paa_lower_bounds_euclidean() {
        let isax = ISax::new(8, 4).unwrap();
        for seed in 0..20u64 {
            let a = series(seed, 64);
            let b = series(seed + 100, 64);
            let wb = isax.encode(&b).unwrap();
            let qa = paa(&z_normalize(&a), 8).unwrap();
            let lower = isax.mindist_paa(&qa, &wb).unwrap();
            let true_d = euclidean(&z_normalize(&a), &z_normalize(&b)).unwrap();
            assert!(lower <= true_d + 1e-9, "seed {seed}: {lower} > {true_d}");
        }
    }

    #[test]
    fn mindist_paa_lower_bounds_after_demotion() {
        // Coarser words must still lower-bound (with a looser bound).
        let isax = ISax::new(8, 4).unwrap();
        let a = series(3, 64);
        let b = series(33, 64);
        let wb = isax.encode(&b).unwrap();
        let qa = paa(&z_normalize(&a), 8).unwrap();
        let full = isax.mindist_paa(&qa, &wb).unwrap();
        let demoted = isax.mindist_paa(&qa, &wb.demote(1).unwrap()).unwrap();
        assert!(demoted <= full + 1e-9, "coarser bound {demoted} must not exceed {full}");
    }

    #[test]
    fn mindist_zero_when_query_falls_in_symbol_range() {
        let isax = ISax::new(1, 2).unwrap();
        let word = ISaxWord { symbols: vec![Symbol::from_rank(1, 2).unwrap()], original_len: 4 };
        // Symbol 1 of 4 covers (-0.6745, 0]; query PAA 0.0 is inside.
        assert_eq!(isax.mindist_paa(&[-0.1], &word).unwrap(), 0.0);
    }

    #[test]
    fn index_insert_split_and_search() {
        let isax = ISax::new(4, 4).unwrap();
        let mut idx = ISaxIndex::new(isax, 4).unwrap();
        let mut originals = Vec::new();
        for seed in 0..64u64 {
            let s = series(seed, 32);
            idx.insert(&s, seed).unwrap();
            originals.push(s);
        }
        assert_eq!(idx.len(), 64);
        // Searching with an indexed series should find *a* close match; with
        // an exact duplicate present, the lower-bound distance to itself is 0.
        let hit = idx.approximate_search(&originals[10]).unwrap().unwrap();
        let q = &originals[10];
        let qz = z_normalize(q);
        let d_hit = euclidean(&qz, &z_normalize(&originals[hit as usize])).unwrap();
        // The returned neighbour must be at least as close (in lower-bound
        // terms) as average; sanity: distance to hit ≤ distance to a random one.
        let d_rand = euclidean(&qz, &z_normalize(&originals[37])).unwrap();
        assert!(d_hit <= d_rand + 1e-9 || hit == 10);
    }

    #[test]
    fn exact_search_finds_true_nearest_with_pruning() {
        let isax = ISax::new(8, 4).unwrap();
        let mut idx = ISaxIndex::new(isax, 4).unwrap().with_exact_search().unwrap();
        let mut originals = Vec::new();
        for seed in 0..128u64 {
            let s = series(seed, 64);
            idx.insert(&s, seed).unwrap();
            originals.push(s);
        }
        // Query: a perturbed copy of series 42.
        let mut query = originals[42].clone();
        for v in query.iter_mut() {
            *v += 0.001;
        }
        let (id, dist, stats) = idx.exact_nearest(&query).unwrap().unwrap();
        // Brute-force reference.
        let qz = z_normalize(&query);
        let brute = (0..originals.len())
            .min_by(|&a, &b| {
                let da = euclidean(&qz, &z_normalize(&originals[a])).unwrap();
                let db = euclidean(&qz, &z_normalize(&originals[b])).unwrap();
                da.partial_cmp(&db).unwrap()
            })
            .unwrap() as u64;
        assert_eq!(id, brute, "exact search must agree with brute force");
        assert!(dist < 0.2, "perturbed copy is very close: {dist}");
        assert_eq!(stats.lower_bounds, 128);
        assert!(
            stats.true_distances < 128,
            "lower bound should prune some candidates: {}",
            stats.true_distances
        );
    }

    #[test]
    fn exact_search_requires_opt_in_and_sequential_ids() {
        let isax = ISax::new(4, 2).unwrap();
        let mut plain = ISaxIndex::new(isax, 4).unwrap();
        plain.insert(&series(1, 32), 0).unwrap();
        assert!(plain.exact_nearest(&series(2, 32)).is_err(), "not enabled");

        let isax = ISax::new(4, 2).unwrap();
        let mut exact = ISaxIndex::new(isax, 4).unwrap().with_exact_search().unwrap();
        assert!(exact.insert(&series(1, 32), 5).is_err(), "ids must be sequential");
        exact.insert(&series(1, 32), 0).unwrap();
        assert!(exact.with_exact_search().is_err(), "cannot enable after inserts");
    }

    #[test]
    fn empty_index_returns_none() {
        let isax = ISax::new(4, 2).unwrap();
        let idx = ISaxIndex::new(isax, 4).unwrap();
        assert!(idx.approximate_search(&series(1, 32)).unwrap().is_none());
        assert!(idx.is_empty());
        let isax = ISax::new(4, 2).unwrap();
        let empty_exact = ISaxIndex::new(isax, 4).unwrap().with_exact_search().unwrap();
        assert!(empty_exact.exact_nearest(&series(1, 32)).unwrap().is_none());
    }

    #[test]
    fn constructor_validation() {
        assert!(ISax::new(0, 2).is_err());
        assert!(ISax::new(4, 0).is_err());
        assert!(ISax::new(4, 11).is_err());
        assert!(ISaxIndex::new(ISax::new(4, 2).unwrap(), 0).is_err());
    }
}
