//! Streaming and batch statistics used by separator learning and by the
//! paper's exploratory figures (Fig. 2 distribution histogram, Fig. 4
//! accumulative mean/median/distinct-median convergence).

use crate::error::{Error, Result};
use std::collections::BTreeMap;

/// Totally ordered wrapper for finite `f64` values, so they can key a
/// `BTreeMap`. NaN is rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FiniteF64(u64);

impl FiniteF64 {
    /// Wraps a finite float. Returns an error on NaN/infinite input.
    pub fn new(v: f64) -> Result<Self> {
        if !v.is_finite() {
            return Err(Error::InvalidParameter {
                name: "value",
                reason: format!("must be finite, got {v}"),
            });
        }
        // Order-preserving bijection from finite f64 to u64:
        // flip all bits for negatives, flip just the sign bit for positives.
        let bits = v.to_bits();
        let key = if bits >> 63 == 1 { !bits } else { bits ^ (1 << 63) };
        Ok(FiniteF64(key))
    }

    /// Recovers the float value.
    pub fn get(self) -> f64 {
        let key = self.0;
        let bits = if key >> 63 == 1 { key ^ (1 << 63) } else { !key };
        f64::from_bits(bits)
    }
}

/// Welford running mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningMoments { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Folds in one observation.
    pub fn push(&mut self, v: f64) {
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance (`None` when empty).
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Sample variance with Bessel correction (`None` for n < 2).
    pub fn sample_variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum observed value.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observed value.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Exact quantiles over a materialized sample (sorts once, then answers any
/// number of queries). Quantiles use the "type 7" linear-interpolation rule,
/// matching NumPy's default and close enough to Weka's for the paper's
/// purposes.
#[derive(Debug, Clone)]
pub struct ExactQuantiles {
    sorted: Vec<f64>,
}

impl ExactQuantiles {
    /// Builds from any sample; copies and sorts.
    pub fn new(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::EmptyInput("ExactQuantiles"));
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
        Ok(ExactQuantiles { sorted })
    }

    /// The sorted sample.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// `q`-quantile for `q` in `[0, 1]` with linear interpolation.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

/// P² (Jain & Chlamtac) streaming quantile estimator: constant memory,
/// one pass. Used as the approximate alternative to [`ExactQuantiles`] in
/// sensor-side separator learning (ablation in `benches/separators.rs`).
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based as in the paper).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    count: usize,
    /// Initial observations buffer until we have 5.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile, `0 < q < 1`.
    pub fn new(q: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&q) || q == 0.0 || q == 1.0 {
            return Err(Error::InvalidParameter {
                name: "q",
                reason: format!("must be strictly between 0 and 1, got {q}"),
            });
        }
        Ok(P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        })
    }

    /// Feeds one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(v);
            if self.init.len() == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).expect("NaN in P2 input"));
                self.heights.copy_from_slice(&self.init);
            }
            return;
        }

        // Find cell k such that heights[k] <= v < heights[k+1].
        let k = if v < self.heights[0] {
            self.heights[0] = v;
            0
        } else if v >= self.heights[4] {
            self.heights[4] = v;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= v && v < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                let new_h = if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    parabolic
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = new_h;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate (`None` until at least one observation).
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.init.len() < 5 {
            // Fall back to an exact small-sample quantile.
            let mut v = self.init.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in P2 input"));
            let pos = self.q * (v.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            return Some(v[lo] + (v[hi] - v[lo]) * (pos - lo as f64));
        }
        Some(self.heights[2])
    }

    /// Observations consumed so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// Order-statistics multiset over finite floats: supports streaming insert
/// and exact median / distinct-median queries at any time. Backs the Fig. 4
/// accumulative-statistics experiment and the exact separator learners.
#[derive(Debug, Clone, Default)]
pub struct OrderedMultiset {
    counts: BTreeMap<FiniteF64, u64>,
    total: u64,
}

impl OrderedMultiset {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts one value. Errors on non-finite input.
    pub fn insert(&mut self, v: f64) -> Result<()> {
        *self.counts.entry(FiniteF64::new(v)?).or_insert(0) += 1;
        self.total += 1;
        Ok(())
    }

    /// Total number of inserted values (with multiplicity).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no values have been inserted.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of *distinct* values.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// `q`-quantile over all values (with multiplicity), lower-value
    /// convention (type-1: the smallest value whose cumulative count reaches
    /// `ceil(q * n)`).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0;
        for (k, &c) in &self.counts {
            cum += c;
            if cum >= target {
                return Some(k.get());
            }
        }
        self.counts.keys().next_back().map(|k| k.get())
    }

    /// Median over all values.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// `q`-quantile over the *set of distinct values* (paper's
    /// "median of distinct values", §2.2(c)).
    pub fn distinct_quantile(&self, q: f64) -> Option<f64> {
        if self.counts.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.counts.len();
        let idx = ((q * n as f64).ceil() as usize).max(1) - 1;
        self.counts.keys().nth(idx.min(n - 1)).map(|k| k.get())
    }

    /// Median of distinct values.
    pub fn distinct_median(&self) -> Option<f64> {
        self.distinct_quantile(0.5)
    }

    /// Iterator over `(value, multiplicity)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts.iter().map(|(k, &c)| (k.get(), c))
    }
}

/// Deterministic bounded-memory streaming quantile sketch (KLL/MRL-style).
///
/// Items live in levels; an item at level `l` represents `2^l` stream values.
/// When a level fills, it is sorted and every other item survives at doubled
/// weight (one compaction). The surviving parity comes from a [splitmix64]
/// counter — no wall clock, no OS RNG — so the same stream always produces
/// the same sketch, which is what lets the fleet engine keep its byte-identity
/// witness across shard/worker topologies.
///
/// Each compaction at level `l` perturbs any rank by at most `2^l`; the sketch
/// tracks the running sum in [`rank_error_bound`](Self::rank_error_bound), so
/// callers get a *provable* per-instance bound rather than a probabilistic
/// one. Memory is `O(k · log(n/k))` for `n` stream values.
///
/// NaN is rejected at [`update`](Self::update) (the PR 6 policy: ±∞ is data,
/// NaN is an error); ±∞ order correctly via total ordering.
///
/// [splitmix64]: crate::shard::splitmix64
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    /// Per-level buffer capacity.
    k: usize,
    /// `levels[l]` holds items of weight `2^l`. Only kept sorted right after
    /// compaction; queries sort on demand.
    levels: Vec<Vec<f64>>,
    count: u64,
    err_bound: u64,
    /// splitmix64 state advanced once per compaction (parity source).
    rng: u64,
}

/// Default per-level capacity: ±0.5% rank error per compaction level at
/// a few KiB per sketch.
pub const SKETCH_DEFAULT_K: usize = 128;

impl QuantileSketch {
    /// Creates an empty sketch with per-level capacity `k` (must be ≥ 2).
    pub fn new(k: usize) -> Result<Self> {
        if k < 2 {
            return Err(Error::InvalidParameter {
                name: "k",
                reason: format!("sketch level capacity must be at least 2, got {k}"),
            });
        }
        Ok(QuantileSketch {
            k,
            levels: vec![Vec::new()],
            count: 0,
            err_bound: 0,
            // Fixed seed: mixes k so differently-sized sketches decorrelate,
            // but stays a pure function of the constructor arguments.
            rng: crate::shard::splitmix64(0x5157_4b45_5443_4821 ^ k as u64),
        })
    }

    /// Creates a sketch with [`SKETCH_DEFAULT_K`].
    pub fn with_default_capacity() -> Self {
        QuantileSketch::new(SKETCH_DEFAULT_K).expect("default capacity is valid")
    }

    /// Feeds one value. NaN is rejected (`Error::NonFiniteValue`); ±∞ is
    /// accepted and ordered at the extremes.
    pub fn update(&mut self, v: f64) -> Result<()> {
        if v.is_nan() {
            return Err(Error::NonFiniteValue { index: self.count as usize });
        }
        self.count += 1;
        self.levels[0].push(v);
        self.compact_cascade();
        Ok(())
    }

    /// Merges another sketch into this one (counts and error bounds add).
    /// Deterministic: the result depends only on the two operands and the
    /// merge order, never on wall clock or OS randomness.
    pub fn merge(&mut self, other: &QuantileSketch) {
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
        }
        for (l, items) in other.levels.iter().enumerate() {
            self.levels[l].extend_from_slice(items);
        }
        self.count += other.count;
        self.err_bound += other.err_bound;
        // Overfull levels compact immediately so memory stays bounded.
        for l in 0.. {
            if l >= self.levels.len() {
                break;
            }
            while self.levels[l].len() >= self.level_capacity(l) {
                self.compact_level(l);
            }
        }
    }

    fn compact_cascade(&mut self) {
        let mut l = 0;
        while l < self.levels.len() {
            if self.levels[l].len() < self.level_capacity(l) {
                break;
            }
            self.compact_level(l);
            l += 1;
        }
    }

    fn level_capacity(&self, _l: usize) -> usize {
        self.k
    }

    /// Sorts level `l`, keeps every other item at doubled weight (parity from
    /// the deterministic counter), and charges `2^l` to the error bound.
    fn compact_level(&mut self, l: usize) {
        if self.levels.len() == l + 1 {
            self.levels.push(Vec::new());
        }
        let mut items = std::mem::take(&mut self.levels[l]);
        items.sort_by(|a, b| a.total_cmp(b));
        // An odd item count would drop half a weight; leave the last (largest)
        // item behind at this level so weights always balance exactly.
        if items.len() % 2 == 1 {
            self.levels[l].push(items.pop().expect("non-empty after parity check"));
        }
        if items.is_empty() {
            return;
        }
        self.rng = crate::shard::splitmix64(self.rng);
        let offset = (self.rng & 1) as usize;
        for (i, v) in items.into_iter().enumerate() {
            if i % 2 == offset {
                self.levels[l + 1].push(v);
            }
        }
        self.err_bound += 1u64 << l;
    }

    /// Number of stream values folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no values have been folded in.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Provable absolute rank-error bound for this instance: for any `v`,
    /// `|rank(v) - true_rank(v)| <= rank_error_bound()`, where `true_rank`
    /// counts stream values `<= v`.
    pub fn rank_error_bound(&self) -> u64 {
        self.err_bound
    }

    /// Approximate number of stream values `<= v` (weighted item count).
    pub fn rank(&self, v: f64) -> u64 {
        let mut r = 0u64;
        for (l, items) in self.levels.iter().enumerate() {
            let w = 1u64 << l;
            r += w * items.iter().filter(|x| x.total_cmp(&v).is_le()).count() as u64;
        }
        r
    }

    /// Approximate `q`-quantile for `q` in `[0, 1]` (`None` when empty):
    /// the smallest retained value whose cumulative weight reaches
    /// `ceil(q * count)`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let mut pairs: Vec<(f64, u64)> = Vec::new();
        for (l, items) in self.levels.iter().enumerate() {
            let w = 1u64 << l;
            pairs.extend(items.iter().map(|&v| (v, w)));
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (v, w) in &pairs {
            cum += w;
            if cum >= target {
                return Some(*v);
            }
        }
        pairs.last().map(|(v, _)| *v)
    }

    /// Bytes of heap + inline state currently held (the O(log n) budget the
    /// fleet engine accounts per house).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.levels.iter().map(|l| l.capacity() * std::mem::size_of::<f64>()).sum::<usize>()
            + self.levels.capacity() * std::mem::size_of::<Vec<f64>>()
    }
}

/// Fixed-width histogram over `[0, max)`, as used for the Fig. 2 power-level
/// distribution plot (100 W bins from 0 to 2400 W in the paper).
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// `n_bins` equal bins of `bin_width` starting at zero.
    pub fn new(bin_width: f64, n_bins: usize) -> Result<Self> {
        if bin_width <= 0.0 || !bin_width.is_finite() {
            return Err(Error::InvalidParameter {
                name: "bin_width",
                reason: format!("must be positive and finite, got {bin_width}"),
            });
        }
        if n_bins == 0 {
            return Err(Error::InvalidParameter {
                name: "n_bins",
                reason: "must be at least 1".to_string(),
            });
        }
        Ok(Histogram { bin_width, bins: vec![0; n_bins], underflow: 0, overflow: 0 })
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        if v < 0.0 {
            self.underflow += 1;
            return;
        }
        let idx = (v / self.bin_width) as usize;
        match self.bins.get_mut(idx) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of negative observations.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or beyond the last bin edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(lower_edge, count)` pairs.
    pub fn edges_and_counts(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bins.iter().enumerate().map(move |(i, &c)| (i as f64 * self.bin_width, c))
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// Maximum-likelihood log-normal fit: parameters of `ln X ~ N(mu, sigma^2)`
/// over the strictly positive observations. The paper observes (Fig. 2) that
/// smart-meter power levels follow a log-normal distribution; the Fig. 2
/// experiment fits and reports these parameters on the synthetic substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormalFit {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X`.
    pub sigma: f64,
    /// Number of positive observations used.
    pub n: u64,
    /// Fraction of observations discarded as non-positive.
    pub discarded_fraction: f64,
}

impl LogNormalFit {
    /// Fits over the positive subset of `values`.
    pub fn fit(values: &[f64]) -> Result<Self> {
        let mut m = RunningMoments::new();
        let mut discarded = 0u64;
        for &v in values {
            if v > 0.0 {
                m.push(v.ln());
            } else {
                discarded += 1;
            }
        }
        let n = m.count();
        if n == 0 {
            return Err(Error::EmptyInput("LogNormalFit: no positive values"));
        }
        Ok(LogNormalFit {
            mu: m.mean().unwrap(),
            sigma: m.std_dev().unwrap(),
            n,
            discarded_fraction: discarded as f64 / (discarded + n) as f64,
        })
    }

    /// Density of the fitted log-normal at `x > 0`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 || self.sigma == 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Kolmogorov–Smirnov distance between the empirical CDF of `values`
    /// (positive subset) and the fitted log-normal CDF. A small statistic
    /// supports the paper's log-normality observation.
    pub fn ks_statistic(&self, values: &[f64]) -> Result<f64> {
        let mut pos: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
        if pos.is_empty() {
            return Err(Error::EmptyInput("ks_statistic"));
        }
        pos.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ks input"));
        let n = pos.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in pos.iter().enumerate() {
            let cdf = self.cdf(x);
            let lo = i as f64 / n;
            let hi = (i + 1) as f64 / n;
            d = d.max((cdf - lo).abs()).max((hi - cdf).abs());
        }
        Ok(d)
    }

    /// CDF of the fitted log-normal at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        if self.sigma == 0.0 {
            return if x.ln() >= self.mu { 1.0 } else { 0.0 };
        }
        let z = (x.ln() - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (|error| < 1.5e-7, ample for distribution fitting and SAX breakpoints).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Inverse of the standard normal CDF (probit), via Acklam's rational
/// approximation (relative error < 1.15e-9). Used to build SAX's Gaussian
/// breakpoints for arbitrary alphabet sizes.
pub fn probit(p: f64) -> Result<f64> {
    if !(0.0 < p && p < 1.0) {
        return Err(Error::InvalidParameter {
            name: "p",
            reason: format!("must be strictly between 0 and 1, got {p}"),
        });
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_f64_order_matches_float_order() {
        let xs = [-1e9, -3.5, -0.0, 0.0, 1e-12, 2.0, 7e8];
        for w in xs.windows(2) {
            let a = FiniteF64::new(w[0]).unwrap();
            let b = FiniteF64::new(w[1]).unwrap();
            assert!(a <= b, "{} should sort before {}", w[0], w[1]);
        }
        assert!(FiniteF64::new(f64::NAN).is_err());
        assert!(FiniteF64::new(f64::INFINITY).is_err());
    }

    #[test]
    fn finite_f64_roundtrips() {
        for v in [-123.456, -0.0, 0.0, 1.0, 9e99] {
            assert_eq!(FiniteF64::new(v).unwrap().get(), v);
        }
    }

    #[test]
    fn running_moments_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = RunningMoments::new();
        for &x in &xs {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((m.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((m.std_dev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(9.0));
    }

    #[test]
    fn exact_quantiles_interpolate() {
        let q = ExactQuantiles::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(q.quantile(0.0), 1.0);
        assert_eq!(q.quantile(1.0), 4.0);
        assert!((q.median() - 2.5).abs() < 1e-12);
        assert!(ExactQuantiles::new(&[]).is_err());
    }

    #[test]
    fn p2_close_to_exact_on_uniform_stream() {
        // Deterministic pseudo-uniform stream via a simple LCG.
        let mut state: u64 = 42;
        let mut p2 = P2Quantile::new(0.5).unwrap();
        let mut all = Vec::new();
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (state >> 11) as f64 / (1u64 << 53) as f64;
            p2.push(v);
            all.push(v);
        }
        let exact = ExactQuantiles::new(&all).unwrap().median();
        let approx = p2.estimate().unwrap();
        assert!((approx - exact).abs() < 0.02, "approx {approx} vs exact {exact}");
    }

    #[test]
    fn p2_small_sample_falls_back_to_exact() {
        let mut p2 = P2Quantile::new(0.5).unwrap();
        p2.push(10.0);
        assert_eq!(p2.estimate(), Some(10.0));
        p2.push(20.0);
        assert!((p2.estimate().unwrap() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn p2_rejects_degenerate_q() {
        assert!(P2Quantile::new(0.0).is_err());
        assert!(P2Quantile::new(1.0).is_err());
    }

    #[test]
    fn multiset_median_and_distinct_median_differ_under_repeats() {
        // 0 appears very often (standby), a few large values.
        let mut ms = OrderedMultiset::new();
        for _ in 0..90 {
            ms.insert(0.0).unwrap();
        }
        for v in [100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0, 900.0, 1000.0] {
            ms.insert(v).unwrap();
        }
        assert_eq!(ms.len(), 100);
        assert_eq!(ms.median(), Some(0.0), "plain median biased toward the repeated value");
        // Distinct values: {0, 100..1000} = 11 values, median is the 6th = 500.
        assert_eq!(ms.distinct_median(), Some(500.0));
    }

    #[test]
    fn multiset_quantiles_walk_cumulative_counts() {
        let mut ms = OrderedMultiset::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            ms.insert(v).unwrap();
        }
        assert_eq!(ms.quantile(0.25), Some(1.0));
        assert_eq!(ms.quantile(0.5), Some(2.0));
        assert_eq!(ms.quantile(1.0), Some(4.0));
        assert_eq!(OrderedMultiset::new().median(), None);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(100.0, 3).unwrap();
        for v in [-5.0, 0.0, 99.9, 100.0, 250.0, 300.0, 1e6] {
            h.push(v);
        }
        assert_eq!(h.bins(), &[2, 1, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
        assert!(Histogram::new(0.0, 3).is_err());
        assert!(Histogram::new(1.0, 0).is_err());
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        // Deterministic log-normal-ish sample: exp(mu + sigma * z) over a
        // grid of probits.
        let (mu, sigma) = (5.0, 0.8);
        let mut vals = Vec::new();
        for i in 1..1000 {
            let p = i as f64 / 1000.0;
            let z = probit(p).unwrap();
            vals.push((mu + sigma * z).exp());
        }
        let fit = LogNormalFit::fit(&vals).unwrap();
        assert!((fit.mu - mu).abs() < 0.01, "mu {}", fit.mu);
        assert!((fit.sigma - sigma).abs() < 0.02, "sigma {}", fit.sigma);
        let ks = fit.ks_statistic(&vals).unwrap();
        assert!(ks < 0.01, "ks {ks}");
    }

    fn lcg_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 * 1000.0
            })
            .collect()
    }

    #[test]
    fn sketch_rank_stays_within_tracked_bound() {
        let vals = lcg_stream(7, 50_000);
        let mut sk = QuantileSketch::new(64).unwrap();
        for &v in &vals {
            sk.update(v).unwrap();
        }
        assert_eq!(sk.count(), vals.len() as u64);
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let v = sorted[((q * (sorted.len() - 1) as f64) as usize).min(sorted.len() - 1)];
            let true_rank = sorted.partition_point(|&x| x <= v) as i64;
            let est = sk.rank(v) as i64;
            let bound = sk.rank_error_bound() as i64;
            assert!(
                (est - true_rank).abs() <= bound,
                "q={q}: est rank {est} vs true {true_rank}, bound {bound}"
            );
        }
        // Worst-case tracked bound is ~levels·n/k; sanity-check it stays a
        // fraction of n rather than degenerating to n itself.
        assert!(
            sk.rank_error_bound() < vals.len() as u64 / 4,
            "bound {} too loose for n={}",
            sk.rank_error_bound(),
            vals.len()
        );
    }

    #[test]
    fn sketch_memory_stays_logarithmic() {
        let mut sk = QuantileSketch::new(64).unwrap();
        for v in lcg_stream(3, 200_000) {
            sk.update(v).unwrap();
        }
        // 200k values, k=64: ~log2(200k/64) ≈ 12 levels of ≤64 f64s each.
        assert!(sk.memory_bytes() < 32 * 1024, "memory {} bytes", sk.memory_bytes());
    }

    #[test]
    fn sketch_merge_matches_single_stream_count_and_bound() {
        let vals = lcg_stream(11, 8_192);
        let (a_half, b_half) = vals.split_at(vals.len() / 2);
        let mut a = QuantileSketch::new(32).unwrap();
        let mut b = QuantileSketch::new(32).unwrap();
        for &v in a_half {
            a.update(v).unwrap();
        }
        for &v in b_half {
            b.update(v).unwrap();
        }
        a.merge(&b);
        assert_eq!(a.count(), vals.len() as u64);
        let mut sorted = vals.clone();
        sorted.sort_by(|x, y| x.total_cmp(y));
        let mid = sorted[sorted.len() / 2];
        let true_rank = sorted.partition_point(|&x| x <= mid) as i64;
        assert!((a.rank(mid) as i64 - true_rank).abs() <= a.rank_error_bound() as i64);
    }

    #[test]
    fn sketch_is_deterministic() {
        let vals = lcg_stream(5, 10_000);
        let mut a = QuantileSketch::new(32).unwrap();
        let mut b = QuantileSketch::new(32).unwrap();
        for &v in &vals {
            a.update(v).unwrap();
            b.update(v).unwrap();
        }
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), b.quantile(q), "same stream, same sketch at q={q}");
        }
        assert_eq!(a.rank_error_bound(), b.rank_error_bound());
    }

    #[test]
    fn sketch_rejects_nan_accepts_infinities() {
        let mut sk = QuantileSketch::new(8).unwrap();
        assert!(sk.update(f64::NAN).is_err());
        assert!(sk.is_empty(), "rejected NaN must not count");
        sk.update(f64::NEG_INFINITY).unwrap();
        sk.update(0.0).unwrap();
        sk.update(f64::INFINITY).unwrap();
        assert_eq!(sk.quantile(0.0), Some(f64::NEG_INFINITY));
        assert_eq!(sk.quantile(1.0), Some(f64::INFINITY));
        assert_eq!(sk.rank(0.0), 2);
    }

    #[test]
    fn sketch_constant_stream_is_exact() {
        let mut sk = QuantileSketch::new(16).unwrap();
        for _ in 0..10_000 {
            sk.update(42.0).unwrap();
        }
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(sk.quantile(q), Some(42.0));
        }
        assert_eq!(sk.rank(42.0), 10_000);
        assert_eq!(sk.rank(41.9), 0);
    }

    #[test]
    fn sketch_validates_capacity() {
        assert!(QuantileSketch::new(0).is_err());
        assert!(QuantileSketch::new(1).is_err());
        assert!(QuantileSketch::new(2).is_ok());
        assert!(QuantileSketch::with_default_capacity().is_empty());
        assert_eq!(QuantileSketch::new(8).unwrap().quantile(0.5), None);
    }

    #[test]
    fn erf_and_probit_sanity() {
        assert!((erf(0.0)).abs() < 1e-6, "A&S 7.1.26 is accurate to ~1.5e-7");
        assert!((erf(10.0) - 1.0).abs() < 1e-7);
        assert!((erf(-10.0) + 1.0).abs() < 1e-7);
        assert!((probit(0.5).unwrap()).abs() < 1e-9);
        assert!((probit(0.975).unwrap() - 1.959964).abs() < 1e-4);
        assert!((probit(0.025).unwrap() + 1.959964).abs() < 1e-4);
        assert!(probit(0.0).is_err());
        assert!(probit(1.0).is_err());
    }
}
