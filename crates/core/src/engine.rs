//! Parallel fleet-encoding engine.
//!
//! The paper's evaluation encodes *hundreds of households* (Fig. 6–7 use the
//! full CER dataset); a serial [`SymbolicCodec`] walk over the fleet leaves
//! most of a multi-core sensor gateway idle. This module shards a fleet of
//! household streams across worker threads connected by bounded channels:
//!
//! ```text
//!                 ┌──────────┐  house indices   ┌───────────┐
//!  fleet: &[TS] ─▶│  feeder  │═════bounded═════▶│ worker 0  │──┐
//!                 └──────────┘       MPMC       ├───────────┤  │ (idx, Ŝ)
//!                                          ════▶│ worker 1  │──┼═══════▶ collector
//!                                          ════▶│    …      │──┘   places results[idx]
//!                                               └───────────┘
//! ```
//!
//! * **Batch API** — [`FleetEngine::encode_fleet`] / [`encode_fleet`]: every
//!   house index travels through one bounded MPMC channel, each worker owns
//!   reusable scratch buffers ([`SymbolicCodec::encode_into`]) so the hot
//!   loop is allocation-free, and the collector writes results back by house
//!   index, which makes the output **byte-identical to the serial codec
//!   regardless of worker count**.
//! * **Streaming API** — [`FleetStream`]: feed `(house, chunk)` pairs, drain
//!   [`WindowEvent`]s; houses are pinned to workers (`house % workers`) so
//!   per-house symbol order is preserved, and both the per-worker input
//!   channels and the shared output channel are bounded, giving end-to-end
//!   backpressure.
//! * **Table modes** — [`TableMode::PerHouse`] learns one lookup table per
//!   household (the paper's default protocol); [`TableMode::Shared`] pools
//!   training values across the fleet and learns a single table reused by
//!   every house (the global all-houses table of Fig. 7).
//!
//! Throughput counters ([`EngineStats`]) report samples/sec, symbols/sec and
//! per-stage wall time, and serialize to JSON for benchmark trajectories.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use crossbeam::channel;

use crate::encoder::{EncodedWindow, OnlineEncoder};
use crate::error::{Error, Result};
use crate::horizontal::SymbolicSeries;
use crate::json::JsonWriter;
use crate::pipeline::{CodecBuilder, SymbolicCodec, VerticalPolicy};
use crate::pool::{Outcome, PoolStats, RetryPolicy, SupervisorPolicy};
use crate::quality::{QualityStats, Sanitizer, SanitizerConfig};
use crate::telemetry::{Log2Histogram, Registry, SpanSnapshot};
use crate::timeseries::{TimeSeries, Timestamp};

/// How the engine obtains lookup tables for a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableMode {
    /// Learn one lookup table per household from that household's own
    /// history (the paper's per-customer protocol). Matches calling
    /// `builder.train(house)` per house.
    #[default]
    PerHouse,
    /// Pool training values across all households, learn **one** table, and
    /// reuse it for every house (the global table of Fig. 7). Training cost
    /// is paid once instead of per house.
    Shared,
}

/// How [`FleetEngine::encode_fleet`] treats a house that cannot be encoded
/// (its series fails sanitization, its job exhausts every retry, or the run
/// deadline skips it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuarantinePolicy {
    /// The first failing house fails the whole run with a typed error (the
    /// legacy behavior, minus the process abort).
    #[default]
    Strict,
    /// Failing houses are quarantined into
    /// [`FleetEncoding::quarantined`] with their reason while every healthy
    /// house still encodes — byte-identically to a serial run over the same
    /// healthy set.
    Isolate,
}

/// Deterministic chaos-injection plan for the supervised encode stage:
/// selected houses panic on their first `panics_per_job` attempts. Used by
/// the fault-injection tests and the `repro quality --faults` experiment; a
/// house recovers iff the engine's [`RetryPolicy`] allows more attempts
/// than the plan poisons.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PanicPlan {
    /// Fleet indices of the houses whose jobs panic.
    pub houses: BTreeSet<usize>,
    /// How many leading attempts panic for each selected house.
    pub panics_per_job: u32,
}

/// Why a house landed in [`FleetEncoding::quarantined`].
#[derive(Debug, Clone, PartialEq)]
pub enum QuarantineReason {
    /// The sanitizer rejected the house's series (a defect whose policy is
    /// [`crate::quality::Policy::Reject`]).
    DirtyData(Error),
    /// The encode job returned a typed error (e.g. empty series).
    EncodeError(Error),
    /// The encode job panicked on every allowed attempt.
    Panicked {
        /// Rendered payload of the final panic.
        message: String,
        /// Attempts consumed.
        attempts: u32,
    },
    /// The run deadline elapsed before the job could start.
    TimedOut,
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::DirtyData(e) => write!(f, "dirty data: {e}"),
            QuarantineReason::EncodeError(e) => write!(f, "encode error: {e}"),
            QuarantineReason::Panicked { message, attempts } => {
                write!(f, "panicked after {attempts} attempt(s): {message}")
            }
            QuarantineReason::TimedOut => write!(f, "run deadline elapsed before encode"),
        }
    }
}

/// One quarantined house of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct Quarantined {
    /// Fleet index of the house.
    pub house: usize,
    /// Why it was quarantined.
    pub reason: QuarantineReason,
}

/// Configuration of the parallel engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker thread count; `0` is treated as `1`.
    pub workers: usize,
    /// Per-house or shared lookup tables.
    pub table_mode: TableMode,
    /// Capacity of each bounded channel (work queue and streaming output).
    pub channel_capacity: usize,
    /// Abort the run or quarantine failing houses.
    pub quarantine: QuarantinePolicy,
    /// Sanitization pre-pass applied to every house before encoding
    /// (`None` skips it: input is trusted to uphold the clean invariants).
    pub sanitizer: Option<SanitizerConfig>,
    /// Retry schedule for panicking encode jobs (only consulted under
    /// [`QuarantinePolicy::Isolate`]; the default never retries).
    pub retry: RetryPolicy,
    /// Per-run deadline for the supervised encode stage.
    pub deadline: Option<Duration>,
    /// Deterministic panic injection for robustness tests (`None` in
    /// production).
    pub chaos: Option<PanicPlan>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            table_mode: TableMode::PerHouse,
            channel_capacity: 64,
            quarantine: QuarantinePolicy::default(),
            sanitizer: None,
            retry: RetryPolicy::default(),
            deadline: None,
            chaos: None,
        }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count and defaults otherwise.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig { workers, ..Self::default() }
    }

    /// Sets the table mode.
    pub fn table_mode(mut self, mode: TableMode) -> Self {
        self.table_mode = mode;
        self
    }

    /// Sets the bounded-channel capacity (min 1).
    pub fn channel_capacity(mut self, cap: usize) -> Self {
        self.channel_capacity = cap.max(1);
        self
    }

    /// Sets the quarantine policy.
    pub fn quarantine(mut self, policy: QuarantinePolicy) -> Self {
        self.quarantine = policy;
        self
    }

    /// Enables the sanitization pre-pass.
    pub fn sanitizer(mut self, config: SanitizerConfig) -> Self {
        self.sanitizer = Some(config);
        self
    }

    /// Sets the retry schedule for panicking encode jobs.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the per-run encode deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Installs a deterministic panic-injection plan (tests only).
    pub fn chaos(mut self, plan: PanicPlan) -> Self {
        self.chaos = Some(plan);
        self
    }
}

/// Throughput counters for one engine run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineStats {
    /// Worker threads used.
    pub workers: usize,
    /// Households encoded.
    pub houses: usize,
    /// Raw samples consumed.
    pub samples_in: u64,
    /// Symbols produced.
    pub symbols_out: u64,
    /// Wall time of the up-front training stage, seconds. In
    /// [`TableMode::PerHouse`] training happens inside the encode stage, so
    /// this covers only the shared-table pre-pass and is `0` there.
    pub train_secs: f64,
    /// Wall time of the parallel encode stage, seconds.
    pub encode_secs: f64,
    /// Wire-ingest counters, when the run consumed a byte stream through
    /// [`crate::ingest`] (`None` for purely in-memory encodes).
    pub ingest: Option<crate::ingest::IngestStats>,
    /// Evaluation counters, when the run drove a parallel experiment matrix
    /// (`None` for pure encode runs).
    pub eval: Option<EvalStats>,
    /// Worker-pool counters (queue depth, panics, retries, deadline skips)
    /// when the run dispatched jobs through [`crate::pool`].
    pub pool: Option<PoolStats>,
    /// Data-quality counters when the run sanitized or quarantined houses.
    pub quality: Option<QualityStats>,
    /// Network-gateway counters when the run terminated meter connections
    /// through [`crate::gateway`] (`None` for in-process runs).
    pub gateway: Option<crate::gateway::GatewayStats>,
    /// Sharding counters when the run partitioned fleet state through
    /// [`crate::shard`] (`None` for monolithic runs).
    pub shard: Option<crate::shard::ShardStats>,
    /// Segment-store counters when the run persisted encoded output
    /// through [`crate::segstore`] (`None` when output stayed in memory).
    pub store: Option<crate::segstore::StoreStats>,
    /// Durability counters when the run wrote through the WAL + checkpoint
    /// layer of [`crate::durable`] (`None` for in-memory stores).
    pub durable: Option<crate::durable::DurableStats>,
    /// Drift-adaptation counters when the run re-learned separators online
    /// through [`crate::adaptive`] (`None` when drift detection was off).
    pub adaptive: Option<crate::adaptive::AdaptiveStats>,
    /// Distribution of per-house input sample counts. Deterministic (a
    /// pure function of the input fleet), rendered in the `"histograms"`
    /// section of [`to_json`](Self::to_json).
    pub house_samples: Log2Histogram,
    /// Distribution of per-house output symbol counts (quarantined houses
    /// observe their empty placeholder, i.e. `0`).
    pub house_symbols: Log2Histogram,
    /// Distribution of per-house value counts pushed through the columnar
    /// encode fast path (one observation per *active* house; quarantined
    /// houses never reach the encoder). Deterministic — a pure function of
    /// the input fleet, independent of worker count.
    pub encode_batch_values: Log2Histogram,
    /// Stage-attribution spans recorded during the run
    /// (`encode_fleet` → `sanitize` / `train` / `encode`), sorted by
    /// path. Paths and call counts are deterministic; the seconds are
    /// wall-clock.
    pub spans: Vec<SpanSnapshot>,
}

/// Timing counters for a parallel evaluation run (cross-validated
/// classification cells dispatched through [`crate::pool`]). Mirrors the
/// paper's habit of reporting *processing time* next to F-measure
/// (Figs. 5–7), and merges into [`EngineStats::to_json`] like the ingest
/// block.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalStats {
    /// Experiment cells completed.
    pub cells: u64,
    /// Cross-validation folds executed (k × runs per cell, summed).
    pub folds: u64,
    /// Total per-fold training wall time, seconds.
    pub train_secs: f64,
    /// Total per-fold prediction wall time, seconds.
    pub test_secs: f64,
    /// Worker threads used by the evaluation pool.
    pub workers: usize,
    /// High-water mark of the evaluation pool's job queue.
    pub max_queue_depth: usize,
    /// Distribution of test-set sizes over the executed folds (one
    /// observation per fold). Rendered in the `"histograms"` section of
    /// [`EngineStats::to_json`], not this block's object.
    pub fold_test_rows: Log2Histogram,
}

impl EvalStats {
    /// Registers this block's [`crate::telemetry::CATALOG`] metrics into
    /// `reg` and loads their current values.
    pub fn register_into(&self, reg: &Registry) {
        reg.register_block("eval");
        reg.add("sms_eval_cells", self.cells);
        reg.add("sms_eval_folds", self.folds);
        reg.set_f64("sms_eval_train_secs", self.train_secs);
        reg.set_f64("sms_eval_test_secs", self.test_secs);
        reg.set("sms_eval_workers", self.workers as u64);
        reg.set_max("sms_eval_max_queue_depth", self.max_queue_depth as u64);
        reg.merge_histogram("sms_eval_fold_test_rows", &self.fold_test_rows);
    }
}

impl EngineStats {
    /// Raw samples consumed per wall-clock second (train + encode).
    pub fn samples_per_sec(&self) -> f64 {
        self.samples_in as f64 / (self.train_secs + self.encode_secs).max(f64::MIN_POSITIVE)
    }

    /// Symbols produced per wall-clock second (train + encode).
    pub fn symbols_per_sec(&self) -> f64 {
        self.symbols_out as f64 / (self.train_secs + self.encode_secs).max(f64::MIN_POSITIVE)
    }

    /// Registers every metric of this run — the engine block plus every
    /// present sub-block and recorded span — into `reg`. This is how a
    /// `repro <exp> --metrics` session registry picks up a finished run's
    /// counters for the Prometheus exporter.
    pub fn register_into(&self, reg: &Registry) {
        reg.register_block("engine");
        reg.set("sms_engine_workers", self.workers as u64);
        reg.set("sms_engine_houses", self.houses as u64);
        reg.add("sms_engine_samples_in", self.samples_in);
        reg.add("sms_engine_symbols_out", self.symbols_out);
        reg.set_f64("sms_engine_train_secs", self.train_secs);
        reg.set_f64("sms_engine_encode_secs", self.encode_secs);
        reg.set_f64("sms_engine_samples_per_sec", self.samples_per_sec());
        reg.set_f64("sms_engine_symbols_per_sec", self.symbols_per_sec());
        reg.merge_histogram("sms_engine_house_samples", &self.house_samples);
        reg.merge_histogram("sms_engine_house_symbols", &self.house_symbols);
        reg.merge_histogram("sms_engine_encode_batch_values", &self.encode_batch_values);
        if let Some(ingest) = &self.ingest {
            ingest.register_into(reg);
        }
        if let Some(eval) = &self.eval {
            eval.register_into(reg);
        }
        if let Some(pool) = &self.pool {
            pool.register_into(reg);
        }
        if let Some(quality) = &self.quality {
            quality.register_into(reg);
        }
        if let Some(gateway) = &self.gateway {
            gateway.register_into(reg);
        }
        if let Some(shard) = &self.shard {
            shard.register_into(reg);
        }
        if let Some(store) = &self.store {
            store.register_into(reg);
        }
        if let Some(durable) = &self.durable {
            durable.register_into(reg);
        }
        if let Some(adaptive) = &self.adaptive {
            adaptive.register_into(reg);
        }
        for s in &self.spans {
            reg.record_span(&s.path, s.calls, s.secs);
        }
    }

    /// JSON object for benchmark trajectories. Scalar keys are unchanged
    /// from the pre-telemetry layout (they now render from the
    /// [`crate::telemetry::CATALOG`]); the `"histograms"` and `"spans"`
    /// sections are additive.
    pub fn to_json(&self) -> String {
        let reg = Registry::new();
        self.register_into(&reg);
        let mut w = JsonWriter::new();
        w.begin_object();
        reg.write_block_fields(&mut w, "engine");
        if self.ingest.is_some() {
            w.key("ingest");
            reg.write_block_json(&mut w, "ingest");
        }
        if self.eval.is_some() {
            w.key("eval");
            reg.write_block_json(&mut w, "eval");
        }
        if self.pool.is_some() {
            w.key("pool");
            reg.write_block_json(&mut w, "pool");
        }
        if self.quality.is_some() {
            w.key("quality");
            reg.write_block_json(&mut w, "quality");
        }
        if self.gateway.is_some() {
            w.key("gateway");
            reg.write_block_json(&mut w, "gateway");
        }
        if self.shard.is_some() {
            w.key("shard");
            reg.write_block_json(&mut w, "shard");
        }
        if self.store.is_some() {
            w.key("store");
            reg.write_block_json(&mut w, "store");
        }
        if self.durable.is_some() {
            w.key("durable");
            reg.write_block_json(&mut w, "durable");
        }
        if self.adaptive.is_some() {
            w.key("adaptive");
            reg.write_block_json(&mut w, "adaptive");
        }
        w.key("histograms");
        reg.write_histograms_json(&mut w);
        w.key("spans");
        reg.write_spans_json(&mut w);
        w.end_object();
        w.finish()
    }
}

/// The result of a batch fleet encode: one symbolic series per input house
/// (same order), plus throughput counters and (under
/// [`QuarantinePolicy::Isolate`]) the houses that could not be encoded.
#[derive(Debug, Clone)]
pub struct FleetEncoding {
    /// `series[i]` encodes `fleet[i]`. A quarantined house's slot holds an
    /// **empty placeholder** series (at the codec's resolution) so indices
    /// stay aligned with the input fleet; consult
    /// [`quarantined`](Self::quarantined) before consuming a slot.
    pub series: Vec<SymbolicSeries>,
    /// Houses that failed sanitization or encoding, in index order. Empty
    /// under [`QuarantinePolicy::Strict`] (failures error out instead).
    pub quarantined: Vec<Quarantined>,
    /// Throughput counters for the run.
    pub stats: EngineStats,
}

impl FleetEncoding {
    /// Whether `house` was quarantined.
    pub fn is_quarantined(&self, house: usize) -> bool {
        self.quarantined.iter().any(|q| q.house == house)
    }
}

/// A configured parallel encoder for fleets of household streams.
#[derive(Debug, Clone)]
pub struct FleetEngine {
    builder: CodecBuilder,
    config: EngineConfig,
}

impl FleetEngine {
    /// Assembles an engine from a codec recipe and a parallelism config.
    pub fn new(builder: CodecBuilder, config: EngineConfig) -> Self {
        FleetEngine { builder, config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Encodes every house of `fleet`, returning symbolic series in input
    /// order plus throughput counters. Output is byte-identical to training
    /// and encoding each house serially with the same [`CodecBuilder`],
    /// regardless of `workers` — and under [`QuarantinePolicy::Isolate`]
    /// the surviving houses stay byte-identical to a serial run over the
    /// same healthy set while failing houses are reported in
    /// [`FleetEncoding::quarantined`] instead of failing the run.
    pub fn encode_fleet(&self, fleet: &[TimeSeries]) -> Result<FleetEncoding> {
        let workers = self.config.workers.max(1);
        let samples_in: u64 = fleet.iter().map(|h| h.len() as u64).sum();
        // Stage spans for this run; snapshotted into `EngineStats::spans`.
        // The paths and call counts are deterministic, only the recorded
        // seconds are wall-clock.
        let telemetry = Registry::new();
        let span_run = telemetry.span("encode_fleet");
        let mut house_samples = Log2Histogram::new();
        for house in fleet {
            house_samples.observe(house.len() as u64);
        }

        // Sanitization pre-pass. Deliberately serial: quarantine decisions
        // happen before any parallelism so they are reproducible at every
        // worker count, and the single pass is cheap next to encoding.
        let mut quarantined: Vec<Quarantined> = Vec::new();
        let mut quality: Option<QualityStats> = None;
        let mut prepared: Vec<Option<Cow<'_, TimeSeries>>> = Vec::with_capacity(fleet.len());
        if let Some(cfg) = self.config.sanitizer {
            let _span = telemetry.span("sanitize");
            let sanitize_start = Instant::now();
            let sanitizer = Sanitizer::new(cfg);
            let mut qstats = QualityStats::default();
            for (house, series) in fleet.iter().enumerate() {
                match sanitizer.sanitize(series) {
                    Ok((clean, report)) => {
                        qstats.merge_report(&report);
                        prepared.push(Some(Cow::Owned(clean)));
                    }
                    Err(e) => match self.config.quarantine {
                        QuarantinePolicy::Strict => return Err(e),
                        QuarantinePolicy::Isolate => {
                            qstats.houses += 1;
                            quarantined.push(Quarantined {
                                house,
                                reason: QuarantineReason::DirtyData(e),
                            });
                            prepared.push(None);
                        }
                    },
                }
            }
            qstats.sanitize_secs = sanitize_start.elapsed().as_secs_f64();
            quality = Some(qstats);
        } else {
            prepared.extend(fleet.iter().map(|s| Some(Cow::Borrowed(s))));
        }

        // Shared-table training pools values from the surviving houses
        // only: a quarantined house contributes nothing to the fleet table
        // (the documented deviation from a no-fault run — its dirty values
        // must not shape everyone else's separators).
        let train_start = Instant::now();
        let shared_codec = {
            let _span = telemetry.span("train");
            match self.config.table_mode {
                TableMode::PerHouse => None,
                TableMode::Shared => Some(self.train_shared(
                    prepared.iter().filter_map(|p| p.as_ref().map(|c| c.as_ref())),
                )?),
            }
        };
        let train_secs = train_start.elapsed().as_secs_f64();

        let encode_start = Instant::now();
        let span_encode = telemetry.span("encode");
        let active: Vec<usize> =
            prepared.iter().enumerate().filter(|(_, p)| p.is_some()).map(|(i, _)| i).collect();
        let mut results: Vec<Option<SymbolicSeries>> = fleet.iter().map(|_| None).collect();
        let mut pool_stats = PoolStats::default();
        if !active.is_empty() {
            pool_stats = match self.config.quarantine {
                QuarantinePolicy::Strict => self.run_batch_strict(
                    &prepared,
                    &active,
                    shared_codec.as_ref(),
                    workers,
                    &mut results,
                )?,
                QuarantinePolicy::Isolate => self.run_batch_isolated(
                    &prepared,
                    &active,
                    shared_codec.as_ref(),
                    workers,
                    &mut results,
                    &mut quarantined,
                ),
            };
        }
        drop(span_encode);
        let encode_secs = encode_start.elapsed().as_secs_f64();

        // Sanitize-phase and encode-phase quarantines both exist now; a
        // single index-ordered list keeps reports deterministic.
        quarantined.sort_by_key(|q| q.house);
        match (&mut quality, quarantined.is_empty()) {
            (Some(q), _) => q.quarantined = quarantined.len() as u64,
            (None, false) => {
                quality = Some(QualityStats {
                    houses: fleet.len() as u64,
                    quarantined: quarantined.len() as u64,
                    ..QualityStats::default()
                });
            }
            (None, true) => {}
        }

        let placeholder = SymbolicSeries::new(self.builder.resolution())?;
        let series: Vec<SymbolicSeries> = results
            .into_iter()
            .enumerate()
            .map(|(house, r)| match r {
                Some(s) => Ok(s),
                None if quarantined.iter().any(|q| q.house == house) => Ok(placeholder.clone()),
                None => Err(Error::Engine(format!("worker dropped house {house}"))),
            })
            .collect::<Result<_>>()?;
        let symbols_out: u64 = series.iter().map(|s| s.len() as u64).sum();
        let mut house_symbols = Log2Histogram::new();
        for s in &series {
            house_symbols.observe(s.len() as u64);
        }
        // Columnar fast-path volume: every active house's aggregated series
        // went through `LookupTable::encode_samples_into` as one batch, so
        // its value count equals the house's symbol count. Observed here on
        // the main thread (not in the workers) so the histogram is identical
        // at every worker count.
        let mut encode_batch_values = Log2Histogram::new();
        for (house, s) in series.iter().enumerate() {
            if !quarantined.iter().any(|q| q.house == house) {
                encode_batch_values.observe(s.len() as u64);
            }
        }
        drop(span_run);
        Ok(FleetEncoding {
            series,
            quarantined,
            stats: EngineStats {
                workers,
                houses: fleet.len(),
                samples_in,
                symbols_out,
                train_secs,
                encode_secs,
                ingest: None,
                eval: None,
                pool: if fleet.is_empty() { None } else { Some(pool_stats) },
                quality,
                gateway: None,
                shard: None,
                store: None,
                durable: None,
                adaptive: None,
                house_samples,
                house_symbols,
                encode_batch_values,
                spans: telemetry.span_snapshots(),
            },
        })
    }

    /// Pools training values across the given houses and learns one shared
    /// codec.
    fn train_shared<'a>(
        &self,
        houses: impl Iterator<Item = &'a TimeSeries>,
    ) -> Result<SymbolicCodec> {
        let mut pool = Vec::new();
        for house in houses {
            if !house.is_empty() {
                pool.extend(self.builder.training_values(house)?);
            }
        }
        self.builder.learn_from_values(&pool)
    }

    /// The strict fan-out/fan-in path on the legacy [`crate::pool`] entry
    /// point: any failing house fails the run (typed error, not an abort).
    fn run_batch_strict(
        &self,
        prepared: &[Option<Cow<'_, TimeSeries>>],
        active: &[usize],
        shared: Option<&SymbolicCodec>,
        workers: usize,
        results: &mut [Option<SymbolicSeries>],
    ) -> Result<PoolStats> {
        let config = crate::pool::PoolConfig {
            workers,
            channel_capacity: self.config.channel_capacity.max(1),
        };
        let builder = &self.builder;
        let chaos = self.config.chaos.as_ref();
        let (encoded, stats) = crate::pool::run_indexed_with(
            active.len(),
            &config,
            || (TimeSeries::new(), SymbolicSeries::new(1).expect("1 bit is a valid resolution")),
            |(scratch, out), job| {
                let house = active[job];
                inject_chaos(chaos, house, 1);
                let series = prepared[house].as_ref().expect("active houses are prepared");
                encode_one(series, shared, builder, scratch, out)
            },
        )?;
        // Index order makes which error surfaces deterministic too.
        for (job, enc) in encoded.into_iter().enumerate() {
            results[active[job]] = Some(enc?);
        }
        Ok(stats)
    }

    /// The supervised path: panicking jobs are caught and retried per the
    /// engine's [`RetryPolicy`]; houses that still fail land in
    /// `quarantined` instead of failing the run.
    fn run_batch_isolated(
        &self,
        prepared: &[Option<Cow<'_, TimeSeries>>],
        active: &[usize],
        shared: Option<&SymbolicCodec>,
        workers: usize,
        results: &mut [Option<SymbolicSeries>],
        quarantined: &mut Vec<Quarantined>,
    ) -> PoolStats {
        let config = crate::pool::PoolConfig {
            workers,
            channel_capacity: self.config.channel_capacity.max(1),
        };
        let mut policy = SupervisorPolicy::with_retry(self.config.retry);
        policy.deadline = self.config.deadline;
        let builder = &self.builder;
        let chaos = self.config.chaos.as_ref();
        let report = crate::pool::run_indexed_supervised_with(
            active.len(),
            &config,
            &policy,
            || (TimeSeries::new(), SymbolicSeries::new(1).expect("1 bit is a valid resolution")),
            |(scratch, out), job, attempt| {
                let house = active[job];
                inject_chaos(chaos, house, attempt);
                let series = prepared[house].as_ref().expect("active houses are prepared");
                encode_one(series, shared, builder, scratch, out)
            },
        );
        for (job, outcome) in report.results.into_iter().enumerate() {
            let house = active[job];
            match outcome {
                Outcome::Ok(Ok(s)) | Outcome::Retried { value: Ok(s), .. } => {
                    results[house] = Some(s)
                }
                Outcome::Ok(Err(e)) | Outcome::Retried { value: Err(e), .. } => quarantined
                    .push(Quarantined { house, reason: QuarantineReason::EncodeError(e) }),
                Outcome::Panicked { message, attempts } => quarantined.push(Quarantined {
                    house,
                    reason: QuarantineReason::Panicked { message, attempts },
                }),
                Outcome::TimedOut => {
                    quarantined.push(Quarantined { house, reason: QuarantineReason::TimedOut })
                }
            }
        }
        report.stats
    }
}

/// Panics iff the chaos plan poisons this `(house, attempt)` pair. The
/// panic is deliberately *injected above* the pool's `catch_unwind`, so the
/// tests exercise the same recovery machinery a genuine encoder bug would.
fn inject_chaos(plan: Option<&PanicPlan>, house: usize, attempt: u32) {
    if let Some(plan) = plan {
        if plan.houses.contains(&house) && attempt <= plan.panics_per_job {
            panic!("injected fault: house {house} attempt {attempt}");
        }
    }
}

/// Encodes one house, training a per-house codec unless a shared one is given.
fn encode_one(
    house: &TimeSeries,
    shared: Option<&SymbolicCodec>,
    builder: &CodecBuilder,
    scratch: &mut TimeSeries,
    out: &mut SymbolicSeries,
) -> Result<SymbolicSeries> {
    let per_house;
    let codec = match shared {
        Some(c) => c,
        None => {
            per_house = builder.train(house)?;
            &per_house
        }
    };
    codec.encode_into(house, scratch, out)?;
    Ok(out.clone())
}

/// One-shot convenience: encode a fleet and keep only the symbolic series.
pub fn encode_fleet(
    fleet: &[TimeSeries],
    builder: &CodecBuilder,
    config: &EngineConfig,
) -> Result<Vec<SymbolicSeries>> {
    Ok(FleetEngine::new(builder.clone(), config.clone()).encode_fleet(fleet)?.series)
}

// ---------------------------------------------------------------------------
// Streaming API
// ---------------------------------------------------------------------------

/// A closed window emitted by the streaming engine, tagged with its house.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowEvent {
    /// Index of the household the window belongs to.
    pub house: usize,
    /// The encoded window.
    pub window: EncodedWindow,
}

enum StreamJob {
    Chunk { house: usize, samples: Vec<(Timestamp, f64)> },
}

/// Smallest backpressure wait of [`FleetStream::feed_timeout`]'s exponential
/// backoff schedule.
const BACKOFF_START: std::time::Duration = std::time::Duration::from_micros(50);

/// Largest single backpressure wait of the backoff schedule: waits double
/// from [`BACKOFF_START`] and saturate here, so a stalled pipeline is polled
/// every few milliseconds rather than busily.
const BACKOFF_CAP: std::time::Duration = std::time::Duration::from_millis(5);

/// Streaming fleet encoder: feed raw `(house, chunk)` readings, drain
/// [`WindowEvent`]s as windows close.
///
/// Each house is pinned to worker `house % workers`, whose input channel is
/// FIFO, so symbols of one house always arrive in timestamp order. Input and
/// output channels are bounded: a slow consumer stalls the workers, which
/// stalls [`FleetStream::feed`] — backpressure end to end.
///
/// Three feed flavors trade blocking for error reporting:
///
/// * [`feed`](Self::feed) — blocks while the queues are full; simplest when
///   the caller interleaves [`drain`](Self::drain) correctly;
/// * [`try_feed`](Self::try_feed) — never blocks; returns
///   [`Error::WouldBlock`] when the pipeline is saturated;
/// * [`feed_timeout`](Self::feed_timeout) — retries with bounded
///   exponential backoff and returns [`Error::FeedTimeout`] when the
///   pipeline never drained; the hardened choice for producers that cannot
///   guarantee a draining consumer.
///
/// Every rejected or retried send is counted as a *backpressure stall*
/// ([`backpressure_stalls`](Self::backpressure_stalls)), surfaced through
/// [`crate::ingest::IngestStats`].
pub struct FleetStream {
    inputs: Vec<channel::Sender<StreamJob>>,
    events: channel::Receiver<Result<WindowEvent>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    samples_in: u64,
    symbols_out: u64,
    stalls: u64,
}

impl std::fmt::Debug for FleetStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetStream")
            .field("workers", &self.handles.len())
            .field("samples_in", &self.samples_in)
            .field("symbols_out", &self.symbols_out)
            .finish()
    }
}

impl FleetStream {
    /// Spawns `workers` threads that encode with clones of `codec`'s lookup
    /// table through per-house [`OnlineEncoder`]s. The codec must use a
    /// wall-clock [`VerticalPolicy::Window`] policy (the online encoder is
    /// window-based).
    pub fn spawn(codec: &SymbolicCodec, config: &EngineConfig) -> Result<FleetStream> {
        let (window_secs, min_samples) = match codec.vertical_policy() {
            VerticalPolicy::Window { window_secs, min_samples } => (window_secs, min_samples),
            other => {
                return Err(Error::InvalidParameter {
                    name: "codec",
                    reason: format!("FleetStream needs a wall-clock Window policy, got {other:?}"),
                })
            }
        };
        let workers = config.workers.max(1);
        let cap = config.channel_capacity.max(1);
        let (event_tx, events) = channel::bounded::<Result<WindowEvent>>(cap);
        let mut inputs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::bounded::<StreamJob>(cap);
            inputs.push(tx);
            let event_tx = event_tx.clone();
            let table = codec.table().clone();
            let aggregation = codec.aggregation();
            handles.push(std::thread::spawn(move || {
                stream_worker(rx, event_tx, table, window_secs, min_samples, aggregation)
            }));
        }
        Ok(FleetStream { inputs, events, handles, samples_in: 0, symbols_out: 0, stalls: 0 })
    }

    /// Feeds a chunk of raw readings for one house. Blocks while the
    /// engine's queues are full (backpressure), so interleave
    /// [`FleetStream::drain`] calls with `feed`. A producer that never
    /// drains will block here indefinitely once the bounded event queue
    /// fills — use [`try_feed`](Self::try_feed) or
    /// [`feed_timeout`](Self::feed_timeout) to get an error instead of a
    /// stall. Timestamps must be non-decreasing per house across all chunks.
    pub fn feed(&mut self, house: usize, chunk: &[(Timestamp, f64)]) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let worker = house % self.inputs.len();
        self.inputs[worker]
            .send(StreamJob::Chunk { house, samples: chunk.to_vec() })
            .map_err(|_| Error::Engine(format!("stream worker {worker} is gone")))?;
        self.samples_in += chunk.len() as u64;
        Ok(())
    }

    /// Non-blocking [`feed`](Self::feed): enqueues the chunk if its worker
    /// has room right now, otherwise counts a backpressure stall and
    /// returns [`Error::WouldBlock`] without queueing anything. The caller
    /// should [`drain`](Self::drain) and retry.
    pub fn try_feed(&mut self, house: usize, chunk: &[(Timestamp, f64)]) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let worker = house % self.inputs.len();
        match self.inputs[worker].try_send(StreamJob::Chunk { house, samples: chunk.to_vec() }) {
            Ok(()) => {
                self.samples_in += chunk.len() as u64;
                Ok(())
            }
            Err(channel::TrySendError::Full(_)) => {
                self.stalls += 1;
                Err(Error::WouldBlock)
            }
            Err(channel::TrySendError::Disconnected(_)) => {
                Err(Error::Engine(format!("stream worker {worker} is gone")))
            }
        }
    }

    /// [`feed`](Self::feed) with a deadline: retries a full queue with
    /// bounded exponential backoff (50 µs doubling to 5 ms) and gives up
    /// with [`Error::FeedTimeout`] once `timeout` has elapsed, so a
    /// never-draining pipeline produces an error instead of the blocking
    /// `feed`'s indefinite stall. Each backoff wait counts as a
    /// backpressure stall.
    pub fn feed_timeout(
        &mut self,
        house: usize,
        chunk: &[(Timestamp, f64)],
        timeout: std::time::Duration,
    ) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let worker = house % self.inputs.len();
        let start = Instant::now();
        let mut backoff = BACKOFF_START;
        let mut job = StreamJob::Chunk { house, samples: chunk.to_vec() };
        loop {
            match self.inputs[worker].try_send(job) {
                Ok(()) => {
                    self.samples_in += chunk.len() as u64;
                    return Ok(());
                }
                Err(channel::TrySendError::Disconnected(_)) => {
                    return Err(Error::Engine(format!("stream worker {worker} is gone")));
                }
                Err(channel::TrySendError::Full(j)) => {
                    job = j;
                    self.stalls += 1;
                    let elapsed = start.elapsed();
                    if elapsed >= timeout {
                        return Err(Error::FeedTimeout { waited_ms: elapsed.as_millis() as u64 });
                    }
                    std::thread::sleep(backoff.min(timeout - elapsed));
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                }
            }
        }
    }

    /// Drains every window event currently available without blocking.
    pub fn drain(&mut self) -> Result<Vec<WindowEvent>> {
        let mut out = Vec::new();
        while let Ok(ev) = self.events.try_recv() {
            out.push(ev?);
        }
        self.symbols_out += out.len() as u64;
        Ok(out)
    }

    /// Closes the inputs, flushes every house's final partial window, joins
    /// the workers, and returns the remaining events.
    pub fn finish(mut self) -> Result<Vec<WindowEvent>> {
        self.inputs.clear(); // disconnect: workers flush and exit
        let mut out = Vec::new();
        for ev in self.events.iter() {
            match ev {
                Ok(ev) => out.push(ev),
                Err(e) => {
                    for h in self.handles.drain(..) {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        }
        for h in self.handles.drain(..) {
            h.join().map_err(|_| Error::Engine("stream worker panicked".to_string()))?;
        }
        self.symbols_out += out.len() as u64;
        Ok(out)
    }

    /// Raw samples fed so far.
    pub fn samples_in(&self) -> u64 {
        self.samples_in
    }

    /// Window events drained so far.
    pub fn symbols_out(&self) -> u64 {
        self.symbols_out
    }

    /// Times a feed was rejected ([`try_feed`](Self::try_feed)) or had to
    /// back off ([`feed_timeout`](Self::feed_timeout)) because the pipeline
    /// was saturated.
    pub fn backpressure_stalls(&self) -> u64 {
        self.stalls
    }
}

fn stream_worker(
    rx: channel::Receiver<StreamJob>,
    tx: channel::Sender<Result<WindowEvent>>,
    table: crate::lookup::LookupTable,
    window_secs: i64,
    min_samples: usize,
    aggregation: crate::vertical::Aggregation,
) {
    let mut encoders: BTreeMap<usize, OnlineEncoder> = BTreeMap::new();
    for job in rx.iter() {
        let StreamJob::Chunk { house, samples } = job;
        let encoder = match encoders.entry(house) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(slot) => {
                match OnlineEncoder::new(table.clone(), window_secs, aggregation) {
                    Ok(enc) => slot.insert(enc.with_min_samples(min_samples)),
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            }
        };
        for (t, v) in samples {
            match encoder.push(t, v) {
                Ok(Some(window)) => {
                    if tx.send(Ok(WindowEvent { house, window })).is_err() {
                        return; // consumer gone
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        }
    }
    // Inputs closed: flush final partial windows in house order.
    for (house, encoder) in encoders.iter_mut() {
        if let Some(window) = encoder.finish() {
            if tx.send(Ok(WindowEvent { house: *house, window })).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::separators::SeparatorMethod;

    fn fleet(houses: usize, samples: usize) -> Vec<TimeSeries> {
        (0..houses)
            .map(|h| {
                let values: Vec<f64> =
                    (0..samples).map(|i| 50.0 + ((i * 31 + h * 97) % 500) as f64).collect();
                TimeSeries::from_regular(0, 60, &values).unwrap()
            })
            .collect()
    }

    fn builder() -> CodecBuilder {
        CodecBuilder::new()
            .method(SeparatorMethod::Median)
            .alphabet_size(16)
            .unwrap()
            .window_secs(900)
    }

    #[test]
    fn batch_matches_serial_per_house() {
        let fleet = fleet(12, 300);
        let b = builder();
        let serial: Vec<SymbolicSeries> =
            fleet.iter().map(|h| b.train(h).unwrap().encode(h).unwrap()).collect();
        for workers in [1, 2, 8] {
            let config = EngineConfig::with_workers(workers);
            let got = encode_fleet(&fleet, &b, &config).unwrap();
            assert_eq!(got, serial, "workers={workers}");
        }
    }

    #[test]
    fn batch_shared_table_reuses_one_table() {
        let fleet = fleet(6, 300);
        let b = builder();
        let config = EngineConfig::with_workers(3).table_mode(TableMode::Shared);
        let enc = FleetEngine::new(b.clone(), config).encode_fleet(&fleet).unwrap();
        // Shared mode == serially encoding every house with the pooled table.
        let mut pool = Vec::new();
        for h in &fleet {
            pool.extend(h.values());
        }
        let codec = b.learn_from_values(&pool).unwrap();
        for (house, got) in fleet.iter().zip(&enc.series) {
            assert_eq!(*got, codec.encode(house).unwrap());
        }
        assert_eq!(enc.stats.houses, 6);
        assert_eq!(enc.stats.samples_in, 6 * 300);
        assert!(enc.stats.symbols_out > 0);
    }

    #[test]
    fn empty_fleet_is_fine() {
        let enc =
            FleetEngine::new(builder(), EngineConfig::with_workers(4)).encode_fleet(&[]).unwrap();
        assert!(enc.series.is_empty());
        assert_eq!(enc.stats.samples_in, 0);
    }

    #[test]
    fn per_house_empty_house_propagates_training_error() {
        let mut f = fleet(3, 200);
        f.push(TimeSeries::new());
        let err = FleetEngine::new(builder(), EngineConfig::with_workers(2))
            .encode_fleet(&f)
            .unwrap_err();
        assert_eq!(err, Error::EmptyInput("CodecBuilder::train"));
    }

    #[test]
    fn stats_json_has_counters() {
        let enc = FleetEngine::new(builder(), EngineConfig::with_workers(2))
            .encode_fleet(&fleet(4, 300))
            .unwrap();
        let json = enc.stats.to_json();
        for key in [
            "workers",
            "houses",
            "samples_in",
            "symbols_out",
            "train_secs",
            "encode_secs",
            "samples_per_sec",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
        assert!(enc.stats.samples_per_sec() > 0.0);
    }

    #[test]
    fn isolate_quarantines_dirty_houses_and_keeps_clean_ones_identical() {
        use crate::quality::SanitizerConfig;

        let clean = fleet(6, 300);
        let serial: Vec<SymbolicSeries> =
            clean.iter().map(|h| builder().train(h).unwrap().encode(h).unwrap()).collect();

        // Corrupt houses 1 and 4 with NaN runs; strict sanitizer rejects them.
        let mut dirty = clean.clone();
        for &h in &[1usize, 4] {
            let mut samples = dirty[h].samples().to_vec();
            for s in samples.iter_mut().take(10) {
                s.v = f64::NAN;
            }
            dirty[h] = TimeSeries::from_samples_unchecked(samples);
        }

        for workers in [1, 2, 8] {
            let config = EngineConfig::with_workers(workers)
                .quarantine(QuarantinePolicy::Isolate)
                .sanitizer(SanitizerConfig::strict());
            let enc = FleetEngine::new(builder(), config).encode_fleet(&dirty).unwrap();
            assert_eq!(
                enc.quarantined.iter().map(|q| q.house).collect::<Vec<_>>(),
                vec![1, 4],
                "workers={workers}"
            );
            for q in &enc.quarantined {
                assert!(
                    matches!(&q.reason, QuarantineReason::DirtyData(Error::DataQuality { .. })),
                    "workers={workers}: {:?}",
                    q.reason
                );
            }
            for (h, expected) in serial.iter().enumerate() {
                if h == 1 || h == 4 {
                    assert!(enc.series[h].is_empty(), "quarantined slot is a placeholder");
                } else {
                    assert_eq!(enc.series[h], *expected, "workers={workers} house={h}");
                }
            }
            let q = enc.stats.quality.expect("quality block present");
            assert_eq!(q.quarantined, 2);
            assert_eq!(q.houses, 6);
            let json = enc.stats.to_json();
            for key in ["\"pool\"", "\"quality\"", "panics", "quarantined"] {
                assert!(json.contains(key), "{json} missing {key}");
            }
        }
    }

    #[test]
    fn strict_sanitizer_rejects_the_run_on_dirty_data() {
        use crate::quality::SanitizerConfig;
        let mut f = fleet(3, 200);
        let mut samples = f[2].samples().to_vec();
        samples[5].v = f64::NAN;
        f[2] = TimeSeries::from_samples_unchecked(samples);
        let config = EngineConfig::with_workers(2).sanitizer(SanitizerConfig::strict());
        let err = FleetEngine::new(builder(), config).encode_fleet(&f).unwrap_err();
        assert_eq!(err, Error::DataQuality { defect: "non_finite", index: 5 });
    }

    #[test]
    fn chaos_panics_recover_via_retry_or_quarantine() {
        use crate::pool::RetryPolicy;
        let f = fleet(8, 300);
        let serial: Vec<SymbolicSeries> =
            f.iter().map(|h| builder().train(h).unwrap().encode(h).unwrap()).collect();
        // Houses 2 and 5 each panic on their first attempt...
        let merged = PanicPlan { houses: [2, 5].into_iter().collect(), panics_per_job: 1 };
        for workers in [1, 2, 8] {
            let config = EngineConfig::with_workers(workers)
                .quarantine(QuarantinePolicy::Isolate)
                .retry(RetryPolicy::with_max_attempts(2).no_backoff())
                .chaos(merged.clone());
            let enc = FleetEngine::new(builder(), config).encode_fleet(&f).unwrap();
            // ...and max_attempts=2 lets both recover.
            assert!(enc.quarantined.is_empty(), "workers={workers}: {:?}", enc.quarantined);
            assert_eq!(enc.series, serial, "workers={workers}");
            let pool = enc.stats.pool.expect("pool block present");
            assert_eq!(pool.panics, 2, "workers={workers}");
            assert_eq!(pool.retries, 2, "workers={workers}");
            assert_eq!(pool.gave_up, 0);

            // With no retries allowed, the same plan quarantines both houses.
            let config = EngineConfig::with_workers(workers)
                .quarantine(QuarantinePolicy::Isolate)
                .chaos(merged.clone());
            let enc = FleetEngine::new(builder(), config).encode_fleet(&f).unwrap();
            assert_eq!(
                enc.quarantined.iter().map(|q| q.house).collect::<Vec<_>>(),
                vec![2, 5],
                "workers={workers}"
            );
            for q in &enc.quarantined {
                assert!(matches!(q.reason, QuarantineReason::Panicked { attempts: 1, .. }));
            }
            for (h, expected) in serial.iter().enumerate() {
                if h != 2 && h != 5 {
                    assert_eq!(enc.series[h], *expected, "workers={workers} house={h}");
                }
            }
        }
    }

    #[test]
    fn strict_chaos_panic_is_a_typed_error_not_an_abort() {
        let f = fleet(4, 200);
        let plan = PanicPlan { houses: [1].into_iter().collect(), panics_per_job: u32::MAX };
        let config = EngineConfig::with_workers(2).chaos(plan);
        let err = FleetEngine::new(builder(), config).encode_fleet(&f).unwrap_err();
        assert!(matches!(err, Error::Engine(ref msg) if msg.contains("panicked")), "{err:?}");
    }

    #[test]
    fn isolate_quarantines_empty_house_as_encode_error() {
        let mut f = fleet(3, 200);
        f.push(TimeSeries::new());
        let config = EngineConfig::with_workers(2).quarantine(QuarantinePolicy::Isolate);
        let enc = FleetEngine::new(builder(), config).encode_fleet(&f).unwrap();
        assert_eq!(enc.quarantined.len(), 1);
        assert_eq!(enc.quarantined[0].house, 3);
        assert!(matches!(
            enc.quarantined[0].reason,
            QuarantineReason::EncodeError(Error::EmptyInput(_))
        ));
        assert!(enc.is_quarantined(3) && !enc.is_quarantined(0));
    }

    #[test]
    fn streaming_matches_batch_windows() {
        let fleet = fleet(5, 400);
        let b = builder();
        // Shared table so the stream and the batch use the same codec.
        let mut pool = Vec::new();
        for h in &fleet {
            pool.extend(h.values());
        }
        let codec = b.learn_from_values(&pool).unwrap();

        let mut stream =
            FleetStream::spawn(&codec, &EngineConfig::with_workers(3).channel_capacity(8)).unwrap();
        let mut events = Vec::new();
        for (house, series) in fleet.iter().enumerate() {
            // Feed in ragged chunks to exercise chunk boundaries, draining
            // as we go: with bounded channels a consumer that never drains
            // would stall the blocking `feed` once the event queue fills
            // (see `try_feed_reports_would_block_instead_of_deadlocking`).
            let samples: Vec<(Timestamp, f64)> = series.iter().collect();
            for chunk in samples.chunks(7) {
                stream.feed(house, chunk).unwrap();
                events.extend(stream.drain().unwrap());
            }
        }
        events.extend(stream.finish().unwrap());

        // Regroup per house and compare against the batch encoder.
        for (house, series) in fleet.iter().enumerate() {
            let expected = codec.encode(series).unwrap();
            let got: Vec<(Timestamp, crate::symbol::Symbol)> = events
                .iter()
                .filter(|e| e.house == house)
                .map(|e| (e.window.window_start, e.window.symbol))
                .collect();
            let want: Vec<(Timestamp, crate::symbol::Symbol)> = expected.iter().collect();
            assert_eq!(got, want, "house {house}");
        }
    }

    #[test]
    fn stream_rejects_non_window_codec() {
        let codec = builder().every_n(4).train(&fleet(1, 100)[0]).unwrap();
        assert!(FleetStream::spawn(&codec, &EngineConfig::with_workers(1)).is_err());
    }

    #[test]
    fn try_feed_reports_would_block_instead_of_deadlocking() {
        // A producer that NEVER drains: the blocking `feed` would deadlock
        // here once input + event queues fill; `try_feed` must surface
        // `WouldBlock` in bounded time instead.
        let house = fleet(1, 400).remove(0);
        let codec = builder().train(&house).unwrap();
        let mut stream =
            FleetStream::spawn(&codec, &EngineConfig::with_workers(1).channel_capacity(1)).unwrap();
        let samples: Vec<(Timestamp, f64)> = house.iter().collect();
        let mut would_block = None;
        for (i, chunk) in samples.chunks(16).enumerate() {
            match stream.try_feed(0, chunk) {
                Ok(()) => {}
                Err(Error::WouldBlock) => {
                    would_block = Some(i);
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(would_block.is_some(), "a never-draining producer must hit WouldBlock");
        assert!(stream.backpressure_stalls() >= 1);
        // The stream is still healthy: retry the rejected chunk (it was
        // never queued), draining between attempts, and finish cleanly.
        let mut events = stream.drain().unwrap();
        for chunk in samples.chunks(16).skip(would_block.unwrap()) {
            loop {
                match stream.try_feed(0, chunk) {
                    Ok(()) => break,
                    Err(Error::WouldBlock) => events.extend(stream.drain().unwrap()),
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        events.extend(stream.finish().unwrap());
        assert!(!events.is_empty(), "recovered stream must still emit windows");
    }

    #[test]
    fn feed_timeout_errors_once_deadline_passes() {
        let house = fleet(1, 400).remove(0);
        let codec = builder().train(&house).unwrap();
        let mut stream =
            FleetStream::spawn(&codec, &EngineConfig::with_workers(1).channel_capacity(1)).unwrap();
        let samples: Vec<(Timestamp, f64)> = house.iter().collect();
        let timeout = std::time::Duration::from_millis(20);
        let t0 = std::time::Instant::now();
        let mut timed_out = false;
        for chunk in samples.chunks(16) {
            match stream.feed_timeout(0, chunk, timeout) {
                Ok(()) => {}
                Err(Error::FeedTimeout { waited_ms }) => {
                    assert!(waited_ms >= 20, "must have waited the full deadline: {waited_ms}");
                    timed_out = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(t0.elapsed() < std::time::Duration::from_secs(30), "must not hang");
        }
        assert!(timed_out, "a saturated pipeline must time out, not deadlock");
        assert!(stream.backpressure_stalls() >= 1);
        let _ = stream.drain().unwrap();
        let _ = stream.finish().unwrap();
    }

    #[test]
    fn stats_json_merges_ingest_block() {
        let mut enc = FleetEngine::new(builder(), EngineConfig::with_workers(2))
            .encode_fleet(&fleet(2, 300))
            .unwrap();
        assert!(!enc.stats.to_json().contains("ingest"), "no block for in-memory runs");
        enc.stats.ingest = Some(crate::ingest::IngestStats {
            frames_ok: 7,
            backpressure_stalls: 3,
            ..Default::default()
        });
        let json = enc.stats.to_json();
        for key in ["\"ingest\"", "frames_ok", "frames_corrupt", "resyncs", "backpressure_stalls"] {
            assert!(json.contains(key), "{json} missing {key}");
        }
    }
}
