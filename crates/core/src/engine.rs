//! Parallel fleet-encoding engine.
//!
//! The paper's evaluation encodes *hundreds of households* (Fig. 6–7 use the
//! full CER dataset); a serial [`SymbolicCodec`] walk over the fleet leaves
//! most of a multi-core sensor gateway idle. This module shards a fleet of
//! household streams across worker threads connected by bounded channels:
//!
//! ```text
//!                 ┌──────────┐  house indices   ┌───────────┐
//!  fleet: &[TS] ─▶│  feeder  │═════bounded═════▶│ worker 0  │──┐
//!                 └──────────┘       MPMC       ├───────────┤  │ (idx, Ŝ)
//!                                          ════▶│ worker 1  │──┼═══════▶ collector
//!                                          ════▶│    …      │──┘   places results[idx]
//!                                               └───────────┘
//! ```
//!
//! * **Batch API** — [`FleetEngine::encode_fleet`] / [`encode_fleet`]: every
//!   house index travels through one bounded MPMC channel, each worker owns
//!   reusable scratch buffers ([`SymbolicCodec::encode_into`]) so the hot
//!   loop is allocation-free, and the collector writes results back by house
//!   index, which makes the output **byte-identical to the serial codec
//!   regardless of worker count**.
//! * **Streaming API** — [`FleetStream`]: feed `(house, chunk)` pairs, drain
//!   [`WindowEvent`]s; houses are pinned to workers (`house % workers`) so
//!   per-house symbol order is preserved, and both the per-worker input
//!   channels and the shared output channel are bounded, giving end-to-end
//!   backpressure.
//! * **Table modes** — [`TableMode::PerHouse`] learns one lookup table per
//!   household (the paper's default protocol); [`TableMode::Shared`] pools
//!   training values across the fleet and learns a single table reused by
//!   every house (the global all-houses table of Fig. 7).
//!
//! Throughput counters ([`EngineStats`]) report samples/sec, symbols/sec and
//! per-stage wall time, and serialize to JSON for benchmark trajectories.

use std::collections::BTreeMap;
use std::time::Instant;

use crossbeam::channel;

use crate::encoder::{EncodedWindow, OnlineEncoder};
use crate::error::{Error, Result};
use crate::horizontal::SymbolicSeries;
use crate::json::JsonWriter;
use crate::pipeline::{CodecBuilder, SymbolicCodec, VerticalPolicy};
use crate::timeseries::{TimeSeries, Timestamp};

/// How the engine obtains lookup tables for a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableMode {
    /// Learn one lookup table per household from that household's own
    /// history (the paper's per-customer protocol). Matches calling
    /// `builder.train(house)` per house.
    #[default]
    PerHouse,
    /// Pool training values across all households, learn **one** table, and
    /// reuse it for every house (the global table of Fig. 7). Training cost
    /// is paid once instead of per house.
    Shared,
}

/// Configuration of the parallel engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker thread count; `0` is treated as `1`.
    pub workers: usize,
    /// Per-house or shared lookup tables.
    pub table_mode: TableMode,
    /// Capacity of each bounded channel (work queue and streaming output).
    pub channel_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            table_mode: TableMode::PerHouse,
            channel_capacity: 64,
        }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count and defaults otherwise.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig { workers, ..Self::default() }
    }

    /// Sets the table mode.
    pub fn table_mode(mut self, mode: TableMode) -> Self {
        self.table_mode = mode;
        self
    }

    /// Sets the bounded-channel capacity (min 1).
    pub fn channel_capacity(mut self, cap: usize) -> Self {
        self.channel_capacity = cap.max(1);
        self
    }
}

/// Throughput counters for one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Worker threads used.
    pub workers: usize,
    /// Households encoded.
    pub houses: usize,
    /// Raw samples consumed.
    pub samples_in: u64,
    /// Symbols produced.
    pub symbols_out: u64,
    /// Wall time of the up-front training stage, seconds. In
    /// [`TableMode::PerHouse`] training happens inside the encode stage, so
    /// this covers only the shared-table pre-pass and is `0` there.
    pub train_secs: f64,
    /// Wall time of the parallel encode stage, seconds.
    pub encode_secs: f64,
    /// Wire-ingest counters, when the run consumed a byte stream through
    /// [`crate::ingest`] (`None` for purely in-memory encodes).
    pub ingest: Option<crate::ingest::IngestStats>,
    /// Evaluation counters, when the run drove a parallel experiment matrix
    /// (`None` for pure encode runs).
    pub eval: Option<EvalStats>,
}

/// Timing counters for a parallel evaluation run (cross-validated
/// classification cells dispatched through [`crate::pool`]). Mirrors the
/// paper's habit of reporting *processing time* next to F-measure
/// (Figs. 5–7), and merges into [`EngineStats::to_json`] like the ingest
/// block.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalStats {
    /// Experiment cells completed.
    pub cells: u64,
    /// Cross-validation folds executed (k × runs per cell, summed).
    pub folds: u64,
    /// Total per-fold training wall time, seconds.
    pub train_secs: f64,
    /// Total per-fold prediction wall time, seconds.
    pub test_secs: f64,
    /// Worker threads used by the evaluation pool.
    pub workers: usize,
    /// High-water mark of the evaluation pool's job queue.
    pub max_queue_depth: usize,
}

impl EvalStats {
    /// Writes this block as one JSON value into `w` (shared with
    /// [`EngineStats::to_json`]).
    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("cells");
        w.u64(self.cells);
        w.key("folds");
        w.u64(self.folds);
        w.key("train_secs");
        w.f64(self.train_secs);
        w.key("test_secs");
        w.f64(self.test_secs);
        w.key("workers");
        w.u64(self.workers as u64);
        w.key("max_queue_depth");
        w.u64(self.max_queue_depth as u64);
        w.end_object();
    }
}

impl EngineStats {
    /// Raw samples consumed per wall-clock second (train + encode).
    pub fn samples_per_sec(&self) -> f64 {
        self.samples_in as f64 / (self.train_secs + self.encode_secs).max(f64::MIN_POSITIVE)
    }

    /// Symbols produced per wall-clock second (train + encode).
    pub fn symbols_per_sec(&self) -> f64 {
        self.symbols_out as f64 / (self.train_secs + self.encode_secs).max(f64::MIN_POSITIVE)
    }

    /// JSON object for benchmark trajectories.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("workers");
        w.u64(self.workers as u64);
        w.key("houses");
        w.u64(self.houses as u64);
        w.key("samples_in");
        w.u64(self.samples_in);
        w.key("symbols_out");
        w.u64(self.symbols_out);
        w.key("train_secs");
        w.f64(self.train_secs);
        w.key("encode_secs");
        w.f64(self.encode_secs);
        w.key("samples_per_sec");
        w.f64(self.samples_per_sec());
        w.key("symbols_per_sec");
        w.f64(self.symbols_per_sec());
        if let Some(ingest) = &self.ingest {
            w.key("ingest");
            ingest.write_json(&mut w);
        }
        if let Some(eval) = &self.eval {
            w.key("eval");
            eval.write_json(&mut w);
        }
        w.end_object();
        w.finish()
    }
}

/// The result of a batch fleet encode: one symbolic series per input house
/// (same order), plus throughput counters.
#[derive(Debug, Clone)]
pub struct FleetEncoding {
    /// `series[i]` encodes `fleet[i]`.
    pub series: Vec<SymbolicSeries>,
    /// Throughput counters for the run.
    pub stats: EngineStats,
}

/// A configured parallel encoder for fleets of household streams.
#[derive(Debug, Clone)]
pub struct FleetEngine {
    builder: CodecBuilder,
    config: EngineConfig,
}

impl FleetEngine {
    /// Assembles an engine from a codec recipe and a parallelism config.
    pub fn new(builder: CodecBuilder, config: EngineConfig) -> Self {
        FleetEngine { builder, config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Encodes every house of `fleet`, returning symbolic series in input
    /// order plus throughput counters. Output is byte-identical to training
    /// and encoding each house serially with the same [`CodecBuilder`],
    /// regardless of `workers`.
    pub fn encode_fleet(&self, fleet: &[TimeSeries]) -> Result<FleetEncoding> {
        let workers = self.config.workers.max(1);
        let samples_in: u64 = fleet.iter().map(|h| h.len() as u64).sum();

        let train_start = Instant::now();
        let shared_codec = match self.config.table_mode {
            TableMode::PerHouse => None,
            TableMode::Shared => Some(self.train_shared(fleet)?),
        };
        let train_secs = train_start.elapsed().as_secs_f64();

        let encode_start = Instant::now();
        let mut results: Vec<Option<SymbolicSeries>> = fleet.iter().map(|_| None).collect();
        if !fleet.is_empty() {
            self.run_batch(fleet, shared_codec.as_ref(), workers, &mut results)?;
        }
        let encode_secs = encode_start.elapsed().as_secs_f64();

        let series: Vec<SymbolicSeries> = results
            .into_iter()
            .map(|r| r.ok_or_else(|| Error::Engine("worker dropped a house".to_string())))
            .collect::<Result<_>>()?;
        let symbols_out: u64 = series.iter().map(|s| s.len() as u64).sum();
        Ok(FleetEncoding {
            series,
            stats: EngineStats {
                workers,
                houses: fleet.len(),
                samples_in,
                symbols_out,
                train_secs,
                encode_secs,
                ingest: None,
                eval: None,
            },
        })
    }

    /// Pools training values across the fleet and learns one shared codec.
    fn train_shared(&self, fleet: &[TimeSeries]) -> Result<SymbolicCodec> {
        let mut pool = Vec::new();
        for house in fleet {
            if !house.is_empty() {
                pool.extend(self.builder.training_values(house)?);
            }
        }
        self.builder.learn_from_values(&pool)
    }

    /// The fan-out/fan-in core, now delegated to the shared [`crate::pool`]:
    /// house indices feed the bounded MPMC queue, workers keep reusable
    /// scratch buffers, and results land back at their index so the output
    /// is deterministic regardless of worker count.
    fn run_batch(
        &self,
        fleet: &[TimeSeries],
        shared: Option<&SymbolicCodec>,
        workers: usize,
        results: &mut [Option<SymbolicSeries>],
    ) -> Result<()> {
        let config = crate::pool::PoolConfig {
            workers,
            channel_capacity: self.config.channel_capacity.max(1),
        };
        let builder = &self.builder;
        let (encoded, _stats) = crate::pool::run_indexed_with(
            fleet.len(),
            &config,
            || (TimeSeries::new(), SymbolicSeries::new(1).expect("1 bit is a valid resolution")),
            |(scratch, out), idx| encode_one(&fleet[idx], shared, builder, scratch, out),
        );
        // Index order makes which error surfaces deterministic too.
        for (slot, enc) in results.iter_mut().zip(encoded) {
            *slot = Some(enc?);
        }
        Ok(())
    }
}

/// Encodes one house, training a per-house codec unless a shared one is given.
fn encode_one(
    house: &TimeSeries,
    shared: Option<&SymbolicCodec>,
    builder: &CodecBuilder,
    scratch: &mut TimeSeries,
    out: &mut SymbolicSeries,
) -> Result<SymbolicSeries> {
    let per_house;
    let codec = match shared {
        Some(c) => c,
        None => {
            per_house = builder.train(house)?;
            &per_house
        }
    };
    codec.encode_into(house, scratch, out)?;
    Ok(out.clone())
}

/// One-shot convenience: encode a fleet and keep only the symbolic series.
pub fn encode_fleet(
    fleet: &[TimeSeries],
    builder: &CodecBuilder,
    config: &EngineConfig,
) -> Result<Vec<SymbolicSeries>> {
    Ok(FleetEngine::new(builder.clone(), config.clone()).encode_fleet(fleet)?.series)
}

// ---------------------------------------------------------------------------
// Streaming API
// ---------------------------------------------------------------------------

/// A closed window emitted by the streaming engine, tagged with its house.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowEvent {
    /// Index of the household the window belongs to.
    pub house: usize,
    /// The encoded window.
    pub window: EncodedWindow,
}

enum StreamJob {
    Chunk { house: usize, samples: Vec<(Timestamp, f64)> },
}

/// Smallest backpressure wait of [`FleetStream::feed_timeout`]'s exponential
/// backoff schedule.
const BACKOFF_START: std::time::Duration = std::time::Duration::from_micros(50);

/// Largest single backpressure wait of the backoff schedule: waits double
/// from [`BACKOFF_START`] and saturate here, so a stalled pipeline is polled
/// every few milliseconds rather than busily.
const BACKOFF_CAP: std::time::Duration = std::time::Duration::from_millis(5);

/// Streaming fleet encoder: feed raw `(house, chunk)` readings, drain
/// [`WindowEvent`]s as windows close.
///
/// Each house is pinned to worker `house % workers`, whose input channel is
/// FIFO, so symbols of one house always arrive in timestamp order. Input and
/// output channels are bounded: a slow consumer stalls the workers, which
/// stalls [`FleetStream::feed`] — backpressure end to end.
///
/// Three feed flavors trade blocking for error reporting:
///
/// * [`feed`](Self::feed) — blocks while the queues are full; simplest when
///   the caller interleaves [`drain`](Self::drain) correctly;
/// * [`try_feed`](Self::try_feed) — never blocks; returns
///   [`Error::WouldBlock`] when the pipeline is saturated;
/// * [`feed_timeout`](Self::feed_timeout) — retries with bounded
///   exponential backoff and returns [`Error::FeedTimeout`] when the
///   pipeline never drained; the hardened choice for producers that cannot
///   guarantee a draining consumer.
///
/// Every rejected or retried send is counted as a *backpressure stall*
/// ([`backpressure_stalls`](Self::backpressure_stalls)), surfaced through
/// [`crate::ingest::IngestStats`].
pub struct FleetStream {
    inputs: Vec<channel::Sender<StreamJob>>,
    events: channel::Receiver<Result<WindowEvent>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    samples_in: u64,
    symbols_out: u64,
    stalls: u64,
}

impl std::fmt::Debug for FleetStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetStream")
            .field("workers", &self.handles.len())
            .field("samples_in", &self.samples_in)
            .field("symbols_out", &self.symbols_out)
            .finish()
    }
}

impl FleetStream {
    /// Spawns `workers` threads that encode with clones of `codec`'s lookup
    /// table through per-house [`OnlineEncoder`]s. The codec must use a
    /// wall-clock [`VerticalPolicy::Window`] policy (the online encoder is
    /// window-based).
    pub fn spawn(codec: &SymbolicCodec, config: &EngineConfig) -> Result<FleetStream> {
        let (window_secs, min_samples) = match codec.vertical_policy() {
            VerticalPolicy::Window { window_secs, min_samples } => (window_secs, min_samples),
            other => {
                return Err(Error::InvalidParameter {
                    name: "codec",
                    reason: format!("FleetStream needs a wall-clock Window policy, got {other:?}"),
                })
            }
        };
        let workers = config.workers.max(1);
        let cap = config.channel_capacity.max(1);
        let (event_tx, events) = channel::bounded::<Result<WindowEvent>>(cap);
        let mut inputs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::bounded::<StreamJob>(cap);
            inputs.push(tx);
            let event_tx = event_tx.clone();
            let table = codec.table().clone();
            let aggregation = codec.aggregation();
            handles.push(std::thread::spawn(move || {
                stream_worker(rx, event_tx, table, window_secs, min_samples, aggregation)
            }));
        }
        Ok(FleetStream { inputs, events, handles, samples_in: 0, symbols_out: 0, stalls: 0 })
    }

    /// Feeds a chunk of raw readings for one house. Blocks while the
    /// engine's queues are full (backpressure), so interleave
    /// [`FleetStream::drain`] calls with `feed`. A producer that never
    /// drains will block here indefinitely once the bounded event queue
    /// fills — use [`try_feed`](Self::try_feed) or
    /// [`feed_timeout`](Self::feed_timeout) to get an error instead of a
    /// stall. Timestamps must be non-decreasing per house across all chunks.
    pub fn feed(&mut self, house: usize, chunk: &[(Timestamp, f64)]) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let worker = house % self.inputs.len();
        self.inputs[worker]
            .send(StreamJob::Chunk { house, samples: chunk.to_vec() })
            .map_err(|_| Error::Engine(format!("stream worker {worker} is gone")))?;
        self.samples_in += chunk.len() as u64;
        Ok(())
    }

    /// Non-blocking [`feed`](Self::feed): enqueues the chunk if its worker
    /// has room right now, otherwise counts a backpressure stall and
    /// returns [`Error::WouldBlock`] without queueing anything. The caller
    /// should [`drain`](Self::drain) and retry.
    pub fn try_feed(&mut self, house: usize, chunk: &[(Timestamp, f64)]) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let worker = house % self.inputs.len();
        match self.inputs[worker].try_send(StreamJob::Chunk { house, samples: chunk.to_vec() }) {
            Ok(()) => {
                self.samples_in += chunk.len() as u64;
                Ok(())
            }
            Err(channel::TrySendError::Full(_)) => {
                self.stalls += 1;
                Err(Error::WouldBlock)
            }
            Err(channel::TrySendError::Disconnected(_)) => {
                Err(Error::Engine(format!("stream worker {worker} is gone")))
            }
        }
    }

    /// [`feed`](Self::feed) with a deadline: retries a full queue with
    /// bounded exponential backoff (50 µs doubling to 5 ms) and gives up
    /// with [`Error::FeedTimeout`] once `timeout` has elapsed, so a
    /// never-draining pipeline produces an error instead of the blocking
    /// `feed`'s indefinite stall. Each backoff wait counts as a
    /// backpressure stall.
    pub fn feed_timeout(
        &mut self,
        house: usize,
        chunk: &[(Timestamp, f64)],
        timeout: std::time::Duration,
    ) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let worker = house % self.inputs.len();
        let start = Instant::now();
        let mut backoff = BACKOFF_START;
        let mut job = StreamJob::Chunk { house, samples: chunk.to_vec() };
        loop {
            match self.inputs[worker].try_send(job) {
                Ok(()) => {
                    self.samples_in += chunk.len() as u64;
                    return Ok(());
                }
                Err(channel::TrySendError::Disconnected(_)) => {
                    return Err(Error::Engine(format!("stream worker {worker} is gone")));
                }
                Err(channel::TrySendError::Full(j)) => {
                    job = j;
                    self.stalls += 1;
                    let elapsed = start.elapsed();
                    if elapsed >= timeout {
                        return Err(Error::FeedTimeout { waited_ms: elapsed.as_millis() as u64 });
                    }
                    std::thread::sleep(backoff.min(timeout - elapsed));
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                }
            }
        }
    }

    /// Drains every window event currently available without blocking.
    pub fn drain(&mut self) -> Result<Vec<WindowEvent>> {
        let mut out = Vec::new();
        while let Ok(ev) = self.events.try_recv() {
            out.push(ev?);
        }
        self.symbols_out += out.len() as u64;
        Ok(out)
    }

    /// Closes the inputs, flushes every house's final partial window, joins
    /// the workers, and returns the remaining events.
    pub fn finish(mut self) -> Result<Vec<WindowEvent>> {
        self.inputs.clear(); // disconnect: workers flush and exit
        let mut out = Vec::new();
        for ev in self.events.iter() {
            match ev {
                Ok(ev) => out.push(ev),
                Err(e) => {
                    for h in self.handles.drain(..) {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        }
        for h in self.handles.drain(..) {
            h.join().map_err(|_| Error::Engine("stream worker panicked".to_string()))?;
        }
        self.symbols_out += out.len() as u64;
        Ok(out)
    }

    /// Raw samples fed so far.
    pub fn samples_in(&self) -> u64 {
        self.samples_in
    }

    /// Window events drained so far.
    pub fn symbols_out(&self) -> u64 {
        self.symbols_out
    }

    /// Times a feed was rejected ([`try_feed`](Self::try_feed)) or had to
    /// back off ([`feed_timeout`](Self::feed_timeout)) because the pipeline
    /// was saturated.
    pub fn backpressure_stalls(&self) -> u64 {
        self.stalls
    }
}

fn stream_worker(
    rx: channel::Receiver<StreamJob>,
    tx: channel::Sender<Result<WindowEvent>>,
    table: crate::lookup::LookupTable,
    window_secs: i64,
    min_samples: usize,
    aggregation: crate::vertical::Aggregation,
) {
    let mut encoders: BTreeMap<usize, OnlineEncoder> = BTreeMap::new();
    for job in rx.iter() {
        let StreamJob::Chunk { house, samples } = job;
        let encoder = match encoders.entry(house) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(slot) => {
                match OnlineEncoder::new(table.clone(), window_secs, aggregation) {
                    Ok(enc) => slot.insert(enc.with_min_samples(min_samples)),
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            }
        };
        for (t, v) in samples {
            match encoder.push(t, v) {
                Ok(Some(window)) => {
                    if tx.send(Ok(WindowEvent { house, window })).is_err() {
                        return; // consumer gone
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        }
    }
    // Inputs closed: flush final partial windows in house order.
    for (house, encoder) in encoders.iter_mut() {
        if let Some(window) = encoder.finish() {
            if tx.send(Ok(WindowEvent { house: *house, window })).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::separators::SeparatorMethod;

    fn fleet(houses: usize, samples: usize) -> Vec<TimeSeries> {
        (0..houses)
            .map(|h| {
                let values: Vec<f64> =
                    (0..samples).map(|i| 50.0 + ((i * 31 + h * 97) % 500) as f64).collect();
                TimeSeries::from_regular(0, 60, &values).unwrap()
            })
            .collect()
    }

    fn builder() -> CodecBuilder {
        CodecBuilder::new()
            .method(SeparatorMethod::Median)
            .alphabet_size(16)
            .unwrap()
            .window_secs(900)
    }

    #[test]
    fn batch_matches_serial_per_house() {
        let fleet = fleet(12, 300);
        let b = builder();
        let serial: Vec<SymbolicSeries> =
            fleet.iter().map(|h| b.train(h).unwrap().encode(h).unwrap()).collect();
        for workers in [1, 2, 8] {
            let config = EngineConfig::with_workers(workers);
            let got = encode_fleet(&fleet, &b, &config).unwrap();
            assert_eq!(got, serial, "workers={workers}");
        }
    }

    #[test]
    fn batch_shared_table_reuses_one_table() {
        let fleet = fleet(6, 300);
        let b = builder();
        let config = EngineConfig::with_workers(3).table_mode(TableMode::Shared);
        let enc = FleetEngine::new(b.clone(), config).encode_fleet(&fleet).unwrap();
        // Shared mode == serially encoding every house with the pooled table.
        let mut pool = Vec::new();
        for h in &fleet {
            pool.extend(h.values());
        }
        let codec = b.learn_from_values(&pool).unwrap();
        for (house, got) in fleet.iter().zip(&enc.series) {
            assert_eq!(*got, codec.encode(house).unwrap());
        }
        assert_eq!(enc.stats.houses, 6);
        assert_eq!(enc.stats.samples_in, 6 * 300);
        assert!(enc.stats.symbols_out > 0);
    }

    #[test]
    fn empty_fleet_is_fine() {
        let enc =
            FleetEngine::new(builder(), EngineConfig::with_workers(4)).encode_fleet(&[]).unwrap();
        assert!(enc.series.is_empty());
        assert_eq!(enc.stats.samples_in, 0);
    }

    #[test]
    fn per_house_empty_house_propagates_training_error() {
        let mut f = fleet(3, 200);
        f.push(TimeSeries::new());
        let err = FleetEngine::new(builder(), EngineConfig::with_workers(2))
            .encode_fleet(&f)
            .unwrap_err();
        assert_eq!(err, Error::EmptyInput("CodecBuilder::train"));
    }

    #[test]
    fn stats_json_has_counters() {
        let enc = FleetEngine::new(builder(), EngineConfig::with_workers(2))
            .encode_fleet(&fleet(4, 300))
            .unwrap();
        let json = enc.stats.to_json();
        for key in [
            "workers",
            "houses",
            "samples_in",
            "symbols_out",
            "train_secs",
            "encode_secs",
            "samples_per_sec",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
        assert!(enc.stats.samples_per_sec() > 0.0);
    }

    #[test]
    fn streaming_matches_batch_windows() {
        let fleet = fleet(5, 400);
        let b = builder();
        // Shared table so the stream and the batch use the same codec.
        let mut pool = Vec::new();
        for h in &fleet {
            pool.extend(h.values());
        }
        let codec = b.learn_from_values(&pool).unwrap();

        let mut stream =
            FleetStream::spawn(&codec, &EngineConfig::with_workers(3).channel_capacity(8)).unwrap();
        let mut events = Vec::new();
        for (house, series) in fleet.iter().enumerate() {
            // Feed in ragged chunks to exercise chunk boundaries, draining
            // as we go: with bounded channels a consumer that never drains
            // would stall the blocking `feed` once the event queue fills
            // (see `try_feed_reports_would_block_instead_of_deadlocking`).
            let samples: Vec<(Timestamp, f64)> = series.iter().collect();
            for chunk in samples.chunks(7) {
                stream.feed(house, chunk).unwrap();
                events.extend(stream.drain().unwrap());
            }
        }
        events.extend(stream.finish().unwrap());

        // Regroup per house and compare against the batch encoder.
        for (house, series) in fleet.iter().enumerate() {
            let expected = codec.encode(series).unwrap();
            let got: Vec<(Timestamp, crate::symbol::Symbol)> = events
                .iter()
                .filter(|e| e.house == house)
                .map(|e| (e.window.window_start, e.window.symbol))
                .collect();
            let want: Vec<(Timestamp, crate::symbol::Symbol)> = expected.iter().collect();
            assert_eq!(got, want, "house {house}");
        }
    }

    #[test]
    fn stream_rejects_non_window_codec() {
        let codec = builder().every_n(4).train(&fleet(1, 100)[0]).unwrap();
        assert!(FleetStream::spawn(&codec, &EngineConfig::with_workers(1)).is_err());
    }

    #[test]
    fn try_feed_reports_would_block_instead_of_deadlocking() {
        // A producer that NEVER drains: the blocking `feed` would deadlock
        // here once input + event queues fill; `try_feed` must surface
        // `WouldBlock` in bounded time instead.
        let house = fleet(1, 400).remove(0);
        let codec = builder().train(&house).unwrap();
        let mut stream =
            FleetStream::spawn(&codec, &EngineConfig::with_workers(1).channel_capacity(1)).unwrap();
        let samples: Vec<(Timestamp, f64)> = house.iter().collect();
        let mut would_block = None;
        for (i, chunk) in samples.chunks(16).enumerate() {
            match stream.try_feed(0, chunk) {
                Ok(()) => {}
                Err(Error::WouldBlock) => {
                    would_block = Some(i);
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(would_block.is_some(), "a never-draining producer must hit WouldBlock");
        assert!(stream.backpressure_stalls() >= 1);
        // The stream is still healthy: retry the rejected chunk (it was
        // never queued), draining between attempts, and finish cleanly.
        let mut events = stream.drain().unwrap();
        for chunk in samples.chunks(16).skip(would_block.unwrap()) {
            loop {
                match stream.try_feed(0, chunk) {
                    Ok(()) => break,
                    Err(Error::WouldBlock) => events.extend(stream.drain().unwrap()),
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        events.extend(stream.finish().unwrap());
        assert!(!events.is_empty(), "recovered stream must still emit windows");
    }

    #[test]
    fn feed_timeout_errors_once_deadline_passes() {
        let house = fleet(1, 400).remove(0);
        let codec = builder().train(&house).unwrap();
        let mut stream =
            FleetStream::spawn(&codec, &EngineConfig::with_workers(1).channel_capacity(1)).unwrap();
        let samples: Vec<(Timestamp, f64)> = house.iter().collect();
        let timeout = std::time::Duration::from_millis(20);
        let t0 = std::time::Instant::now();
        let mut timed_out = false;
        for chunk in samples.chunks(16) {
            match stream.feed_timeout(0, chunk, timeout) {
                Ok(()) => {}
                Err(Error::FeedTimeout { waited_ms }) => {
                    assert!(waited_ms >= 20, "must have waited the full deadline: {waited_ms}");
                    timed_out = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(t0.elapsed() < std::time::Duration::from_secs(30), "must not hang");
        }
        assert!(timed_out, "a saturated pipeline must time out, not deadlock");
        assert!(stream.backpressure_stalls() >= 1);
        let _ = stream.drain().unwrap();
        let _ = stream.finish().unwrap();
    }

    #[test]
    fn stats_json_merges_ingest_block() {
        let mut enc = FleetEngine::new(builder(), EngineConfig::with_workers(2))
            .encode_fleet(&fleet(2, 300))
            .unwrap();
        assert!(!enc.stats.to_json().contains("ingest"), "no block for in-memory runs");
        enc.stats.ingest = Some(crate::ingest::IngestStats {
            frames_ok: 7,
            backpressure_stalls: 3,
            ..Default::default()
        });
        let json = enc.stats.to_json();
        for key in ["\"ingest\"", "frames_ok", "frames_corrupt", "resyncs", "backpressure_stalls"] {
            assert!(json.contains(key), "{json} missing {key}");
        }
    }
}
