//! Network-facing fleet gateway over `std::net`.
//!
//! The paper's deployment story (§2.3) has thousands of meters pushing
//! symbolic streams at a utility concentrator; until now this reproduction
//! had no front door — every byte entered through in-process
//! [`FleetIngest`] calls. This module is that front door: a zero-dependency
//! TCP server that terminates concurrent meter connections, authenticates
//! each one with a token handshake, rate-limits and quota-checks the byte
//! streams, and routes every decoded frame through the *same*
//! [`FleetIngest`] the in-process path uses — so the decoded fleet output
//! is byte-identical to a local run.
//!
//! ## Wire protocol
//!
//! A connection opens with a fixed handshake preamble (see
//! [`encode_handshake`]):
//!
//! ```text
//! [4B magic "SMG1"][8B meter id LE][2B token len LE][token bytes]
//! ```
//!
//! The server answers one byte — [`HANDSHAKE_ACK`] (accepted) or
//! [`HANDSHAKE_NAK`] (rejected, connection closed). After acceptance the
//! client streams ordinary [`crate::wire`] frames (any chunking, mid-frame
//! splits included; the per-meter [`FrameDecoder`](crate::wire::FrameDecoder)
//! reassembles and resynchronizes). The server acknowledges progress with
//! 8-byte little-endian **cumulative decoded-frame counts**, written only
//! *after* the decoded messages are committed to the fleet output — which is
//! what makes "graceful shutdown loses zero acknowledged frames" true by
//! construction rather than by timing.
//!
//! ## Thread model
//!
//! One **acceptor** thread owns the non-blocking listener: it accepts,
//! enforces the connection cap, and hands sockets to a bounded channel. The
//! **session workers** run as jobs on the existing supervised
//! [`crate::pool`] (`run_indexed_supervised_with`), so a panicking handler
//! is caught, counted, and respawned by the same machinery that protects
//! fleet encodes; each worker multiplexes its claimed sessions with
//! non-blocking reads. An optional **HTTP/1.1 sidecar** thread serves
//! `/metrics` (Prometheus text), `/healthz`, and `/readyz` with a
//! hand-rolled parser. [`Gateway::shutdown`] stops the acceptor, flips
//! `/readyz` to 503, drains in-flight sessions until EOF or the drain
//! timeout, and returns the fleet output plus a final [`GatewayStats`]
//! block.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender, TryRecvError};

use crate::encoder::SensorMessage;
use crate::engine::EngineStats;
use crate::error::{Error, Result};
use crate::ingest::{FleetIngest, IngestConfig, IngestStats};
use crate::json::JsonWriter;
use crate::pool::{self, PoolConfig, PoolStats, SupervisorPolicy};
use crate::shard::ShardRouter;
use crate::telemetry::Registry;

/// Handshake magic: the first four bytes of every meter connection.
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"SMG1";
/// Server's one-byte reply accepting a handshake.
pub const HANDSHAKE_ACK: u8 = 0x06;
/// Server's one-byte reply rejecting a handshake (connection closes).
pub const HANDSHAKE_NAK: u8 = 0x15;
/// Longest auth token the server will buffer for an unauthenticated peer.
pub const MAX_TOKEN_LEN: usize = 64;
/// Handshake bytes before the variable-length token.
const HANDSHAKE_FIXED_LEN: usize = 4 + 8 + 2;
/// Read scratch size per worker; also the most a session consumes per pump.
const READ_CHUNK: usize = 16 * 1024;

/// Builds the client-side handshake preamble for `meter` carrying `token`.
pub fn encode_handshake(meter: u64, token: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HANDSHAKE_FIXED_LEN + token.len());
    out.extend_from_slice(&HANDSHAKE_MAGIC);
    out.extend_from_slice(&meter.to_le_bytes());
    out.extend_from_slice(&(token.len() as u16).to_le_bytes());
    out.extend_from_slice(token);
    out
}

/// Policy knobs of one gateway instance. Start with [`Default`] and adjust;
/// every listener binds loopback (`127.0.0.1`) — this reproduction's
/// concentrator is an experiment harness, not an exposed service.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// TCP port for meter connections (`0` = ephemeral, the default).
    pub port: u16,
    /// Session-worker threads claiming connections from the acceptor.
    pub workers: usize,
    /// Most simultaneously active connections; further accepts are counted
    /// as rejected and closed immediately.
    pub max_connections: usize,
    /// The shared secret a handshake must present.
    pub auth_token: Vec<u8>,
    /// Token-bucket refill rate in bytes/second per connection (`0` =
    /// unlimited). An empty bucket pauses reads (TCP backpressure does the
    /// rest) and counts a typed [`Error::RateLimited`] once per episode.
    pub rate_bytes_per_sec: u64,
    /// Token-bucket capacity (burst allowance) in bytes.
    pub rate_burst_bytes: u64,
    /// Lifetime byte budget per connection (`0` = unlimited); exceeding it
    /// closes the connection with a counted typed [`Error::QuotaExceeded`].
    pub conn_byte_quota: u64,
    /// A connection silent for this long is closed and counted.
    pub idle_timeout: Duration,
    /// How long [`Gateway::shutdown`] lets in-flight sessions finish before
    /// force-closing them.
    pub drain_timeout: Duration,
    /// Policy for the shared [`FleetIngest`] behind the sessions.
    pub ingest: IngestConfig,
    /// Shards the ingest state is partitioned into — consistent hashing of
    /// meter id through [`crate::shard::ShardRouter`], one lock per shard,
    /// so sessions on different shards commit concurrently. `1` restores
    /// the single-lock layout.
    pub ingest_shards: usize,
    /// Serve the HTTP sidecar (`/metrics`, `/healthz`, `/readyz`) on its
    /// own ephemeral loopback port.
    pub http_metrics: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            port: 0,
            workers: 2,
            max_connections: 1024,
            auth_token: b"smg-local-dev".to_vec(),
            rate_bytes_per_sec: 0,
            rate_burst_bytes: 64 * 1024,
            conn_byte_quota: 0,
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            ingest: IngestConfig::default(),
            ingest_shards: 4,
            http_metrics: false,
        }
    }
}

impl GatewayConfig {
    /// Sets the session-worker thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the shared auth token.
    pub fn auth_token(mut self, token: &[u8]) -> Self {
        self.auth_token = token.to_vec();
        self
    }

    /// Sets the per-connection rate limit (bytes/second and burst).
    pub fn rate_limit(mut self, bytes_per_sec: u64, burst_bytes: u64) -> Self {
        self.rate_bytes_per_sec = bytes_per_sec;
        self.rate_burst_bytes = burst_bytes.max(1);
        self
    }

    /// Sets the per-connection lifetime byte quota.
    pub fn conn_byte_quota(mut self, quota: u64) -> Self {
        self.conn_byte_quota = quota;
        self
    }

    /// Sets the idle-connection timeout.
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the graceful-shutdown drain timeout.
    pub fn drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Enables the HTTP metrics sidecar.
    pub fn http_metrics(mut self, on: bool) -> Self {
        self.http_metrics = on;
        self
    }

    /// Sets the ingest shard count (clamped to ≥ 1).
    pub fn ingest_shards(mut self, shards: usize) -> Self {
        self.ingest_shards = shards.max(1);
        self
    }
}

/// Counter block describing one gateway run; joins
/// [`EngineStats`] JSON as its `gateway` object and the telemetry CATALOG
/// as `sms_gateway_*` Prometheus series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GatewayStats {
    /// Connections accepted and handed to a session worker.
    pub connections_accepted: u64,
    /// Connections refused at accept time (connection cap, or arriving
    /// while draining).
    pub connections_rejected: u64,
    /// Currently open sessions (gauge; `0` in a final report).
    pub connections_active: u64,
    /// Handshakes presenting a wrong token (NAK'd and closed).
    pub auth_failures: u64,
    /// Handshakes that were malformed — bad magic, oversized token, or EOF
    /// before completion.
    pub handshake_errors: u64,
    /// Rate-limit throttle episodes (a typed [`Error::RateLimited`] per
    /// episode, not per paused read).
    pub rate_limit_hits: u64,
    /// Connections closed for exceeding their byte quota (typed
    /// [`Error::QuotaExceeded`]).
    pub quota_closed: u64,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
    /// Payload bytes read from meter sockets (handshake bytes included).
    pub bytes_in: u64,
    /// Frames decoded, committed to the fleet output, and acknowledged back
    /// to their senders.
    pub frames_acked: u64,
    /// Wall time [`Gateway::shutdown`] spent draining in-flight sessions,
    /// seconds.
    pub drain_secs: f64,
}

impl GatewayStats {
    /// Registers this block's [`crate::telemetry::CATALOG`] metrics into
    /// `reg` and loads their current values.
    pub fn register_into(&self, reg: &Registry) {
        reg.register_block("gateway");
        reg.add("sms_gateway_connections_accepted", self.connections_accepted);
        reg.add("sms_gateway_connections_rejected", self.connections_rejected);
        reg.set("sms_gateway_connections_active", self.connections_active);
        reg.add("sms_gateway_auth_failures", self.auth_failures);
        reg.add("sms_gateway_handshake_errors", self.handshake_errors);
        reg.add("sms_gateway_rate_limit_hits", self.rate_limit_hits);
        reg.add("sms_gateway_quota_closed", self.quota_closed);
        reg.add("sms_gateway_idle_closed", self.idle_closed);
        reg.add("sms_gateway_bytes_in", self.bytes_in);
        reg.add("sms_gateway_frames_acked", self.frames_acked);
        reg.set_f64("sms_gateway_drain_secs", self.drain_secs);
    }

    /// Writes this block as one JSON value into `w` (shared with
    /// [`EngineStats::to_json`]). Key names and order come from the
    /// telemetry [`crate::telemetry::CATALOG`].
    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        let reg = Registry::new();
        self.register_into(&reg);
        reg.write_block_json(w, "gateway");
    }

    /// JSON object for benchmark trajectories.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Live counters shared by acceptor, workers, and sidecar.
#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    connections_active: AtomicU64,
    auth_failures: AtomicU64,
    handshake_errors: AtomicU64,
    rate_limit_hits: AtomicU64,
    quota_closed: AtomicU64,
    idle_closed: AtomicU64,
    bytes_in: AtomicU64,
    frames_acked: AtomicU64,
}

impl Counters {
    fn snapshot(&self, drain_secs: f64) -> GatewayStats {
        GatewayStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            auth_failures: self.auth_failures.load(Ordering::Relaxed),
            handshake_errors: self.handshake_errors.load(Ordering::Relaxed),
            rate_limit_hits: self.rate_limit_hits.load(Ordering::Relaxed),
            quota_closed: self.quota_closed.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            frames_acked: self.frames_acked.load(Ordering::Relaxed),
            drain_secs,
        }
    }
}

/// One shard of ingest state: a [`FleetIngest`] plus the per-meter decoded
/// output, mutated under the shard's lock so a meter's decoded stream is
/// identical to an in-process run over the same per-meter bytes.
struct Core {
    fleet: FleetIngest,
    output: BTreeMap<u64, Vec<SensorMessage>>,
}

/// The ingest state behind every session, partitioned by meter id through
/// a [`ShardRouter`]: each shard holds its own [`Core`] under its own
/// lock, so sessions whose meters land on different shards commit
/// concurrently instead of serializing on one mutex.
///
/// The **global** `max_meters` / `max_buffered_bytes` caps are enforced
/// here with atomic counters, in [`FleetIngest::ingest`]'s check order
/// (backlog first, then the meter cap); the per-shard instances run
/// uncapped so a shard can never double-reject. Under concurrent sessions
/// the atomic check is advisory-exact — a race can overshoot a cap by at
/// most the chunks in flight — and a rejected chunk still changes no
/// state. Per-meter output stays byte-identical to the single-lock
/// layout: a meter maps to exactly one shard and its session serializes
/// its own bytes.
struct IngestShards {
    router: ShardRouter,
    cores: Vec<Mutex<Core>>,
    /// Distinct meters across every shard.
    meters: AtomicUsize,
    /// Bytes buffered across every shard awaiting frame completion.
    buffered: AtomicUsize,
    meters_rejected: AtomicU64,
    backlog_rejections: AtomicU64,
    max_meters: usize,
    max_buffered_bytes: usize,
}

impl IngestShards {
    fn new(shards: usize, config: IngestConfig) -> Result<Self> {
        let router = ShardRouter::new(shards.max(1))?;
        let uncapped = config.max_meters(usize::MAX).max_buffered_bytes(usize::MAX);
        let cores = (0..router.shards())
            .map(|_| {
                Mutex::new(Core { fleet: FleetIngest::new(uncapped), output: BTreeMap::new() })
            })
            .collect();
        Ok(IngestShards {
            router,
            cores,
            meters: AtomicUsize::new(0),
            buffered: AtomicUsize::new(0),
            meters_rejected: AtomicU64::new(0),
            backlog_rejections: AtomicU64::new(0),
            max_meters: config.max_meters,
            max_buffered_bytes: config.max_buffered_bytes,
        })
    }

    /// Feeds `bytes` through the meter's shard, commits the decoded frames
    /// to that shard's output map, and returns the decoded count — `None`
    /// on any rejection (the counters record why; the session closes).
    fn ingest_commit(&self, meter: u64, bytes: &[u8]) -> Option<u64> {
        if self.buffered.load(Ordering::Acquire).saturating_add(bytes.len())
            > self.max_buffered_bytes
        {
            self.backlog_rejections.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut core = self.cores[self.router.route(meter)].lock().unwrap();
        let is_new = core.fleet.meter(meter).is_none();
        if is_new && self.meters.load(Ordering::Acquire) >= self.max_meters {
            self.meters_rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let before = core.fleet.buffered_total();
        let result = core.fleet.ingest(meter, bytes);
        let after = core.fleet.buffered_total();
        if after >= before {
            self.buffered.fetch_add(after - before, Ordering::AcqRel);
        } else {
            self.buffered.fetch_sub(before - after, Ordering::AcqRel);
        }
        if is_new && core.fleet.meter(meter).is_some() {
            self.meters.fetch_add(1, Ordering::AcqRel);
        }
        match result {
            Ok(msgs) => {
                let n = msgs.len() as u64;
                core.output.entry(meter).or_default().extend(msgs);
                Some(n)
            }
            Err(_) => None,
        }
    }

    /// Counters merged across every shard, with the fleet-level rejection
    /// counters taken from the global checks here.
    fn stats(&self) -> IngestStats {
        let mut total = IngestStats::default();
        for core in &self.cores {
            total.merge(&core.lock().unwrap().fleet.stats());
        }
        total.meters_rejected = self.meters_rejected.load(Ordering::Relaxed);
        total.backlog_rejections = self.backlog_rejections.load(Ordering::Relaxed);
        total
    }

    /// Drains every shard's output (meter keys are disjoint across shards,
    /// so the merged map is exactly their union) and merges the final
    /// ingest counters.
    fn take_report(&self) -> (BTreeMap<u64, Vec<SensorMessage>>, IngestStats) {
        let mut output = BTreeMap::new();
        let mut ingest = IngestStats::default();
        for core in &self.cores {
            let mut core = core.lock().unwrap();
            output.append(&mut core.output);
            ingest.merge(&core.fleet.stats());
        }
        ingest.meters_rejected = self.meters_rejected.load(Ordering::Relaxed);
        ingest.backlog_rejections = self.backlog_rejections.load(Ordering::Relaxed);
        (output, ingest)
    }
}

struct Shared {
    config: GatewayConfig,
    /// Set by [`Gateway::shutdown`]: acceptor stops, workers drain.
    shutdown: AtomicBool,
    /// Set by [`Gateway::set_degraded`]: the instance still serves (e.g.
    /// durable-store shards failed over) but `/readyz` reports `degraded`
    /// so operators see impaired capacity without pulling the node.
    degraded: AtomicBool,
    /// When the shutdown flag was set (drain deadline anchor).
    shutdown_at: Mutex<Option<Instant>>,
    counters: Counters,
    shards: IngestShards,
}

impl Shared {
    fn drain_deadline(&self) -> Option<Instant> {
        self.shutdown_at.lock().unwrap().map(|t| t + self.config.drain_timeout)
    }
}

/// Per-connection token bucket over bytes.
struct TokenBucket {
    rate: f64,
    capacity: f64,
    tokens: f64,
    refilled_at: Instant,
}

impl TokenBucket {
    fn new(rate_bytes_per_sec: u64, burst_bytes: u64, now: Instant) -> Self {
        TokenBucket {
            rate: rate_bytes_per_sec as f64,
            capacity: burst_bytes.max(1) as f64,
            tokens: burst_bytes.max(1) as f64,
            refilled_at: now,
        }
    }

    fn unlimited(&self) -> bool {
        self.rate <= 0.0
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.saturating_duration_since(self.refilled_at).as_secs_f64();
        self.refilled_at = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.capacity);
    }

    /// Whether a read may proceed right now (at least one token).
    fn ready(&mut self, now: Instant) -> bool {
        if self.unlimited() {
            return true;
        }
        self.refill(now);
        self.tokens >= 1.0
    }

    fn consume(&mut self, n: u64) {
        if !self.unlimited() {
            self.tokens -= n as f64; // may dip negative: the burst was spent
        }
    }
}

enum SessionState {
    Handshaking { buf: Vec<u8> },
    Streaming { meter: u64, acked: u64 },
}

/// Outcome of parsing the (possibly still partial) handshake buffer.
enum HandshakeStep {
    /// Preamble incomplete; read more bytes.
    NeedMore,
    /// Malformed preamble or wrong token — NAK and close.
    Reject(CloseReason),
    /// Authenticated: the session's meter id plus any frame bytes that
    /// trailed the handshake in the same read.
    Accept { meter: u64, rest: Vec<u8> },
}

/// Constant-time byte-slice equality: XOR-folds **every** byte pair, so
/// the comparison's duration is independent of where the first mismatch
/// sits — an early-exit `==` here would let a client binary-search the
/// auth token one byte at a time from response timing. Lengths are
/// compared up front because the handshake announces the token length on
/// the wire anyway; only the contents are secret. `black_box` keeps the
/// accumulator loop from being collapsed back into a short-circuit.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc = std::hint::black_box(acc | (x ^ y));
    }
    acc == 0
}

fn parse_handshake(buf: &mut Vec<u8>, expected_token: &[u8]) -> HandshakeStep {
    if buf.len() < HANDSHAKE_FIXED_LEN {
        return HandshakeStep::NeedMore;
    }
    if buf[..4] != HANDSHAKE_MAGIC {
        return HandshakeStep::Reject(CloseReason::HandshakeError);
    }
    let tok_len = u16::from_le_bytes([buf[12], buf[13]]) as usize;
    if tok_len > MAX_TOKEN_LEN {
        return HandshakeStep::Reject(CloseReason::HandshakeError);
    }
    if buf.len() < HANDSHAKE_FIXED_LEN + tok_len {
        return HandshakeStep::NeedMore;
    }
    let meter = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    if !constant_time_eq(&buf[HANDSHAKE_FIXED_LEN..HANDSHAKE_FIXED_LEN + tok_len], expected_token) {
        return HandshakeStep::Reject(CloseReason::AuthFailure);
    }
    let rest = buf.split_off(HANDSHAKE_FIXED_LEN + tok_len);
    HandshakeStep::Accept { meter, rest }
}

/// Why a session ended (for counter attribution).
enum CloseReason {
    Eof,
    AuthFailure,
    HandshakeError,
    Quota(Error),
    Idle,
    IoError,
    ForcedDrain,
}

struct Session {
    stream: TcpStream,
    state: SessionState,
    bucket: TokenBucket,
    throttled: bool,
    bytes_in: u64,
    last_activity: Instant,
    write_buf: Vec<u8>,
}

impl Session {
    fn new(stream: TcpStream, shared: &Shared, now: Instant) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(Session {
            stream,
            state: SessionState::Handshaking { buf: Vec::with_capacity(HANDSHAKE_FIXED_LEN) },
            bucket: TokenBucket::new(
                shared.config.rate_bytes_per_sec,
                shared.config.rate_burst_bytes,
                now,
            ),
            throttled: false,
            bytes_in: 0,
            last_activity: now,
            write_buf: Vec::new(),
        })
    }

    fn meter(&self) -> u64 {
        match self.state {
            SessionState::Streaming { meter, .. } => meter,
            _ => 0,
        }
    }

    /// Charges `n` received bytes against the connection quota, producing
    /// the typed quota error when the budget is blown.
    fn charge_quota(&mut self, n: u64, quota: u64) -> Result<()> {
        self.bytes_in += n;
        if quota > 0 && self.bytes_in > quota {
            return Err(Error::QuotaExceeded {
                meter: self.meter(),
                received: self.bytes_in,
                max: quota,
            });
        }
        Ok(())
    }

    /// Non-blocking flush of pending acks; returns `false` when the peer is
    /// unwritable (gone).
    fn flush(&mut self) -> bool {
        while !self.write_buf.is_empty() {
            match self.stream.write(&self.write_buf) {
                Ok(0) => return false,
                Ok(n) => {
                    self.write_buf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    /// One multiplexer pass over this session. Returns `Some(reason)` when
    /// the session is done, `None` to keep it registered. `made_progress`
    /// is set when bytes moved (lets the worker skip its idle sleep).
    fn pump(
        &mut self,
        shared: &Shared,
        scratch: &mut [u8],
        now: Instant,
        draining: bool,
        made_progress: &mut bool,
    ) -> Option<CloseReason> {
        if !self.flush() {
            return Some(CloseReason::IoError);
        }

        // Rate limiting: an empty bucket pauses reads (the kernel's TCP
        // window throttles the sender); the episode is surfaced as one
        // typed error, counted, never silently dropped. Draining sessions
        // bypass the limiter so shutdown is bounded by drain_timeout, not
        // by the trickle rate.
        if !draining && !self.bucket.ready(now) {
            if !self.throttled {
                self.throttled = true;
                let err = Error::RateLimited { meter: self.meter() };
                debug_assert!(!err.to_string().is_empty());
                shared.counters.rate_limit_hits.fetch_add(1, Ordering::Relaxed);
            }
            if now.saturating_duration_since(self.last_activity) > shared.config.idle_timeout {
                return Some(CloseReason::Idle);
            }
            return None;
        }
        self.throttled = false;

        let n = match self.stream.read(scratch) {
            Ok(0) => return Some(CloseReason::Eof),
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if now.saturating_duration_since(self.last_activity) > shared.config.idle_timeout {
                    return Some(CloseReason::Idle);
                }
                return None;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => return None,
            Err(_) => return Some(CloseReason::IoError),
        };
        *made_progress = true;
        self.last_activity = now;
        self.bucket.consume(n as u64);
        shared.counters.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
        if let Err(e) = self.charge_quota(n as u64, shared.config.conn_byte_quota) {
            return Some(CloseReason::Quota(e));
        }

        let chunk = &scratch[..n];
        let step = match &mut self.state {
            SessionState::Handshaking { buf } => {
                buf.extend_from_slice(chunk);
                parse_handshake(buf, &shared.config.auth_token)
            }
            SessionState::Streaming { .. } => return self.ingest_bytes(shared, chunk),
        };
        match step {
            HandshakeStep::NeedMore => None,
            HandshakeStep::Reject(reason) => {
                self.write_buf.push(HANDSHAKE_NAK);
                self.flush();
                Some(reason)
            }
            HandshakeStep::Accept { meter, rest } => {
                self.state = SessionState::Streaming { meter, acked: 0 };
                self.write_buf.push(HANDSHAKE_ACK);
                // Frame bytes may trail the handshake in the same read.
                if rest.is_empty() {
                    None
                } else {
                    self.ingest_bytes(shared, &rest)
                }
            }
        }
    }

    /// Feeds `bytes` through the meter's ingest shard, commits the decoded
    /// frames to that shard's output map, and queues a cumulative ack — in
    /// that order, under the shard's lock, so an acknowledged frame is
    /// always in the output.
    fn ingest_bytes(&mut self, shared: &Shared, bytes: &[u8]) -> Option<CloseReason> {
        let (meter, prev_acked) = match &self.state {
            SessionState::Streaming { meter, acked } => (*meter, *acked),
            _ => return Some(CloseReason::IoError),
        };
        // Fleet-level resource caps (or a fail-fast decode error in
        // non-recover mode) close the connection; the shard counters and
        // the fleet's own IngestStats record the rejection.
        let decoded = match shared.shards.ingest_commit(meter, bytes) {
            Some(n) => n,
            None => return Some(CloseReason::IoError),
        };
        if decoded > 0 {
            let acked = prev_acked + decoded;
            self.state = SessionState::Streaming { meter, acked };
            shared.counters.frames_acked.fetch_add(decoded, Ordering::Relaxed);
            self.write_buf.extend_from_slice(&acked.to_le_bytes());
            if !self.flush() {
                return Some(CloseReason::IoError);
            }
        }
        None
    }
}

/// One session worker: claims connections from the acceptor channel and
/// multiplexes them until shutdown (plus drain) completes.
fn session_worker(shared: &Arc<Shared>, conn_rx: &Receiver<TcpStream>) {
    let mut sessions: Vec<Session> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut acceptor_gone = false;
    loop {
        // Claim newly accepted connections without blocking.
        loop {
            match conn_rx.try_recv() {
                Ok(stream) => {
                    let now = Instant::now();
                    match Session::new(stream, shared, now) {
                        Ok(s) => sessions.push(s),
                        Err(_) => {
                            shared.counters.connections_active.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    acceptor_gone = true;
                    break;
                }
            }
        }

        let draining = shared.shutdown.load(Ordering::Relaxed);
        let force_close =
            draining && shared.drain_deadline().map(|d| Instant::now() >= d).unwrap_or(false);
        let mut made_progress = false;
        let now = Instant::now();
        sessions.retain_mut(|s| {
            let reason = if force_close {
                // Flush whatever acks are pending; anything unacked after
                // the deadline is abandoned, never falsely acknowledged.
                s.flush();
                Some(CloseReason::ForcedDrain)
            } else {
                s.pump(shared, &mut scratch, now, draining, &mut made_progress)
            };
            match reason {
                None => true,
                Some(r) => {
                    match r {
                        CloseReason::AuthFailure => {
                            shared.counters.auth_failures.fetch_add(1, Ordering::Relaxed);
                        }
                        CloseReason::HandshakeError => {
                            shared.counters.handshake_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        CloseReason::Quota(err) => {
                            debug_assert!(matches!(err, Error::QuotaExceeded { .. }));
                            shared.counters.quota_closed.fetch_add(1, Ordering::Relaxed);
                        }
                        CloseReason::Idle => {
                            shared.counters.idle_closed.fetch_add(1, Ordering::Relaxed);
                        }
                        CloseReason::Eof | CloseReason::IoError | CloseReason::ForcedDrain => {}
                    }
                    // A clean close lets the client read every queued ack.
                    s.flush();
                    s.stream.shutdown(std::net::Shutdown::Both).ok();
                    shared.counters.connections_active.fetch_sub(1, Ordering::Relaxed);
                    false
                }
            }
        });

        if acceptor_gone && sessions.is_empty() {
            break;
        }
        if !made_progress {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// The acceptor loop: non-blocking accepts, connection cap, handoff to the
/// worker channel. Exits when the shutdown flag is set.
fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener, conn_tx: Sender<TcpStream>) {
    listener.set_nonblocking(true).expect("loopback listener supports non-blocking");
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let active = shared.counters.connections_active.load(Ordering::Relaxed);
                if active >= shared.config.max_connections as u64 {
                    shared.counters.connections_rejected.fetch_add(1, Ordering::Relaxed);
                    drop(stream); // RST/EOF to the peer
                    continue;
                }
                shared.counters.connections_active.fetch_add(1, Ordering::Relaxed);
                shared.counters.connections_accepted.fetch_add(1, Ordering::Relaxed);
                if conn_tx.send(stream).is_err() {
                    // Every worker died (supervisor respawns make this all
                    // but impossible); undo the accept accounting.
                    shared.counters.connections_active.fetch_sub(1, Ordering::Relaxed);
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// The HTTP/1.1 sidecar: `/metrics`, `/healthz`, `/readyz`. One request per
/// connection, hand-rolled request-line parse, always `Connection: close`.
fn sidecar_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    listener.set_nonblocking(true).expect("loopback listener supports non-blocking");
    loop {
        let draining = shared.shutdown.load(Ordering::Relaxed);
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                stream.set_nonblocking(false).ok();
                stream.set_read_timeout(Some(Duration::from_millis(500))).ok();
                let mut buf = [0u8; 1024];
                let n = match stream.read(&mut buf) {
                    Ok(n) => n,
                    Err(_) => continue,
                };
                let (status, content_type, body) = route_http(&buf[..n], shared, draining);
                let response = format!(
                    "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len(),
                );
                stream.write_all(response.as_bytes()).ok();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if draining {
                    break; // served any last scrape attempts; stop
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Dispatches one HTTP request to `(status line, content type, body)`.
fn route_http(
    request: &[u8],
    shared: &Shared,
    draining: bool,
) -> (&'static str, &'static str, String) {
    let line = request.split(|&b| b == b'\r' || b == b'\n').next().unwrap_or(&[]);
    let mut parts = line.split(|&b| b == b' ');
    let method = parts.next().unwrap_or(&[]);
    let path = parts.next().unwrap_or(&[]);
    if method != b"GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        );
    }
    match path {
        b"/metrics" => {
            let reg = Registry::with_catalog();
            let stats = shared.counters.snapshot(0.0);
            stats.register_into(&reg);
            shared.shards.stats().register_into(&reg);
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", reg.render_prometheus())
        }
        b"/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".into()),
        b"/readyz" if draining => {
            ("503 Service Unavailable", "text/plain; charset=utf-8", "draining\n".into())
        }
        // Degraded ≠ draining: the node still serves (storage shards
        // failed over to successors) and must stay in rotation, so the
        // status is 200 — but the body tells operators capacity is
        // impaired. Draining wins when both are set.
        b"/readyz" if shared.degraded.load(Ordering::Relaxed) => {
            ("200 OK", "text/plain; charset=utf-8", "degraded\n".into())
        }
        b"/readyz" => ("200 OK", "text/plain; charset=utf-8", "ready\n".into()),
        _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".into()),
    }
}

/// Everything a finished gateway run reports.
#[derive(Debug)]
pub struct GatewayReport {
    /// Per-meter decoded messages, in per-meter arrival order — identical
    /// to what an in-process [`FleetIngest`] run over the same per-meter
    /// byte streams produces.
    pub output: BTreeMap<u64, Vec<SensorMessage>>,
    /// Final gateway counters (with [`GatewayStats::drain_secs`] filled).
    pub stats: GatewayStats,
    /// The shared fleet's ingest counters.
    pub ingest: IngestStats,
    /// Supervision counters of the session-worker pool (panics, respawns).
    pub pool: PoolStats,
}

impl GatewayReport {
    /// Folds this report into an [`EngineStats`] carrying the `gateway`,
    /// `ingest`, and `pool` blocks, ready for `--metrics` export.
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            gateway: Some(self.stats),
            ingest: Some(self.ingest.clone()),
            pool: Some(self.pool),
            ..EngineStats::default()
        }
    }
}

/// A running gateway instance; dropping it without calling
/// [`shutdown`](Self::shutdown) aborts the background threads hard (tests
/// should always shut down).
pub struct Gateway {
    shared: Arc<Shared>,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    runtime: Option<JoinHandle<PoolStats>>,
    acceptor: Option<JoinHandle<()>>,
    sidecar: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Binds the listeners and starts the acceptor, the supervised session
    /// workers, and (when configured) the HTTP sidecar.
    pub fn start(config: GatewayConfig) -> Result<Gateway> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))
            .map_err(|e| Error::Engine(format!("gateway bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::Engine(format!("gateway local_addr failed: {e}")))?;
        let metrics_listener = if config.http_metrics {
            Some(
                TcpListener::bind(("127.0.0.1", 0))
                    .map_err(|e| Error::Engine(format!("sidecar bind failed: {e}")))?,
            )
        } else {
            None
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(
                l.local_addr()
                    .map_err(|e| Error::Engine(format!("sidecar local_addr failed: {e}")))?,
            ),
            None => None,
        };

        let workers = config.workers.max(1);
        let ingest = config.ingest;
        let ingest_shards = config.ingest_shards;
        let shared = Arc::new(Shared {
            config,
            shutdown: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            shutdown_at: Mutex::new(None),
            counters: Counters::default(),
            shards: IngestShards::new(ingest_shards, ingest)?,
        });

        let (conn_tx, conn_rx) = channel::bounded::<TcpStream>(workers * 8);

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("smg-acceptor".into())
                .spawn(move || acceptor_loop(&shared, &listener, conn_tx))
                .map_err(|e| Error::Engine(format!("acceptor spawn failed: {e}")))?
        };

        // The session handlers run as jobs on the supervised pool: one job
        // per worker loop, so a panicking handler is caught, counted in
        // PoolStats, and the loop re-entered via retry — the same isolation
        // the fleet encoder gets.
        let runtime = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("smg-runtime".into())
                .spawn(move || {
                    let policy = SupervisorPolicy::with_retry(
                        crate::pool::RetryPolicy::with_max_attempts(u32::MAX).no_backoff(),
                    );
                    let report = pool::run_indexed_supervised_with(
                        workers,
                        &PoolConfig::with_workers(workers),
                        &policy,
                        || (),
                        |(), _idx, _attempt| session_worker(&shared, &conn_rx),
                    );
                    report.stats
                })
                .map_err(|e| Error::Engine(format!("runtime spawn failed: {e}")))?
        };

        let sidecar = match metrics_listener {
            Some(listener) => Some({
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("smg-sidecar".into())
                    .spawn(move || sidecar_loop(&shared, &listener))
                    .map_err(|e| Error::Engine(format!("sidecar spawn failed: {e}")))?
            }),
            None => None,
        };

        Ok(Gateway {
            shared,
            addr,
            metrics_addr,
            runtime: Some(runtime),
            acceptor: Some(acceptor),
            sidecar,
        })
    }

    /// The meter-facing TCP address (loopback, ephemeral port by default).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The HTTP sidecar address, when [`GatewayConfig::http_metrics`] is on.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// A live snapshot of the gateway counters.
    pub fn stats(&self) -> GatewayStats {
        self.shared.counters.snapshot(0.0)
    }

    /// Flips the degraded flag: `/readyz` answers `200 degraded` instead
    /// of `200 ready` while set (draining still wins with its 503). Wired
    /// by the durability layer when a storage shard dies and its houses
    /// fail over ([`crate::durable::DurableFleet`]).
    pub fn set_degraded(&self, degraded: bool) {
        self.shared.degraded.store(degraded, Ordering::SeqCst);
    }

    /// Whether the degraded flag is currently set.
    pub fn degraded(&self) -> bool {
        self.shared.degraded.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, flip `/readyz` to 503, drain
    /// in-flight sessions through the fleet (bounded by
    /// [`GatewayConfig::drain_timeout`]), and return the final report. No
    /// acknowledged frame is ever lost: acks are written only after their
    /// frames are committed to the output this report carries.
    pub fn shutdown(mut self) -> GatewayReport {
        let drain_started = Instant::now();
        *self.shared.shutdown_at.lock().unwrap() = Some(drain_started);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            h.join().ok();
        }
        let pool_stats = match self.runtime.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => PoolStats::default(),
        };
        if let Some(h) = self.sidecar.take() {
            h.join().ok();
        }
        let drain_secs = drain_started.elapsed().as_secs_f64();
        let (output, ingest) = self.shared.shards.take_report();
        GatewayReport {
            output,
            stats: self.shared.counters.snapshot(drain_secs),
            ingest,
            pool: pool_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::encoder::EncodedWindow;
    use crate::lookup::LookupTable;
    use crate::separators::SeparatorMethod;
    use crate::symbol::Symbol;
    use crate::wire::encode_message;

    fn table() -> LookupTable {
        let values: Vec<f64> = (0..400).map(|i| ((i * 31) % 320) as f64).collect();
        LookupTable::learn(SeparatorMethod::Median, Alphabet::with_size(8).unwrap(), &values)
            .unwrap()
    }

    fn meter_stream(windows: i64) -> (Vec<SensorMessage>, Vec<u8>) {
        let mut msgs = vec![SensorMessage::Table(table())];
        msgs.extend((0..windows).map(|i| {
            SensorMessage::Window(EncodedWindow {
                window_start: i * 900,
                symbol: Symbol::from_rank((i % 8) as u16, 3).unwrap(),
                samples: 900,
            })
        }));
        let wire = msgs.iter().flat_map(|m| encode_message(m).unwrap()).collect();
        (msgs, wire)
    }

    fn connect_and_stream(
        addr: SocketAddr,
        meter: u64,
        token: &[u8],
        wire: &[u8],
        expect_frames: u64,
    ) -> u64 {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(&encode_handshake(meter, token)).unwrap();
        let mut ack = [0u8; 1];
        conn.read_exact(&mut ack).unwrap();
        assert_eq!(ack[0], HANDSHAKE_ACK);
        conn.write_all(wire).unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        // Read cumulative acks until EOF; the last one is the total.
        let mut last = 0u64;
        let mut buf = [0u8; 8];
        while conn.read_exact(&mut buf).is_ok() {
            last = u64::from_le_bytes(buf);
        }
        assert_eq!(last, expect_frames);
        last
    }

    #[test]
    fn handshake_roundtrip_layout() {
        let hs = encode_handshake(0xDEAD_BEEF, b"tok");
        assert_eq!(&hs[..4], &HANDSHAKE_MAGIC);
        assert_eq!(u64::from_le_bytes(hs[4..12].try_into().unwrap()), 0xDEAD_BEEF);
        assert_eq!(u16::from_le_bytes([hs[12], hs[13]]), 3);
        assert_eq!(&hs[14..], b"tok");
    }

    #[test]
    fn token_bucket_refills_and_bursts() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(1000, 10, t0);
        assert!(b.ready(t0));
        b.consume(10);
        assert!(!b.ready(t0), "burst spent, no refill yet");
        assert!(b.ready(t0 + Duration::from_millis(50)), "50ms at 1000 B/s refills 50 tokens");
        let mut unlimited = TokenBucket::new(0, 1, t0);
        unlimited.consume(1_000_000);
        assert!(unlimited.ready(t0), "rate 0 disables limiting");
    }

    #[test]
    fn single_meter_loopback_roundtrip() {
        let (msgs, wire) = meter_stream(10);
        let gw = Gateway::start(GatewayConfig::default().workers(1)).unwrap();
        connect_and_stream(gw.local_addr(), 42, b"smg-local-dev", &wire, msgs.len() as u64);
        let report = gw.shutdown();
        assert_eq!(report.output.len(), 1);
        assert_eq!(report.output[&42], msgs);
        assert_eq!(report.stats.connections_accepted, 1);
        assert_eq!(report.stats.connections_active, 0);
        assert_eq!(report.stats.frames_acked, msgs.len() as u64);
        assert_eq!(
            report.stats.bytes_in,
            (wire.len() + encode_handshake(42, b"smg-local-dev").len()) as u64
        );
        assert_eq!(report.ingest.frames_ok, msgs.len() as u64);
    }

    #[test]
    fn epoch_table_cutover_flows_through_the_gateway() {
        // A meter that re-learns its separators mid-stream ships the new
        // table as an epoch frame; the gateway must commit it in order so
        // the server decodes pre-cutover windows under epoch 0 and
        // post-cutover windows under epoch 1.
        let win = |i: i64| {
            SensorMessage::Window(EncodedWindow {
                window_start: i * 900,
                symbol: Symbol::from_rank((i % 8) as u16, 3).unwrap(),
                samples: 900,
            })
        };
        let msgs = vec![
            SensorMessage::Table(table()),
            win(0),
            win(1),
            SensorMessage::EpochTable { epoch: 1, table: table() },
            win(2),
        ];
        let wire: Vec<u8> = msgs.iter().flat_map(|m| encode_message(m).unwrap()).collect();
        let gw = Gateway::start(GatewayConfig::default().workers(1)).unwrap();
        connect_and_stream(gw.local_addr(), 9, b"smg-local-dev", &wire, msgs.len() as u64);
        let report = gw.shutdown();
        assert_eq!(report.output[&9], msgs, "cutover frame must arrive in stream order");
        assert_eq!(report.ingest.frames_ok, msgs.len() as u64);
        assert_eq!(report.ingest.frames_corrupt, 0);
    }

    #[test]
    fn bad_token_is_nakked_and_counted() {
        let gw = Gateway::start(GatewayConfig::default().workers(1)).unwrap();
        let mut conn = TcpStream::connect(gw.local_addr()).unwrap();
        conn.write_all(&encode_handshake(7, b"wrong-token")).unwrap();
        let mut ack = [0u8; 1];
        conn.read_exact(&mut ack).unwrap();
        assert_eq!(ack[0], HANDSHAKE_NAK);
        // Server closes: next read is EOF.
        let mut rest = Vec::new();
        assert_eq!(conn.read_to_end(&mut rest).unwrap_or(0), 0);
        let report = gw.shutdown();
        assert_eq!(report.stats.auth_failures, 1);
        assert!(report.output.is_empty());
    }

    #[test]
    fn token_compare_is_constant_time_shaped_and_rejects_same_length_tokens() {
        // Unit properties of the comparator itself: equality, and mismatches
        // at the first byte, the last byte, and in length.
        assert!(constant_time_eq(b"", b""));
        assert!(constant_time_eq(b"smg-local-dev", b"smg-local-dev"));
        assert!(!constant_time_eq(b"Xmg-local-dev", b"smg-local-dev"));
        assert!(!constant_time_eq(b"smg-local-deX", b"smg-local-dev"));
        assert!(!constant_time_eq(b"smg-local-de", b"smg-local-dev"));
        // Regression for the early-exit `==` compare: a same-length token
        // differing only in the final byte must still be NAKed.
        let gw = Gateway::start(GatewayConfig::default().workers(1)).unwrap();
        let mut conn = TcpStream::connect(gw.local_addr()).unwrap();
        conn.write_all(&encode_handshake(7, b"smg-local-deX")).unwrap();
        let mut ack = [0u8; 1];
        conn.read_exact(&mut ack).unwrap();
        assert_eq!(ack[0], HANDSHAKE_NAK);
        let report = gw.shutdown();
        assert_eq!(report.stats.auth_failures, 1);
        assert!(report.output.is_empty());
    }

    #[test]
    fn bad_magic_is_a_handshake_error() {
        let gw = Gateway::start(GatewayConfig::default().workers(1)).unwrap();
        let mut conn = TcpStream::connect(gw.local_addr()).unwrap();
        conn.write_all(b"HTTP/1.1 GET / pls\r\n").unwrap();
        let mut ack = [0u8; 1];
        conn.read_exact(&mut ack).unwrap();
        assert_eq!(ack[0], HANDSHAKE_NAK);
        let report = gw.shutdown();
        assert_eq!(report.stats.handshake_errors, 1);
        assert_eq!(report.stats.auth_failures, 0);
    }

    #[test]
    fn byte_quota_closes_and_counts() {
        let (_, wire) = meter_stream(50);
        let quota = (encode_handshake(1, b"smg-local-dev").len() + 64) as u64;
        let gw =
            Gateway::start(GatewayConfig::default().workers(1).conn_byte_quota(quota)).unwrap();
        let mut conn = TcpStream::connect(gw.local_addr()).unwrap();
        conn.write_all(&encode_handshake(1, b"smg-local-dev")).unwrap();
        let mut ack = [0u8; 1];
        conn.read_exact(&mut ack).unwrap();
        assert_eq!(ack[0], HANDSHAKE_ACK);
        // Push until the server hangs up.
        let mut sent = 0usize;
        loop {
            match conn.write(&wire[sent % wire.len()..]) {
                Ok(0) | Err(_) => break,
                Ok(n) => sent += n,
            }
            if sent > 1 << 20 {
                break; // safety net; quota must have tripped long before
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = gw.shutdown();
        assert_eq!(report.stats.quota_closed, 1, "{:?}", report.stats);
    }

    #[test]
    fn sidecar_serves_metrics_health_ready() {
        let gw = Gateway::start(GatewayConfig::default().workers(1).http_metrics(true)).unwrap();
        let addr = gw.metrics_addr().expect("sidecar enabled");
        let get = |path: &str| -> String {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
            let mut out = String::new();
            conn.read_to_string(&mut out).unwrap();
            out
        };
        assert!(get("/healthz").starts_with("HTTP/1.1 200"));
        assert!(get("/readyz").starts_with("HTTP/1.1 200"));
        let metrics = get("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"));
        assert!(metrics.contains("# TYPE sms_gateway_connections_accepted counter"), "{metrics}");
        assert!(metrics.contains("sms_gateway_bytes_in"));
        assert!(get("/nope").starts_with("HTTP/1.1 404"));
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"));
        gw.shutdown();
    }

    #[test]
    fn readyz_reports_degraded_but_stays_in_rotation() {
        let gw = Gateway::start(GatewayConfig::default().workers(1).http_metrics(true)).unwrap();
        let addr = gw.metrics_addr().expect("sidecar enabled");
        let get = |path: &str| -> String {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
            let mut out = String::new();
            conn.read_to_string(&mut out).unwrap();
            out
        };
        let ready = get("/readyz");
        assert!(ready.starts_with("HTTP/1.1 200"), "{ready}");
        assert!(ready.ends_with("ready\n"), "{ready}");
        assert!(!gw.degraded());
        gw.set_degraded(true);
        assert!(gw.degraded());
        // Degraded is a 200: the node still serves and must stay in the
        // load-balancer rotation, but operators see the impaired state.
        let degraded = get("/readyz");
        assert!(degraded.starts_with("HTTP/1.1 200"), "{degraded}");
        assert!(degraded.ends_with("degraded\n"), "{degraded}");
        // Health stays green; degradation is a readiness concern.
        assert!(get("/healthz").starts_with("HTTP/1.1 200"));
        gw.set_degraded(false);
        assert!(get("/readyz").ends_with("ready\n"));
        // Draining wins over degraded: once shutdown starts, /readyz is 503.
        gw.set_degraded(true);
        gw.shutdown();
    }

    #[test]
    fn stats_json_has_every_counter() {
        let stats = GatewayStats {
            connections_accepted: 1,
            connections_rejected: 2,
            connections_active: 3,
            auth_failures: 4,
            handshake_errors: 5,
            rate_limit_hits: 6,
            quota_closed: 7,
            idle_closed: 8,
            bytes_in: 9,
            frames_acked: 10,
            drain_secs: 0.5,
        };
        let json = stats.to_json();
        for key in [
            "connections_accepted",
            "connections_rejected",
            "connections_active",
            "auth_failures",
            "handshake_errors",
            "rate_limit_hits",
            "quota_closed",
            "idle_closed",
            "bytes_in",
            "frames_acked",
            "drain_secs",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
    }

    #[test]
    fn typed_gateway_errors_render() {
        let e = Error::RateLimited { meter: 9 };
        assert!(e.to_string().contains("rate-limited"));
        let e = Error::QuotaExceeded { meter: 9, received: 100, max: 64 };
        assert!(e.to_string().contains("quota"));
    }
}
