//! Error types shared across the `sms-core` crate.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by symbolic-encoding operations.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An operation required at least one sample/value but got none.
    EmptyInput(&'static str),
    /// Alphabet sizes must be powers of two in `[2, 2^16]` because symbols
    /// are stored as binary strings (paper §3, "we used only the power of 2").
    InvalidAlphabetSize(usize),
    /// Symbol resolution (in bits) outside the supported `1..=16` range.
    InvalidResolution(u8),
    /// Separators handed to a lookup table were not non-decreasing.
    NonMonotonicSeparators {
        /// Index of the first offending separator.
        index: usize,
    },
    /// A lookup table of `k` symbols needs exactly `k - 1` separators.
    SeparatorCount {
        /// Separators required for the alphabet (`k - 1`).
        expected: usize,
        /// Separators actually provided.
        got: usize,
    },
    /// Attempted to combine symbolic series of incompatible resolutions
    /// without an explicit conversion.
    ResolutionMismatch {
        /// Resolution (bits) of the first operand.
        left: u8,
        /// Resolution (bits) of the second operand.
        right: u8,
    },
    /// Timestamps handed to a time series were decreasing.
    NonMonotonicTimestamps {
        /// Index of the first out-of-order sample.
        index: usize,
    },
    /// A value handed to a time series was NaN or infinite. Series are
    /// NaN-free by construction; untrusted readings go through
    /// [`crate::quality::Sanitizer`] instead.
    NonFiniteValue {
        /// Index of the first non-finite sample.
        index: usize,
    },
    /// A sample failed a data-quality check whose policy is
    /// [`crate::quality::Policy::Reject`].
    DataQuality {
        /// The defect class that was rejected (e.g. `"non_finite"`).
        defect: &'static str,
        /// Index of the first offending sample.
        index: usize,
    },
    /// [`crate::ingest::FleetIngest`] refused to create a gateway for a new
    /// meter because [`max_meters`](crate::ingest::IngestConfig::max_meters)
    /// gateways already exist.
    TooManyMeters {
        /// The configured cap.
        max: usize,
    },
    /// [`crate::ingest::FleetIngest`] refused a chunk because accepting it
    /// could push the fleet's buffered backlog past
    /// [`max_buffered_bytes`](crate::ingest::IngestConfig::max_buffered_bytes).
    BacklogExceeded {
        /// Bytes currently buffered across every meter.
        buffered: usize,
        /// Size of the rejected chunk.
        incoming: usize,
        /// The configured cap.
        max: usize,
    },
    /// A parameter was outside its documented domain.
    InvalidParameter {
        /// The parameter's name.
        name: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// A symbol string failed to parse (only '0'/'1' are valid characters).
    SymbolParse(String),
    /// Wire-format decoding failed.
    WireFormat(String),
    /// A frame header announced a payload larger than the decoder's
    /// configured [`max_frame_len`](crate::wire::FrameDecoder::max_frame_len).
    /// Returned instead of buffering indefinitely for a frame that may never
    /// complete (an adversarial header can announce up to 4 GiB).
    FrameTooLarge {
        /// Payload length announced by the frame header.
        len: usize,
        /// The decoder's configured maximum.
        max: usize,
    },
    /// A non-blocking operation could not proceed without blocking (e.g.
    /// [`try_feed`](crate::engine::FleetStream::try_feed) on a full queue).
    /// Retry after draining, or use a timeout-based variant.
    WouldBlock,
    /// A bounded-wait operation gave up after its timeout elapsed (e.g.
    /// [`feed_timeout`](crate::engine::FleetStream::feed_timeout) against a
    /// pipeline that never drained).
    FeedTimeout {
        /// How long the operation waited before giving up, in milliseconds.
        waited_ms: u64,
    },
    /// A gateway connection was throttled by its token-bucket rate limiter:
    /// the session's bucket is empty and reads are paused until it refills.
    /// Counted in [`crate::gateway::GatewayStats::rate_limit_hits`], never
    /// dropped silently.
    RateLimited {
        /// Meter id of the throttled session.
        meter: u64,
    },
    /// A gateway connection exceeded its per-connection byte quota and was
    /// closed. Counted in
    /// [`crate::gateway::GatewayStats::quota_closed`], never dropped
    /// silently.
    QuotaExceeded {
        /// Meter id of the closed session.
        meter: u64,
        /// Bytes the connection had already sent.
        received: u64,
        /// The configured per-connection quota.
        max: u64,
    },
    /// (De)serialization of a lookup table failed.
    Serde(String),
    /// The parallel fleet engine failed (worker or channel breakdown).
    Engine(String),
    /// A [`crate::segstore::SegmentStore`] operation failed: an irregular
    /// series that cannot be packed as `(start, interval, count)`, a query
    /// outside a segment's resolution, or a persisted image whose announced
    /// lengths do not reconcile with the buffer (validated **before** any
    /// allocation, like the wire decoder's
    /// [`FrameTooLarge`](Self::FrameTooLarge) path).
    Store(String),
    /// A durable-storage backend operation ([`crate::durable::Storage`])
    /// failed. The operation may have partially applied — the backend's
    /// on-disk state must be treated as torn until recovery re-opens it.
    /// Carried as a message because `std::io::Error` is neither `Clone`
    /// nor `PartialEq`. The shard layer treats this variant (and only
    /// this variant) as grounds to mark a shard dead and fail its houses
    /// over to successor vnodes.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyInput(what) => write!(f, "empty input: {what}"),
            Error::InvalidAlphabetSize(k) => {
                write!(f, "invalid alphabet size {k}: must be a power of two in [2, 65536]")
            }
            Error::InvalidResolution(bits) => {
                write!(f, "invalid symbol resolution {bits} bits: must be in 1..=16")
            }
            Error::NonMonotonicSeparators { index } => {
                write!(f, "separators must be non-decreasing (violated at index {index})")
            }
            Error::SeparatorCount { expected, got } => {
                write!(f, "expected {expected} separators, got {got}")
            }
            Error::ResolutionMismatch { left, right } => {
                write!(f, "symbol resolution mismatch: {left} bits vs {right} bits")
            }
            Error::NonMonotonicTimestamps { index } => {
                write!(f, "timestamps must be non-decreasing (violated at index {index})")
            }
            Error::NonFiniteValue { index } => {
                write!(f, "values must be finite (NaN/inf at index {index})")
            }
            Error::DataQuality { defect, index } => {
                write!(f, "data-quality check `{defect}` rejected sample {index}")
            }
            Error::TooManyMeters { max } => {
                write!(f, "meter limit reached: {max} gateways already exist")
            }
            Error::BacklogExceeded { buffered, incoming, max } => {
                write!(
                    f,
                    "ingest backlog limit: {buffered} bytes buffered + {incoming} incoming \
                     exceeds the {max}-byte cap"
                )
            }
            Error::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Error::SymbolParse(s) => write!(f, "cannot parse symbol from {s:?}"),
            Error::WireFormat(msg) => write!(f, "wire format error: {msg}"),
            Error::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the decoder limit of {max} bytes")
            }
            Error::WouldBlock => write!(f, "operation would block (queue full)"),
            Error::FeedTimeout { waited_ms } => {
                write!(f, "feed timed out after {waited_ms} ms of backpressure")
            }
            Error::RateLimited { meter } => {
                write!(f, "meter {meter} rate-limited: token bucket empty, reads paused")
            }
            Error::QuotaExceeded { meter, received, max } => {
                write!(
                    f,
                    "meter {meter} exceeded its per-connection quota: {received} bytes \
                     received, cap {max}"
                )
            }
            Error::Serde(msg) => write!(f, "serde error: {msg}"),
            Error::Engine(msg) => write!(f, "fleet engine error: {msg}"),
            Error::Store(msg) => write!(f, "segment store error: {msg}"),
            Error::Io(msg) => write!(f, "storage i/o error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidAlphabetSize(3);
        assert!(e.to_string().contains("power of two"));
        let e = Error::SeparatorCount { expected: 15, got: 3 };
        assert!(e.to_string().contains("15"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
