//! Crash-safe durability under the segment store: a write-ahead log,
//! atomic generation-numbered checkpoints, and deterministic recovery.
//!
//! PR 8's [`crate::segstore::SegmentStore`] "persists" only as an
//! in-memory image — a process crash loses every acknowledged symbol,
//! contradicting the gateway's ack-after-commit contract. This module
//! closes that gap with the classic WAL + checkpoint discipline:
//!
//! * [`Storage`] — the backend trait (`open`/`append`/`read`/`sync`/
//!   `rename`/`truncate`/…). [`FsStorage`] implements it over `std::fs`;
//!   [`FaultStorage`] is a deterministic in-memory double that can fail,
//!   short-write, or tear any operation at the Nth call, so every crash
//!   point is replayable bit-for-bit.
//! * [`DurableStore`] — a [`SegmentStore`] fronted by a WAL of
//!   length-prefixed, CRC32-checksummed records with a group-commit
//!   fsync policy ([`DurableConfig::group_commit`]) and periodic atomic
//!   checkpoints: temp file + checksum footer + rename + directory sync,
//!   tracked by a generation-numbered manifest. The old generation's WAL
//!   is dropped only **after** its successor checkpoint is durable.
//! * Recovery ([`DurableStore::open`]) = latest valid checkpoint + WAL
//!   replay. A torn WAL tail is scanned, verified, and truncated at the
//!   first bad record — a typed count in [`RecoveryReport::discarded`],
//!   never a panic. A corrupt newest checkpoint falls back one
//!   generation (whose WAL is still on disk, because WAL disposal waits
//!   for checkpoint durability).
//! * [`DurableFleet`] — one durable store per shard behind the
//!   consistent-hash ring of [`crate::shard::ShardRouter`]. A shard whose
//!   backend returns [`Error::Io`] is marked dead; its houses
//!   deterministically re-route to the successor vnodes
//!   ([`crate::shard::ShardRouter::route_alive`]).
//!
//! ## Durability invariants
//!
//! 1. **Acknowledged ⇒ durable.** [`DurableStore::commit`] returns only
//!    after the WAL is fsynced; a record is ack-able to its producer only
//!    after the commit covering it returns `Ok`.
//! 2. **Recovered state is a prefix.** Recovery yields exactly the store
//!    produced by the first `j` appended records for some `j ≥` the
//!    number of committed records — never a reordering, never a torn
//!    segment. The paper's prefix-truncation law makes the check crisp:
//!    the recovered image must be byte-identical to the reference prefix
//!    at **every** resolution `r ∈ 1..=b`.
//! 3. **Checkpoints are atomic.** A checkpoint is visible only after its
//!    image (with the CRC32 footer of [`SegmentStore::to_bytes`]) is
//!    fully synced, renamed into place, the directory synced, and its
//!    generation appended to the manifest — so recovery can always trust
//!    a manifest-listed generation or fall back one.

use std::collections::BTreeMap;
use std::io::Write;

use crate::error::{Error, Result};
use crate::horizontal::SymbolicSeries;
use crate::segstore::SegmentStore;
use crate::shard::ShardRouter;
use crate::telemetry::Registry;

// --- CRC32 ----------------------------------------------------------------

/// The CRC32 (IEEE 802.3, reflected, `0xEDB88320`) lookup table, built at
/// compile time — the workspace has no crates.io access, so the checksum
/// is hand-rolled here and shared by the WAL, the manifest, and the
/// segment-store image footer.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data`.
///
/// ```
/// // Check value from the CRC catalogue: crc32("123456789") = 0xCBF43926.
/// assert_eq!(sms_core::durable::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// --- storage backends -----------------------------------------------------

/// A flat-namespace storage backend: named append-only-ish files in one
/// directory. Every mutating call may return [`Error::Io`]; callers must
/// then treat the backend as torn until recovery re-opens it.
pub trait Storage {
    /// Creates `file` empty if it does not exist (leaves existing content
    /// intact). The new directory entry is durable only after
    /// [`sync_dir`](Self::sync_dir).
    fn open(&mut self, file: &str) -> Result<()>;
    /// Appends `data` to `file`. Durable only after [`sync`](Self::sync).
    fn append(&mut self, file: &str, data: &[u8]) -> Result<()>;
    /// The full content of `file`.
    fn read(&mut self, file: &str) -> Result<Vec<u8>>;
    /// Whether `file` exists (metadata-only; never fault-injected).
    fn exists(&self, file: &str) -> bool;
    /// Makes `file`'s content durable (fsync).
    fn sync(&mut self, file: &str) -> Result<()>;
    /// Makes pending namespace changes (creates, renames, removes)
    /// durable (fsync of the directory).
    fn sync_dir(&mut self) -> Result<()>;
    /// Atomically replaces `to` with `from`. Durable only after
    /// [`sync_dir`](Self::sync_dir).
    fn rename(&mut self, from: &str, to: &str) -> Result<()>;
    /// Truncates `file` to `len` bytes.
    fn truncate(&mut self, file: &str, len: u64) -> Result<()>;
    /// Removes `file` if present. Durable only after
    /// [`sync_dir`](Self::sync_dir).
    fn remove(&mut self, file: &str) -> Result<()>;
}

impl<S: Storage + ?Sized> Storage for &mut S {
    fn open(&mut self, file: &str) -> Result<()> {
        (**self).open(file)
    }
    fn append(&mut self, file: &str, data: &[u8]) -> Result<()> {
        (**self).append(file, data)
    }
    fn read(&mut self, file: &str) -> Result<Vec<u8>> {
        (**self).read(file)
    }
    fn exists(&self, file: &str) -> bool {
        (**self).exists(file)
    }
    fn sync(&mut self, file: &str) -> Result<()> {
        (**self).sync(file)
    }
    fn sync_dir(&mut self) -> Result<()> {
        (**self).sync_dir()
    }
    fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        (**self).rename(from, to)
    }
    fn truncate(&mut self, file: &str, len: u64) -> Result<()> {
        (**self).truncate(file, len)
    }
    fn remove(&mut self, file: &str) -> Result<()> {
        (**self).remove(file)
    }
}

fn io_err(op: &str, file: &str, e: std::io::Error) -> Error {
    Error::Io(format!("{op} {file}: {e}"))
}

/// [`Storage`] over a real directory via `std::fs`.
#[derive(Debug)]
pub struct FsStorage {
    root: std::path::PathBuf,
}

impl FsStorage {
    /// A backend rooted at `root`, creating the directory if needed.
    pub fn new(root: impl Into<std::path::PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| io_err("create_dir_all", &root.display().to_string(), e))?;
        Ok(FsStorage { root })
    }

    fn path(&self, file: &str) -> std::path::PathBuf {
        self.root.join(file)
    }
}

impl Storage for FsStorage {
    fn open(&mut self, file: &str) -> Result<()> {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(file))
            .map(|_| ())
            .map_err(|e| io_err("open", file, e))
    }

    fn append(&mut self, file: &str, data: &[u8]) -> Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(file))
            .map_err(|e| io_err("open", file, e))?;
        f.write_all(data).map_err(|e| io_err("append", file, e))
    }

    fn read(&mut self, file: &str) -> Result<Vec<u8>> {
        std::fs::read(self.path(file)).map_err(|e| io_err("read", file, e))
    }

    fn exists(&self, file: &str) -> bool {
        self.path(file).exists()
    }

    fn sync(&mut self, file: &str) -> Result<()> {
        std::fs::File::open(self.path(file))
            .and_then(|f| f.sync_all())
            .map_err(|e| io_err("sync", file, e))
    }

    fn sync_dir(&mut self) -> Result<()> {
        // Windows cannot open a directory as a File; directory sync is a
        // POSIX notion. Failing soft there would hide bugs on the platform
        // CI actually runs on, so only non-Unix downgrades to a no-op.
        #[cfg(unix)]
        {
            std::fs::File::open(&self.root)
                .and_then(|f| f.sync_all())
                .map_err(|e| io_err("sync_dir", &self.root.display().to_string(), e))
        }
        #[cfg(not(unix))]
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        std::fs::rename(self.path(from), self.path(to)).map_err(|e| io_err("rename", from, e))
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<()> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(file))
            .map_err(|e| io_err("open", file, e))?;
        f.set_len(len).map_err(|e| io_err("truncate", file, e))
    }

    fn remove(&mut self, file: &str) -> Result<()> {
        match std::fs::remove_file(self.path(file)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", file, e)),
        }
    }
}

/// A deterministic fault plan for [`FaultStorage`]: which mutating call
/// fails, and what the injected crash leaves behind.
///
/// Plans are plain data so [`sms_bench`'s fault
/// injector](../../sms_bench/ingest_exp) can generate them from the same
/// seeded machinery as its stream/series faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// 1-based index of the mutating call that fails (the "crash"). Every
    /// later mutating call also fails. `None` = never fail.
    pub crash_at_op: Option<u64>,
    /// If the crashing call is an `append`, persist this many of its bytes
    /// (a short write) before failing. `None` = the crashing append writes
    /// nothing.
    pub short_write_keep: Option<u64>,
    /// Seed deciding, per file, how much of the un-synced tail survives
    /// into [`FaultStorage::crash_view`] — the torn-tail dial.
    pub tear_seed: u64,
    /// Additionally flip one bit in the last surviving un-synced byte, so
    /// torn tails exercise the CRC path, not just the length check.
    pub corrupt_torn_byte: bool,
}

impl FaultPlan {
    /// A plan that crashes at mutating call `op` (1-based) with `seed`
    /// driving tail survival.
    pub fn crash_at(op: u64, seed: u64) -> Self {
        FaultPlan { crash_at_op: Some(op), tear_seed: seed, ..FaultPlan::default() }
    }
}

#[derive(Debug, Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    synced_len: usize,
}

/// Deterministic in-memory [`Storage`] with fault injection.
///
/// Models a crash-consistent device: content synced via [`Storage::sync`]
/// and namespace changes synced via [`Storage::sync_dir`] survive a
/// crash; anything newer may be lost or torn. Mutating calls are counted,
/// and the call whose 1-based index equals
/// [`FaultPlan::crash_at_op`] fails with [`Error::Io`] — as does every
/// mutating call after it. [`crash_view`](Self::crash_view) then produces
/// the storage a restarted process would find, with un-synced tails
/// deterministically torn by [`FaultPlan::tear_seed`].
#[derive(Debug, Clone, Default)]
pub struct FaultStorage {
    /// Live namespace: name → file id.
    live: BTreeMap<String, u64>,
    /// Namespace at the last `sync_dir` — what a crash preserves.
    durable: BTreeMap<String, u64>,
    /// File contents by id (never garbage-collected; ids are unique).
    contents: BTreeMap<u64, MemFile>,
    next_id: u64,
    plan: FaultPlan,
    ops: u64,
    crashed: bool,
}

impl FaultStorage {
    /// Fault-free storage (useful as the recovery target of
    /// [`crash_view`](Self::crash_view)).
    pub fn new() -> Self {
        FaultStorage::default()
    }

    /// Storage that fails per `plan`.
    pub fn with_plan(plan: FaultPlan) -> Self {
        FaultStorage { plan, ..FaultStorage::default() }
    }

    /// Mutating calls observed so far (the sweep axis of `repro crash`).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Whether the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Counts one mutating call; returns the injected error at and after
    /// the planned crash point.
    fn tick(&mut self, op: &str) -> Result<()> {
        if self.crashed {
            return Err(Error::Io(format!("{op}: storage crashed (injected)")));
        }
        self.ops += 1;
        if Some(self.ops) == self.plan.crash_at_op {
            self.crashed = true;
            return Err(Error::Io(format!("{op}: injected crash at op {}", self.ops)));
        }
        Ok(())
    }

    fn live_file(&mut self, file: &str) -> Result<&mut MemFile> {
        let id = *self.live.get(file).ok_or_else(|| Error::Io(format!("{file}: no such file")))?;
        Ok(self.contents.get_mut(&id).expect("live id has content"))
    }

    /// The storage a restarted process finds after the crash: the durable
    /// namespace, each file cut to its synced length plus a
    /// `tear_seed`-determined prefix of its un-synced tail (optionally
    /// with one flipped bit). Deterministic — the same plan and history
    /// always yield the same view. The view itself is fault-free.
    pub fn crash_view(&self) -> FaultStorage {
        let mut out = FaultStorage::new();
        for (name, &id) in &self.durable {
            let f = &self.contents[&id];
            let unsynced = f.data.len() - f.synced_len;
            let survive = if unsynced == 0 {
                0
            } else {
                let mut h = self.plan.tear_seed ^ crc32(name.as_bytes()) as u64;
                h = crate::shard::splitmix64(h);
                (h % (unsynced as u64 + 1)) as usize
            };
            let mut data = f.data[..f.synced_len + survive].to_vec();
            if self.plan.corrupt_torn_byte && survive > 0 {
                let at = data.len() - 1;
                data[at] ^= 1;
            }
            let new_id = out.next_id;
            out.next_id += 1;
            out.contents.insert(new_id, MemFile { synced_len: data.len(), data });
            out.live.insert(name.clone(), new_id);
            out.durable.insert(name.clone(), new_id);
        }
        out
    }
}

impl Storage for FaultStorage {
    fn open(&mut self, file: &str) -> Result<()> {
        self.tick("open")?;
        if !self.live.contains_key(file) {
            let id = self.next_id;
            self.next_id += 1;
            self.contents.insert(id, MemFile::default());
            self.live.insert(file.to_string(), id);
        }
        Ok(())
    }

    fn append(&mut self, file: &str, data: &[u8]) -> Result<()> {
        if let Err(e) = self.tick("append") {
            // The crashing append may short-write a prefix before failing.
            if self.ops == self.plan.crash_at_op.unwrap_or(0) {
                if let Some(keep) = self.plan.short_write_keep {
                    let keep = (keep as usize).min(data.len());
                    if let Ok(f) = self.live_file(file) {
                        f.data.extend_from_slice(&data[..keep]);
                    }
                }
            }
            return Err(e);
        }
        self.live_file(file)?.data.extend_from_slice(data);
        Ok(())
    }

    fn read(&mut self, file: &str) -> Result<Vec<u8>> {
        Ok(self.live_file(file)?.data.clone())
    }

    fn exists(&self, file: &str) -> bool {
        self.live.contains_key(file)
    }

    fn sync(&mut self, file: &str) -> Result<()> {
        self.tick("sync")?;
        let f = self.live_file(file)?;
        f.synced_len = f.data.len();
        Ok(())
    }

    fn sync_dir(&mut self) -> Result<()> {
        self.tick("sync_dir")?;
        self.durable = self.live.clone();
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        self.tick("rename")?;
        let id =
            self.live.remove(from).ok_or_else(|| Error::Io(format!("{from}: no such file")))?;
        self.live.insert(to.to_string(), id);
        Ok(())
    }

    fn truncate(&mut self, file: &str, len: u64) -> Result<()> {
        self.tick("truncate")?;
        let f = self.live_file(file)?;
        let len = (len as usize).min(f.data.len());
        f.data.truncate(len);
        f.synced_len = f.synced_len.min(len);
        Ok(())
    }

    fn remove(&mut self, file: &str) -> Result<()> {
        self.tick("remove")?;
        self.live.remove(file);
        Ok(())
    }
}

// --- WAL + manifest wire formats ------------------------------------------

/// Manifest file name (append-only generation records).
const MANIFEST: &str = "MANIFEST";
/// Checkpoint temp file (renamed into place on commit).
const CKPT_TMP: &str = "ckpt.tmp";

fn ckpt_name(generation: u64) -> String {
    format!("ckpt-{generation:016x}.img")
}

fn wal_name(generation: u64) -> String {
    format!("wal-{generation:016x}.log")
}

/// One WAL/manifest record header: payload length then CRC32 of the
/// payload, both LE u32.
const RECORD_HEADER: usize = 8;

fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of scanning a record stream: byte offset of the last valid
/// record's end, the valid payload slices, and whether a bad/torn record
/// stopped the scan.
struct RecordScan<'a> {
    payloads: Vec<&'a [u8]>,
    valid_len: u64,
    torn: bool,
}

/// Scans `len | crc | payload` records, stopping (never panicking) at the
/// first record whose length runs past the buffer or whose CRC fails.
fn scan_records(buf: &[u8]) -> RecordScan<'_> {
    let mut payloads = Vec::new();
    let mut at = 0usize;
    while buf.len() - at >= RECORD_HEADER {
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes")) as usize;
        let want = u32::from_le_bytes(buf[at + 4..at + 8].try_into().expect("4 bytes"));
        let Some(end) = at.checked_add(RECORD_HEADER).and_then(|s| s.checked_add(len)) else {
            return RecordScan { payloads, valid_len: at as u64, torn: true };
        };
        if end > buf.len() {
            return RecordScan { payloads, valid_len: at as u64, torn: true };
        }
        let payload = &buf[at + RECORD_HEADER..end];
        if crc32(payload) != want {
            return RecordScan { payloads, valid_len: at as u64, torn: true };
        }
        payloads.push(payload);
        at = end;
    }
    RecordScan { payloads, valid_len: at as u64, torn: at != buf.len() }
}

/// Fixed prefix of a WAL segment record:
/// `house u64 | start i64 | interval i64 | count u64 | bits u8`.
const WAL_SEG_FIXED: usize = 8 + 8 + 8 + 8 + 1;

fn encode_segment_record(house: u64, series: &SymbolicSeries) -> Vec<u8> {
    let ts = series.timestamps();
    let interval = if ts.len() >= 2 { ts[1] - ts[0] } else { 0 };
    let packed = series.pack_symbols();
    let mut payload = Vec::with_capacity(WAL_SEG_FIXED + packed.len());
    payload.extend_from_slice(&house.to_le_bytes());
    payload.extend_from_slice(&ts[0].to_le_bytes());
    payload.extend_from_slice(&interval.to_le_bytes());
    payload.extend_from_slice(&(series.len() as u64).to_le_bytes());
    payload.push(series.resolution_bits());
    payload.extend_from_slice(&packed);
    payload
}

fn decode_segment_record(payload: &[u8]) -> Result<(u64, SymbolicSeries)> {
    if payload.len() < WAL_SEG_FIXED {
        return Err(Error::Io(format!("WAL record of {} bytes is too short", payload.len())));
    }
    let house = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let start = i64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
    let interval = i64::from_le_bytes(payload[16..24].try_into().expect("8 bytes"));
    let count = u64::from_le_bytes(payload[24..32].try_into().expect("8 bytes"));
    let bits = payload[32];
    let count = usize::try_from(count)
        .map_err(|_| Error::Io(format!("WAL record announces {count} symbols")))?;
    let expect = count
        .checked_mul(bits as usize)
        .map(|b| b.div_ceil(8))
        .ok_or_else(|| Error::Io("WAL record payload size overflows".to_string()))?;
    if payload.len() - WAL_SEG_FIXED != expect {
        return Err(Error::Io(format!(
            "WAL record holds {} payload bytes, {count} symbols at {bits} bits need {expect}",
            payload.len() - WAL_SEG_FIXED
        )));
    }
    let series =
        SymbolicSeries::unpack_symbols(&payload[WAL_SEG_FIXED..], bits, count, start, interval)
            .map_err(|e| Error::Io(format!("WAL record decode: {e}")))?;
    Ok((house, series))
}

// --- the durable store ----------------------------------------------------

/// Tuning for [`DurableStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableConfig {
    /// Group-commit width: fsync the WAL after this many appended records
    /// (`1` = sync every record). [`DurableStore::commit`] always syncs
    /// whatever is pending.
    pub group_commit: usize,
    /// Take a checkpoint after this many records since the last one
    /// (`0` = only on explicit [`DurableStore::checkpoint`] calls).
    pub checkpoint_every: u64,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig { group_commit: 32, checkpoint_every: 0 }
    }
}

impl DurableConfig {
    /// Sets the group-commit width (clamped to ≥ 1).
    pub fn group_commit(mut self, records: usize) -> Self {
        self.group_commit = records.max(1);
        self
    }

    /// Sets the automatic checkpoint cadence (`0` disables).
    pub fn checkpoint_every(mut self, records: u64) -> Self {
        self.checkpoint_every = records;
        self
    }
}

/// What [`DurableStore::open`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether prior on-disk state existed (false = fresh initialization).
    pub recovered: bool,
    /// Generation of the checkpoint the store was rebuilt from (`0` =
    /// no checkpoint, empty base).
    pub generation: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Torn/corrupt tail records discarded from the WAL (the WAL file was
    /// truncated at the first bad record).
    pub discarded: u64,
    /// Checkpoint generations that were listed in the manifest but
    /// unreadable/corrupt, forcing a one-generation fallback.
    pub fallbacks: u64,
}

/// Counters for the durability layer; rendered as the `"durable"` block
/// of [`crate::engine::EngineStats::to_json`] and the Prometheus
/// exposition. Every field is a deterministic function of the append
/// sequence and the fault plan — no wall-clock quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurableStats {
    /// Records appended to the write-ahead log.
    pub wal_appends: u64,
    /// Bytes appended to the write-ahead log (headers included).
    pub wal_bytes: u64,
    /// Backend sync calls issued (WAL group commits, checkpoint and
    /// manifest syncs, directory syncs).
    pub fsyncs: u64,
    /// Torn/corrupt WAL tail records discarded during recovery.
    pub torn_records_dropped: u64,
    /// Checkpoints committed (manifest record durable).
    pub checkpoints: u64,
    /// Recoveries performed over existing on-disk state.
    pub recoveries: u64,
    /// WAL records replayed during recovery.
    pub replayed_records: u64,
    /// Shards marked dead and failed over to successor vnodes.
    pub shard_failovers: u64,
}

impl DurableStats {
    /// Registers this block's [`crate::telemetry::CATALOG`] metrics into
    /// `reg` and loads their current values.
    pub fn register_into(&self, reg: &Registry) {
        reg.register_block("durable");
        reg.add("sms_durable_wal_appends", self.wal_appends);
        reg.add("sms_durable_wal_bytes", self.wal_bytes);
        reg.add("sms_durable_fsyncs", self.fsyncs);
        reg.add("sms_durable_torn_records_dropped", self.torn_records_dropped);
        reg.add("sms_durable_checkpoints", self.checkpoints);
        reg.add("sms_durable_recoveries", self.recoveries);
        reg.add("sms_durable_replayed_records", self.replayed_records);
        reg.add("sms_durable_shard_failovers", self.shard_failovers);
    }

    /// Adds `other`'s counters into `self` (for aggregating shards or
    /// sweep iterations).
    pub fn merge(&mut self, other: &DurableStats) {
        self.wal_appends += other.wal_appends;
        self.wal_bytes += other.wal_bytes;
        self.fsyncs += other.fsyncs;
        self.torn_records_dropped += other.torn_records_dropped;
        self.checkpoints += other.checkpoints;
        self.recoveries += other.recoveries;
        self.replayed_records += other.replayed_records;
        self.shard_failovers += other.shard_failovers;
    }
}

/// A [`SegmentStore`] with a write-ahead log and atomic checkpoints on a
/// [`Storage`] backend.
///
/// Appends go WAL-first (in memory second); [`commit`](Self::commit) —
/// called automatically every [`DurableConfig::group_commit`] records —
/// fsyncs the WAL and makes everything appended so far ack-able.
/// [`open`](Self::open) runs recovery. Any backend [`Error::Io`] poisons
/// the store: the in-memory image may then be ahead of the log, so every
/// later call fails and the caller must discard the instance and
/// re-`open` over the (possibly torn) backend.
#[derive(Debug)]
pub struct DurableStore<S: Storage> {
    storage: S,
    store: SegmentStore,
    config: DurableConfig,
    /// Generation whose WAL is being appended to.
    generation: u64,
    /// Newest generation ever listed in the manifest (checkpoints continue
    /// from here even after a fallback, so a corrupt checkpoint is never
    /// silently overwritten-in-place).
    newest_gen: u64,
    /// Records appended but not yet covered by a WAL fsync.
    unsynced: u64,
    /// Records durable (covered by a commit) in this store's lifetime plus
    /// everything recovered at open.
    durable_records: u64,
    /// Records appended since the last checkpoint.
    since_checkpoint: u64,
    poisoned: bool,
    stats: DurableStats,
}

impl<S: Storage> DurableStore<S> {
    /// Opens (recovering) or initializes a durable store on `storage`.
    pub fn open(storage: S, config: DurableConfig) -> Result<(Self, RecoveryReport)> {
        let mut this = DurableStore {
            storage,
            store: SegmentStore::new(),
            config,
            generation: 0,
            newest_gen: 0,
            unsynced: 0,
            durable_records: 0,
            since_checkpoint: 0,
            poisoned: false,
            stats: DurableStats::default(),
        };
        let report = this.recover()?;
        Ok((this, report))
    }

    fn recover(&mut self) -> Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        if !self.storage.exists(MANIFEST) {
            // Fresh directory: manifest with generation 0, empty WAL.
            self.storage.open(MANIFEST)?;
            self.storage.append(MANIFEST, &encode_record(&0u64.to_le_bytes()))?;
            self.sync(MANIFEST)?;
            self.storage.open(&wal_name(0))?;
            self.sync_dir()?;
            return Ok(report);
        }
        report.recovered = true;
        self.stats.recoveries += 1;

        // Manifest: last valid generation record wins; a torn tail is
        // repaired in place so the next checkpoint appends cleanly.
        let manifest = self.storage.read(MANIFEST)?;
        let scan = scan_records(&manifest);
        if scan.torn {
            self.storage.truncate(MANIFEST, scan.valid_len)?;
            self.sync(MANIFEST)?;
        }
        let newest = scan
            .payloads
            .iter()
            .rev()
            .find(|p| p.len() == 8)
            .map(|p| u64::from_le_bytes((*p).try_into().expect("8 bytes")))
            .unwrap_or(0);
        self.newest_gen = newest;

        // Latest valid checkpoint, falling back one generation if the
        // newest is unreadable or fails its image checksum.
        let mut base = None;
        for generation in [Some(newest), newest.checked_sub(1)].into_iter().flatten() {
            if generation == 0 {
                base = Some((0, SegmentStore::new()));
                break;
            }
            let loaded = self
                .storage
                .read(&ckpt_name(generation))
                .and_then(|img| SegmentStore::from_bytes(&img));
            match loaded {
                Ok(store) => {
                    base = Some((generation, store));
                    break;
                }
                Err(_) => report.fallbacks += 1,
            }
        }
        let Some((generation, store)) = base else {
            return Err(Error::Io(format!(
                "no valid checkpoint at generation {newest} or {}",
                newest.saturating_sub(1)
            )));
        };
        report.generation = generation;
        self.generation = generation;
        self.store = store;

        // WAL replay with torn-tail repair. A missing WAL (crash between
        // the manifest sync and the WAL create) is an empty one.
        let wal = wal_name(generation);
        if !self.storage.exists(&wal) {
            self.storage.open(&wal)?;
            self.sync_dir()?;
        }
        let bytes = self.storage.read(&wal)?;
        let scan = scan_records(&bytes);
        for payload in &scan.payloads {
            let (house, series) = decode_segment_record(payload)?;
            self.store.append(house, &series)?;
            report.replayed += 1;
        }
        if scan.torn {
            report.discarded += 1;
            self.stats.torn_records_dropped += 1;
            self.storage.truncate(&wal, scan.valid_len)?;
            self.sync(&wal)?;
        }
        self.stats.replayed_records = report.replayed;
        self.durable_records = self.store.stats().segments_written;
        Ok(report)
    }

    fn sync(&mut self, file: &str) -> Result<()> {
        self.storage.sync(file)?;
        self.stats.fsyncs += 1;
        Ok(())
    }

    fn sync_dir(&mut self) -> Result<()> {
        self.storage.sync_dir()?;
        self.stats.fsyncs += 1;
        Ok(())
    }

    fn guard(&self) -> Result<()> {
        if self.poisoned {
            return Err(Error::Io(
                "durable store poisoned by an earlier backend failure; re-open to recover"
                    .to_string(),
            ));
        }
        Ok(())
    }

    /// Appends `series` as one segment of `house`: validates and applies
    /// it to the in-memory store, logs it to the WAL, and group-commits
    /// per [`DurableConfig`]. The record is durable (ack-able) only once
    /// a [`commit`](Self::commit) covering it returns `Ok`.
    pub fn append(&mut self, house: u64, series: &SymbolicSeries) -> Result<usize> {
        self.guard()?;
        // The in-memory append runs first: it owns validation, so the WAL
        // only ever holds records that replay cleanly.
        let id = self.store.append(house, series)?;
        let record = encode_record(&encode_segment_record(house, series));
        if let Err(e) = self.storage.append(&wal_name(self.generation), &record) {
            self.poisoned = true;
            return Err(e);
        }
        self.stats.wal_appends += 1;
        self.stats.wal_bytes += record.len() as u64;
        self.unsynced += 1;
        self.since_checkpoint += 1;
        if self.unsynced >= self.config.group_commit as u64 {
            self.commit()?;
        }
        if self.config.checkpoint_every > 0 && self.since_checkpoint >= self.config.checkpoint_every
        {
            self.checkpoint()?;
        }
        Ok(id)
    }

    /// Fsyncs the WAL, making every record appended so far durable.
    pub fn commit(&mut self) -> Result<()> {
        self.guard()?;
        if self.unsynced == 0 {
            return Ok(());
        }
        if let Err(e) = self.sync(&wal_name(self.generation)) {
            self.poisoned = true;
            return Err(e);
        }
        self.durable_records += self.unsynced;
        self.unsynced = 0;
        Ok(())
    }

    /// Takes an atomic checkpoint: commits the WAL, writes the store image
    /// (CRC32-footed by [`SegmentStore::to_bytes`]) to a temp file, syncs,
    /// renames into place, syncs the directory, appends the new generation
    /// to the manifest, and only then starts a fresh WAL and drops the old
    /// one.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.commit()?;
        let result = self.checkpoint_inner();
        if result.is_err() {
            self.poisoned = true;
        }
        result
    }

    fn checkpoint_inner(&mut self) -> Result<()> {
        let old_gen = self.generation;
        let generation = self.newest_gen + 1;
        let img = self.store.to_bytes();
        self.storage.open(CKPT_TMP)?;
        self.storage.truncate(CKPT_TMP, 0)?;
        self.storage.append(CKPT_TMP, &img)?;
        self.sync(CKPT_TMP)?;
        self.storage.rename(CKPT_TMP, &ckpt_name(generation))?;
        self.sync_dir()?;
        // The manifest record is the commit point: recovery trusts the
        // checkpoint from here on.
        self.storage.append(MANIFEST, &encode_record(&generation.to_le_bytes()))?;
        self.sync(MANIFEST)?;
        self.stats.checkpoints += 1;
        // Fresh WAL for the new generation; the old generation's WAL and
        // the checkpoint two generations back are disposable only now.
        self.storage.open(&wal_name(generation))?;
        self.sync_dir()?;
        self.storage.remove(&wal_name(old_gen))?;
        if generation >= 2 {
            self.storage.remove(&ckpt_name(generation - 2))?;
        }
        self.sync_dir()?;
        self.generation = generation;
        self.newest_gen = generation;
        self.since_checkpoint = 0;
        Ok(())
    }

    /// The in-memory store (includes records not yet committed).
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }

    /// Mutable access for queries (query methods count stats on `&mut`).
    pub fn store_mut(&mut self) -> &mut SegmentStore {
        &mut self.store
    }

    /// Records covered by a durable commit (recovered + committed). The
    /// ack watermark: everything at or below this count survives a crash.
    pub fn durable_records(&self) -> u64 {
        self.durable_records
    }

    /// Whether an earlier backend failure poisoned this instance.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// This store's durability counters.
    pub fn stats(&self) -> DurableStats {
        self.stats
    }

    /// Consumes the store, returning the backend (e.g. to take a
    /// [`FaultStorage::crash_view`] after a sweep run).
    pub fn into_storage(self) -> S {
        self.storage
    }
}

// --- sharded fleet with failover ------------------------------------------

/// One durable store per shard behind the consistent-hash ring, with
/// deterministic failover: a shard whose backend returns [`Error::Io`] is
/// marked dead and its houses re-route to the next live successor vnode
/// ([`ShardRouter::route_alive`] — a pure function of house id and the
/// alive set, so every replica of a run fails over identically).
///
/// Failover redirects **new appends**; segments already durable on a dead
/// shard are recovered by re-`open`ing its backend, not by migration.
#[derive(Debug)]
pub struct DurableFleet<S: Storage> {
    router: ShardRouter,
    shards: Vec<DurableStore<S>>,
    alive: Vec<bool>,
    failovers: u64,
}

impl<S: Storage> DurableFleet<S> {
    /// A fleet over per-shard stores (one vnode group per store).
    pub fn new(shards: Vec<DurableStore<S>>) -> Result<Self> {
        let router = ShardRouter::new(shards.len())?;
        let alive = vec![true; shards.len()];
        Ok(DurableFleet { router, shards, alive, failovers: 0 })
    }

    /// The ring routing houses to shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Per-shard liveness (false = marked dead after a backend failure).
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Shards currently marked dead.
    pub fn dead_shards(&self) -> usize {
        self.alive.iter().filter(|a| !**a).count()
    }

    /// The shard index that would serve `house` right now.
    pub fn route(&self, house: u64) -> Option<usize> {
        self.router.route_alive(house, &self.alive)
    }

    /// Borrow one shard's store.
    pub fn shard(&self, shard: usize) -> &DurableStore<S> {
        &self.shards[shard]
    }

    /// Appends to the live shard owning `house`, failing over across
    /// successor vnodes on backend errors. Returns the shard that took the
    /// record. Non-I/O errors (e.g. an irregular series) propagate without
    /// killing any shard.
    pub fn append(&mut self, house: u64, series: &SymbolicSeries) -> Result<usize> {
        loop {
            let Some(shard) = self.router.route_alive(house, &self.alive) else {
                return Err(Error::Io("all shards dead".to_string()));
            };
            match self.shards[shard].append(house, series) {
                Ok(_) => return Ok(shard),
                Err(Error::Io(_)) => {
                    self.alive[shard] = false;
                    self.failovers += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Commits every live shard. A shard failing its commit is marked dead
    /// (its uncommitted tail was never ack-able); the call errors only
    /// when **no** shard remains alive.
    pub fn commit(&mut self) -> Result<()> {
        for shard in 0..self.shards.len() {
            if !self.alive[shard] {
                continue;
            }
            if let Err(Error::Io(_)) = self.shards[shard].commit() {
                self.alive[shard] = false;
                self.failovers += 1;
            }
        }
        if self.alive.iter().any(|a| *a) {
            Ok(())
        } else {
            Err(Error::Io("all shards dead".to_string()))
        }
    }

    /// Aggregated durability counters across every shard, with the fleet's
    /// failover count.
    pub fn stats(&self) -> DurableStats {
        let mut total = DurableStats::default();
        for s in &self.shards {
            total.merge(&s.stats());
        }
        total.shard_failovers = self.failovers;
        total
    }

    /// Consumes the fleet, returning the per-shard stores.
    pub fn into_shards(self) -> Vec<DurableStore<S>> {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CodecBuilder;
    use crate::timeseries::TimeSeries;

    fn series(house: u64, n: usize) -> SymbolicSeries {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let x = crate::shard::splitmix64(house.wrapping_mul(97).wrapping_add(i as u64));
                (x % 4000) as f64 / 10.0
            })
            .collect();
        let ts = TimeSeries::from_regular(0, 900, &values).unwrap();
        let codec =
            CodecBuilder::new().alphabet_size(16).unwrap().no_aggregation().train(&ts).unwrap();
        codec.encode(&ts).unwrap()
    }

    fn reference_prefix(houses: u64, upto: u64) -> SegmentStore {
        let mut store = SegmentStore::new();
        for h in 0..upto.min(houses) {
            store.append(h, &series(h, 48)).unwrap();
        }
        store
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn wal_record_roundtrip() {
        let s = series(7, 48);
        let payload = encode_segment_record(7, &s);
        let (house, back) = decode_segment_record(&payload).unwrap();
        assert_eq!(house, 7);
        assert_eq!(back.symbols(), s.symbols());
        assert_eq!(back.timestamps(), s.timestamps());
    }

    #[test]
    fn fresh_open_append_reopen_replays_wal() {
        let storage = FaultStorage::new();
        let (mut store, report) = DurableStore::open(storage, DurableConfig::default()).unwrap();
        assert!(!report.recovered);
        for h in 0..10u64 {
            store.append(h, &series(h, 48)).unwrap();
        }
        store.commit().unwrap();
        assert_eq!(store.durable_records(), 10);

        let (back, report) =
            DurableStore::open(store.into_storage(), DurableConfig::default()).unwrap();
        assert!(report.recovered);
        assert_eq!(report.replayed, 10);
        assert_eq!(report.discarded, 0);
        assert_eq!(back.store().to_bytes(), reference_prefix(10, 10).to_bytes());
    }

    #[test]
    fn checkpoint_then_reopen_uses_checkpoint_plus_wal() {
        let storage = FaultStorage::new();
        let config = DurableConfig::default().group_commit(1).checkpoint_every(4);
        let (mut store, _) = DurableStore::open(storage, config).unwrap();
        for h in 0..10u64 {
            store.append(h, &series(h, 48)).unwrap();
        }
        assert_eq!(store.stats().checkpoints, 2);

        let (back, report) = DurableStore::open(store.into_storage(), config).unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(report.replayed, 2, "only the post-checkpoint tail replays");
        assert_eq!(back.store().to_bytes(), reference_prefix(10, 10).to_bytes());
    }

    #[test]
    fn torn_tail_is_truncated_with_typed_count() {
        let storage = FaultStorage::new();
        let (mut store, _) =
            DurableStore::open(storage, DurableConfig::default().group_commit(1)).unwrap();
        for h in 0..5u64 {
            store.append(h, &series(h, 48)).unwrap();
        }
        // Tear the WAL by hand: append garbage half-record bytes.
        let mut storage = store.into_storage();
        storage.append(&wal_name(0), &[0xAB; 7]).unwrap();
        let (back, report) = DurableStore::open(storage, DurableConfig::default()).unwrap();
        assert_eq!(report.replayed, 5);
        assert_eq!(report.discarded, 1);
        assert_eq!(back.stats().torn_records_dropped, 1);
        assert_eq!(back.store().to_bytes(), reference_prefix(5, 5).to_bytes());
        // The tail was physically truncated: a further reopen is clean.
        let (_, report) =
            DurableStore::open(back.into_storage(), DurableConfig::default()).unwrap();
        assert_eq!(report.discarded, 0);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_one_generation() {
        let storage = FaultStorage::new();
        let config = DurableConfig::default().group_commit(1).checkpoint_every(3);
        let (mut store, _) = DurableStore::open(storage, config).unwrap();
        for h in 0..7u64 {
            store.append(h, &series(h, 48)).unwrap();
        }
        // Generations 1 and 2 exist; corrupt generation 2's image.
        let mut storage = store.into_storage();
        let mut img = storage.read(&ckpt_name(2)).unwrap();
        let mid = img.len() / 2;
        img[mid] ^= 0x40;
        storage.truncate(&ckpt_name(2), 0).unwrap();
        storage.append(&ckpt_name(2), &img).unwrap();

        let (back, report) = DurableStore::open(storage, config).unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.fallbacks, 1);
        // Records 3..6 were in wal-1 (still on disk: wal disposal waits
        // for checkpoint durability — but checkpoint 2 removed it). The
        // fallback recovers checkpoint 1's three records.
        assert_eq!(back.store().to_bytes(), reference_prefix(7, 3).to_bytes());
        // The next checkpoint does not clobber the corrupt generation 2.
        let mut back = back;
        back.append(100, &series(100, 48)).unwrap();
        back.checkpoint().unwrap();
        assert_eq!(back.stats().checkpoints, 1);
        let (again, report) = DurableStore::open(back.into_storage(), config).unwrap();
        assert_eq!(report.generation, 3);
        assert!(again.store().contains_house(100));
    }

    #[test]
    fn every_crash_point_recovers_a_committed_prefix() {
        let houses = 12u64;
        let config = DurableConfig::default().group_commit(3).checkpoint_every(5);
        // Baseline run to learn the op count.
        let (mut baseline, _) = DurableStore::open(FaultStorage::new(), config).unwrap();
        for h in 0..houses {
            baseline.append(h, &series(h, 48)).unwrap();
        }
        baseline.commit().unwrap();
        let total_ops = baseline.into_storage().ops();
        assert!(total_ops > 10);

        for crash_at in 1..=total_ops {
            let mut plan = FaultPlan::crash_at(crash_at, 0x5EED ^ crash_at);
            if crash_at % 3 == 0 {
                plan.short_write_keep = Some(crash_at % 11);
            }
            if crash_at % 2 == 0 {
                plan.corrupt_torn_byte = true;
            }
            // The harness keeps backend ownership via the `&mut S` impl,
            // so the crash view survives a failed run.
            let mut storage = FaultStorage::with_plan(plan);
            let mut acked = 0u64;
            let _ = (|| -> Result<()> {
                let (mut store, _) = DurableStore::open(&mut storage, config)?;
                for h in 0..houses {
                    store.append(h, &series(h, 48))?;
                    acked = store.durable_records();
                }
                store.commit()?;
                acked = store.durable_records();
                Ok(())
            })();
            let view = storage.crash_view();
            let (recovered, _) = DurableStore::open(view, config)
                .unwrap_or_else(|e| panic!("recovery failed at crash op {crash_at}: {e}"));
            let j = recovered.store().stats().segments_written;
            assert!(j >= acked, "crash at op {crash_at}: {j} recovered < {acked} acked records");
            assert_eq!(
                recovered.store().to_bytes(),
                reference_prefix(houses, j).to_bytes(),
                "crash at op {crash_at}: recovered store is not the {j}-record prefix"
            );
        }
    }

    #[test]
    fn fleet_fails_over_dead_shard_deterministically() {
        let mk_fleet = |plans: [FaultPlan; 3]| {
            let shards = plans
                .into_iter()
                .map(|p| {
                    DurableStore::open(FaultStorage::with_plan(p), DurableConfig::default())
                        .unwrap()
                        .0
                })
                .collect();
            DurableFleet::new(shards).unwrap()
        };
        // Shard 1 dies a few appends in (fresh init takes 5 ops; op 9 is
        // mid-workload); the others never fail.
        let plans = [FaultPlan::default(), FaultPlan::crash_at(9, 1), FaultPlan::default()];
        let run = |mut fleet: DurableFleet<FaultStorage>| {
            for h in 0..40u64 {
                fleet.append(h, &series(h, 48)).unwrap();
            }
            fleet.commit().unwrap();
            let stats = fleet.stats();
            let images: Vec<Vec<u8>> =
                fleet.into_shards().into_iter().map(|s| s.store().to_bytes()).collect();
            (stats, images)
        };
        let (stats_a, images_a) = run(mk_fleet(plans));
        let (stats_b, images_b) = run(mk_fleet(plans));
        assert!(stats_a.shard_failovers >= 1);
        assert_eq!(stats_a, stats_b, "failover counters must be deterministic");
        assert_eq!(images_a, images_b, "failover placement must be deterministic");
    }

    #[test]
    fn fleet_routes_around_dead_shards_only() {
        let shards = (0..4)
            .map(|_| DurableStore::open(FaultStorage::new(), DurableConfig::default()).unwrap().0)
            .collect();
        let mut fleet = DurableFleet::new(shards).unwrap();
        // With everyone alive, fleet routing matches the plain ring.
        for h in 0..200u64 {
            assert_eq!(fleet.route(h), Some(fleet.router().route(h)));
        }
        fleet.alive[2] = false;
        for h in 0..200u64 {
            let s = fleet.route(h).unwrap();
            assert_ne!(s, 2, "house {h} routed to a dead shard");
            if fleet.router().route(h) != 2 {
                assert_eq!(s, fleet.router().route(h), "live houses must not move");
            }
        }
    }

    #[test]
    fn fs_storage_roundtrip_and_recovery() {
        let dir = std::env::temp_dir().join(format!(
            "sms-durable-test-{}-{:x}",
            std::process::id(),
            crate::shard::splitmix64(0xD15C)
        ));
        let storage = FsStorage::new(&dir).unwrap();
        let config = DurableConfig::default().group_commit(2).checkpoint_every(4);
        let (mut store, report) = DurableStore::open(storage, config).unwrap();
        assert!(!report.recovered);
        for h in 0..9u64 {
            store.append(h, &series(h, 48)).unwrap();
        }
        store.commit().unwrap();
        drop(store);

        let storage = FsStorage::new(&dir).unwrap();
        let (back, report) = DurableStore::open(storage, config).unwrap();
        assert!(report.recovered);
        assert_eq!(back.store().to_bytes(), reference_prefix(9, 9).to_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_stats_register_into_catalog() {
        let stats = DurableStats {
            wal_appends: 10,
            wal_bytes: 640,
            fsyncs: 3,
            checkpoints: 1,
            ..DurableStats::default()
        };
        let reg = Registry::new();
        stats.register_into(&reg);
        let text = reg.render_prometheus();
        assert!(text.contains("sms_durable_wal_appends 10"));
        assert!(text.contains("sms_durable_checkpoints 1"));
    }
}
