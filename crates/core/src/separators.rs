//! Separator learning (paper §2.2): the three strategies that place the
//! `k - 1` range boundaries `β_1 ≤ … ≤ β_{k-1}` of a lookup table.
//!
//! * **uniform** — equal-width bins over `[0, max]`;
//! * **median** — k-quantiles of the empirical distribution (maximizes the
//!   entropy of the generated symbols; generalizes SAX's Gaussian
//!   breakpoints to arbitrary distributions);
//! * **distinctmedian** — k-quantiles over the *set* of distinct values
//!   (avoids bias toward heavily repeated values such as standby power).

use crate::error::{Error, Result};
use crate::stats::{OrderedMultiset, P2Quantile};

/// Which separator-generation strategy to use (paper §2.2 a–c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeparatorMethod {
    /// Equal-width bins over `[0, max]`.
    Uniform,
    /// k-quantiles of the value distribution.
    Median,
    /// k-quantiles of the distinct-value set ("distinctmedian").
    DistinctMedian,
}

impl SeparatorMethod {
    /// All three methods, in the order the paper's figures list them.
    pub const ALL: [SeparatorMethod; 3] =
        [SeparatorMethod::DistinctMedian, SeparatorMethod::Median, SeparatorMethod::Uniform];

    /// The paper's short name for the method.
    pub fn name(self) -> &'static str {
        match self {
            SeparatorMethod::Uniform => "uniform",
            SeparatorMethod::Median => "median",
            SeparatorMethod::DistinctMedian => "distinctmedian",
        }
    }
}

impl std::fmt::Display for SeparatorMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn validate_k(k: usize) -> Result<()> {
    if !(2..=1 << 16).contains(&k) || !k.is_power_of_two() {
        return Err(Error::InvalidAlphabetSize(k));
    }
    Ok(())
}

/// Enforces **strictly increasing** separators. Quantile boundaries collapse
/// onto a heavily repeated value (e.g. standby power), which would create
/// duplicate separators and therefore several bins claiming the same range;
/// each collapsed boundary is nudged up to the next representable double, the
/// smallest possible distortion that keeps every bin's range unique and the
/// encoding of every value deterministic (see `LookupTable::bin_index` for
/// the Def. 3 tie rule).
fn strictly_increasing(mut seps: Vec<f64>) -> Vec<f64> {
    for i in 1..seps.len() {
        if seps[i] <= seps[i - 1] {
            seps[i] = seps[i - 1].next_up();
        }
    }
    seps
}

/// Uniform separators: `β_i = i * max / k` for `i = 1..k` (paper §2.2a:
/// "divide uniformly the range from zero to max in k subranges").
pub fn uniform_separators(max: f64, k: usize) -> Result<Vec<f64>> {
    validate_k(k)?;
    if !max.is_finite() || max <= 0.0 {
        return Err(Error::InvalidParameter {
            name: "max",
            reason: format!("must be positive and finite, got {max}"),
        });
    }
    Ok((1..k).map(|i| i as f64 * max / k as f64).collect())
}

/// Median separators: `β_i` = the `i/k`-quantile of `values`
/// (the boundary value between consecutive k-quantile subsets, §2.2b).
pub fn median_separators(values: &[f64], k: usize) -> Result<Vec<f64>> {
    validate_k(k)?;
    if values.is_empty() {
        return Err(Error::EmptyInput("median_separators"));
    }
    let mut ms = OrderedMultiset::new();
    for &v in values {
        ms.insert(v)?;
    }
    Ok(strictly_increasing(
        (1..k).map(|i| ms.quantile(i as f64 / k as f64).expect("non-empty")).collect(),
    ))
}

/// Distinct-median separators: k-quantiles of the distinct-value set (§2.2c).
pub fn distinct_median_separators(values: &[f64], k: usize) -> Result<Vec<f64>> {
    validate_k(k)?;
    if values.is_empty() {
        return Err(Error::EmptyInput("distinct_median_separators"));
    }
    let mut ms = OrderedMultiset::new();
    for &v in values {
        ms.insert(v)?;
    }
    Ok(strictly_increasing(
        (1..k).map(|i| ms.distinct_quantile(i as f64 / k as f64).expect("non-empty")).collect(),
    ))
}

/// Learns separators with the chosen `method` from a batch of historical
/// values (the paper uses the first two days of each house's data, §3).
pub fn learn_separators(method: SeparatorMethod, values: &[f64], k: usize) -> Result<Vec<f64>> {
    match method {
        SeparatorMethod::Uniform => {
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if values.is_empty() {
                return Err(Error::EmptyInput("learn_separators"));
            }
            uniform_separators(max.max(f64::MIN_POSITIVE), k)
        }
        SeparatorMethod::Median => median_separators(values, k),
        SeparatorMethod::DistinctMedian => distinct_median_separators(values, k),
    }
}

/// A training batch sorted **once**, answering the same quantile queries as
/// [`OrderedMultiset`] for every alphabet size. The paper's experiments
/// learn a table per `(house, method, k)` cell over the same two training
/// days; going through the multiset re-inserted (re-sorted) those days once
/// per cell. Build one `SortedSample` per house and reuse it across the
/// whole `k` grid.
#[derive(Debug, Clone)]
pub struct SortedSample {
    /// Values in their original (time) order — bin statistics sum in this
    /// order, keeping cached tables bit-identical to the uncached path.
    original: Vec<f64>,
    /// Values sorted ascending (total order).
    sorted: Vec<f64>,
    /// Distinct sorted values (bitwise dedup, matching the multiset's
    /// `FiniteF64` keys — `-0.0` and `+0.0` stay distinct).
    distinct: Vec<f64>,
}

impl SortedSample {
    /// Sorts a non-empty batch of finite values.
    pub fn new(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::EmptyInput("SortedSample::new"));
        }
        for &v in values {
            if !v.is_finite() {
                return Err(Error::InvalidParameter {
                    name: "value",
                    reason: format!("must be finite, got {v}"),
                });
            }
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mut distinct = Vec::new();
        for &v in &sorted {
            if distinct.last().map(|d: &f64| d.to_bits() != v.to_bits()).unwrap_or(true) {
                distinct.push(v);
            }
        }
        Ok(SortedSample { original: values.to_vec(), sorted, distinct })
    }

    /// Number of values (with multiplicity).
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false — construction rejects empty batches.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The values in their original order.
    pub fn values(&self) -> &[f64] {
        &self.original
    }

    /// Largest value.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Type-1 `q`-quantile over all values, identical to
    /// [`OrderedMultiset::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let target = ((q * n as f64).ceil() as usize).max(1);
        self.sorted[(target - 1).min(n - 1)]
    }

    /// `q`-quantile over the distinct-value set, identical to
    /// [`OrderedMultiset::distinct_quantile`].
    pub fn distinct_quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.distinct.len();
        let idx = ((q * n as f64).ceil() as usize).max(1) - 1;
        self.distinct[idx.min(n - 1)]
    }
}

/// [`learn_separators`] from a pre-sorted sample — same output, but the
/// `O(n log n)` work is paid once per sample instead of once per `(method, k)`.
pub fn learn_separators_from_sample(
    method: SeparatorMethod,
    sample: &SortedSample,
    k: usize,
) -> Result<Vec<f64>> {
    validate_k(k)?;
    match method {
        SeparatorMethod::Uniform => uniform_separators(sample.max().max(f64::MIN_POSITIVE), k),
        SeparatorMethod::Median => {
            Ok(strictly_increasing((1..k).map(|i| sample.quantile(i as f64 / k as f64)).collect()))
        }
        SeparatorMethod::DistinctMedian => Ok(strictly_increasing(
            (1..k).map(|i| sample.distinct_quantile(i as f64 / k as f64)).collect(),
        )),
    }
}

/// Streaming separator learner for the sensor side: feeds values one at a
/// time, then produces separators. `Exact` keeps an order-statistics multiset
/// (exact quantiles, memory ∝ distinct values); `Approximate` keeps one P²
/// estimator per boundary (constant memory) and supports only
/// [`SeparatorMethod::Median`] and [`SeparatorMethod::Uniform`].
#[derive(Debug, Clone)]
pub struct StreamingLearner(LearnerImpl);

#[derive(Debug, Clone)]
enum LearnerImpl {
    Exact {
        method: SeparatorMethod,
        k: usize,
        multiset: OrderedMultiset,
    },
    Approximate {
        method: SeparatorMethod,
        k: usize,
        estimators: Vec<P2Quantile>,
        max: f64,
        count: u64,
    },
}

impl StreamingLearner {
    /// Exact learner for any method.
    pub fn exact(method: SeparatorMethod, k: usize) -> Result<Self> {
        validate_k(k)?;
        Ok(StreamingLearner(LearnerImpl::Exact { method, k, multiset: OrderedMultiset::new() }))
    }

    /// Approximate constant-memory learner (Median or Uniform only —
    /// distinct-value quantiles have no constant-memory sketch here).
    pub fn approximate(method: SeparatorMethod, k: usize) -> Result<Self> {
        validate_k(k)?;
        if method == SeparatorMethod::DistinctMedian {
            return Err(Error::InvalidParameter {
                name: "method",
                reason: "distinctmedian is not supported by the approximate learner".to_string(),
            });
        }
        let estimators =
            (1..k).map(|i| P2Quantile::new(i as f64 / k as f64)).collect::<Result<Vec<_>>>()?;
        Ok(StreamingLearner(LearnerImpl::Approximate {
            method,
            k,
            estimators,
            max: f64::NEG_INFINITY,
            count: 0,
        }))
    }

    /// Feeds one observation.
    pub fn push(&mut self, v: f64) -> Result<()> {
        match &mut self.0 {
            LearnerImpl::Exact { multiset, .. } => multiset.insert(v),
            LearnerImpl::Approximate { estimators, max, count, .. } => {
                if !v.is_finite() {
                    return Err(Error::InvalidParameter {
                        name: "value",
                        reason: format!("must be finite, got {v}"),
                    });
                }
                for e in estimators.iter_mut() {
                    e.push(v);
                }
                *max = max.max(v);
                *count += 1;
                Ok(())
            }
        }
    }

    /// Number of observations consumed.
    pub fn count(&self) -> u64 {
        match &self.0 {
            LearnerImpl::Exact { multiset, .. } => multiset.len(),
            LearnerImpl::Approximate { count, .. } => *count,
        }
    }

    /// The learner's configured method.
    pub fn method(&self) -> SeparatorMethod {
        match &self.0 {
            LearnerImpl::Exact { method, .. } => *method,
            LearnerImpl::Approximate { method, .. } => *method,
        }
    }

    /// Produces the separators from everything seen so far.
    pub fn separators(&self) -> Result<Vec<f64>> {
        match &self.0 {
            LearnerImpl::Exact { method, k, multiset } => {
                if multiset.is_empty() {
                    return Err(Error::EmptyInput("StreamingLearner::separators"));
                }
                match method {
                    SeparatorMethod::Uniform => uniform_separators(
                        multiset.iter().last().map(|(v, _)| v).unwrap().max(f64::MIN_POSITIVE),
                        *k,
                    ),
                    SeparatorMethod::Median => Ok(strictly_increasing(
                        (1..*k)
                            .map(|i| multiset.quantile(i as f64 / *k as f64).expect("non-empty"))
                            .collect(),
                    )),
                    SeparatorMethod::DistinctMedian => Ok(strictly_increasing(
                        (1..*k)
                            .map(|i| {
                                multiset.distinct_quantile(i as f64 / *k as f64).expect("non-empty")
                            })
                            .collect(),
                    )),
                }
            }
            LearnerImpl::Approximate { method, k, estimators, max, count } => {
                if *count == 0 {
                    return Err(Error::EmptyInput("StreamingLearner::separators"));
                }
                match method {
                    SeparatorMethod::Uniform => uniform_separators(max.max(f64::MIN_POSITIVE), *k),
                    _ => {
                        // P² estimators run independently; enforce the same
                        // strictly-increasing invariant as the exact paths.
                        let seps: Vec<f64> =
                            estimators.iter().map(|e| e.estimate().expect("count > 0")).collect();
                        Ok(strictly_increasing(seps))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_splits_zero_to_max() {
        let s = uniform_separators(800.0, 8).unwrap();
        assert_eq!(s, vec![100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0]);
        assert!(uniform_separators(0.0, 8).is_err());
        assert!(uniform_separators(800.0, 3).is_err());
        assert!(uniform_separators(f64::INFINITY, 4).is_err());
    }

    #[test]
    fn median_separators_are_quantile_boundaries() {
        // 1..=8, k=4 ⇒ boundaries at the 2nd, 4th, 6th values.
        let v: Vec<f64> = (1..=8).map(|x| x as f64).collect();
        let s = median_separators(&v, 4).unwrap();
        assert_eq!(s, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn median_biased_by_repeats_distinct_is_not() {
        let mut v = vec![0.0; 96];
        v.extend([100.0, 200.0, 300.0, 400.0].iter());
        let med = median_separators(&v, 4).unwrap();
        // Plain median collapses onto the repeated value (the §2.2c bias
        // motivating distinctmedian); collapsed boundaries are nudged to the
        // next representable doubles so they stay strictly increasing.
        assert_eq!(med[0], 0.0);
        assert!(med[2] <= f64::MIN_POSITIVE, "still collapsed near the repeat: {med:?}");
        assert!(med[0] < med[1] && med[1] < med[2], "no duplicates: {med:?}");
        let dm = distinct_median_separators(&v, 4).unwrap();
        // Distinct values {0,100,200,300,400}: boundary i sits at the
        // ceil(5·i/4)-th distinct value ⇒ the 2nd, 3rd and 4th.
        assert_eq!(dm, vec![100.0, 200.0, 300.0]);
    }

    #[test]
    fn quantile_methods_never_emit_duplicate_or_decreasing_separators() {
        // Regression: heavy repeats and constant inputs used to yield
        // duplicate separators, i.e. several bins claiming the same range.
        let inputs: Vec<Vec<f64>> = vec![
            vec![7.5; 50], // constant
            {
                let mut v = vec![0.0; 96];
                v.extend([100.0, 200.0, 300.0, 400.0]);
                v
            },
            vec![-3.0; 10].into_iter().chain((0..10).map(f64::from)).collect(),
            vec![1.0, 1.0, 2.0, 2.0], // < k distinct values
        ];
        for v in &inputs {
            for method in [SeparatorMethod::Median, SeparatorMethod::DistinctMedian] {
                let s = learn_separators(method, v, 8).unwrap();
                for w in s.windows(2) {
                    assert!(w[0] < w[1], "{method} on {v:?}: duplicate/decreasing {s:?}");
                }
                // Streaming exact learner upholds the same invariant.
                let mut sl = StreamingLearner::exact(method, 8).unwrap();
                for &x in v {
                    sl.push(x).unwrap();
                }
                let s = sl.separators().unwrap();
                for w in s.windows(2) {
                    assert!(w[0] < w[1], "streaming {method} on {v:?}: {s:?}");
                }
            }
        }
        // Approximate learner too (median only).
        let mut sl = StreamingLearner::approximate(SeparatorMethod::Median, 8).unwrap();
        for _ in 0..100 {
            sl.push(42.0).unwrap();
        }
        let s = sl.separators().unwrap();
        for w in s.windows(2) {
            assert!(w[0] < w[1], "approximate on constants: {s:?}");
        }
    }

    #[test]
    fn separators_never_decrease() {
        let v = vec![5.0, 1.0, 3.0, 3.0, 3.0, 9.0, 2.0, 8.0, 7.0, 3.0];
        for method in SeparatorMethod::ALL {
            let s = learn_separators(method, &v, 8).unwrap();
            assert_eq!(s.len(), 7);
            for w in s.windows(2) {
                assert!(w[0] <= w[1], "{method}: {s:?}");
            }
        }
    }

    #[test]
    fn sorted_sample_matches_multiset_learning() {
        // Heavy repeats, unsorted input, < k distinct values — all the
        // cases where the quantile conventions could diverge.
        let inputs: Vec<Vec<f64>> = vec![
            vec![5.0, 1.0, 3.0, 3.0, 3.0, 9.0, 2.0, 8.0, 7.0, 3.0],
            {
                let mut v = vec![0.0; 96];
                v.extend([100.0, 200.0, 300.0, 400.0]);
                v
            },
            vec![7.5; 50],
            (0..1000).map(|i| ((i * 37) % 101) as f64).collect(),
        ];
        for v in &inputs {
            let sample = SortedSample::new(v).unwrap();
            assert_eq!(sample.len(), v.len());
            assert_eq!(sample.values(), &v[..]);
            for method in SeparatorMethod::ALL {
                for k in [2, 4, 8, 16] {
                    assert_eq!(
                        learn_separators_from_sample(method, &sample, k).unwrap(),
                        learn_separators(method, v, k).unwrap(),
                        "{method} k={k} on {v:?}"
                    );
                }
            }
        }
        assert!(SortedSample::new(&[]).is_err());
        assert!(SortedSample::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn learn_separators_rejects_empty() {
        for method in SeparatorMethod::ALL {
            assert!(learn_separators(method, &[], 4).is_err());
        }
    }

    #[test]
    fn streaming_exact_matches_batch() {
        let v: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        for method in SeparatorMethod::ALL {
            let batch = learn_separators(method, &v, 16).unwrap();
            let mut sl = StreamingLearner::exact(method, 16).unwrap();
            for &x in &v {
                sl.push(x).unwrap();
            }
            assert_eq!(sl.separators().unwrap(), batch, "{method}");
            assert_eq!(sl.count(), 1000);
        }
    }

    #[test]
    fn streaming_approximate_close_to_exact() {
        let v: Vec<f64> = (0..20_000).map(|i| ((i * 9973) % 4096) as f64).collect();
        let exact = median_separators(&v, 8).unwrap();
        let mut sl = StreamingLearner::approximate(SeparatorMethod::Median, 8).unwrap();
        for &x in &v {
            sl.push(x).unwrap();
        }
        let approx = sl.separators().unwrap();
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a - e).abs() < 150.0, "approx {a} vs exact {e}");
        }
        for w in approx.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn approximate_rejects_distinctmedian() {
        assert!(StreamingLearner::approximate(SeparatorMethod::DistinctMedian, 8).is_err());
    }

    #[test]
    fn method_names_match_paper() {
        assert_eq!(SeparatorMethod::Uniform.name(), "uniform");
        assert_eq!(SeparatorMethod::Median.name(), "median");
        assert_eq!(SeparatorMethod::DistinctMedian.name(), "distinctmedian");
    }
}
