//! Separator learning (paper §2.2): the three strategies that place the
//! `k - 1` range boundaries `β_1 ≤ … ≤ β_{k-1}` of a lookup table.
//!
//! * **uniform** — equal-width bins over `[0, max]`;
//! * **median** — k-quantiles of the empirical distribution (maximizes the
//!   entropy of the generated symbols; generalizes SAX's Gaussian
//!   breakpoints to arbitrary distributions);
//! * **distinctmedian** — k-quantiles over the *set* of distinct values
//!   (avoids bias toward heavily repeated values such as standby power).

use crate::error::{Error, Result};
use crate::stats::{OrderedMultiset, P2Quantile};

/// Which separator-generation strategy to use (paper §2.2 a–c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeparatorMethod {
    /// Equal-width bins over `[0, max]`.
    Uniform,
    /// k-quantiles of the value distribution.
    Median,
    /// k-quantiles of the distinct-value set ("distinctmedian").
    DistinctMedian,
}

impl SeparatorMethod {
    /// All three methods, in the order the paper's figures list them.
    pub const ALL: [SeparatorMethod; 3] =
        [SeparatorMethod::DistinctMedian, SeparatorMethod::Median, SeparatorMethod::Uniform];

    /// The paper's short name for the method.
    pub fn name(self) -> &'static str {
        match self {
            SeparatorMethod::Uniform => "uniform",
            SeparatorMethod::Median => "median",
            SeparatorMethod::DistinctMedian => "distinctmedian",
        }
    }
}

impl std::fmt::Display for SeparatorMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn validate_k(k: usize) -> Result<()> {
    if !(2..=1 << 16).contains(&k) || !k.is_power_of_two() {
        return Err(Error::InvalidAlphabetSize(k));
    }
    Ok(())
}

/// Enforces **strictly increasing** separators. Quantile boundaries collapse
/// onto a heavily repeated value (e.g. standby power), which would create
/// duplicate separators and therefore several bins claiming the same range;
/// each collapsed boundary is nudged up to the next representable double, the
/// smallest possible distortion that keeps every bin's range unique and the
/// encoding of every value deterministic (see [`def3_bin_index`] for the
/// Def. 3 tie rule).
fn strictly_increasing(mut seps: Vec<f64>) -> Vec<f64> {
    for i in 1..seps.len() {
        if seps[i] <= seps[i - 1] {
            seps[i] = seps[i - 1].next_up();
        }
    }
    seps
}

/// Definition 3's bin selection, the crate's **single** tie rule: the number
/// of separators strictly below `v` is the 0-based bin, which realizes
/// `β_{j-1} < v ≤ β_j ⇒ a_j` — a value exactly on a boundary goes to the
/// **lower** bin. `LookupTable`, SAX, and iSAX all quantize through this one
/// helper so their boundary behavior cannot drift apart (NaN counts zero
/// separators; callers that can see NaN must reject it first).
#[inline]
pub fn def3_bin_index(separators: &[f64], v: f64) -> usize {
    separators.partition_point(|&b| b < v)
}

/// Slot count of a [`FlatSeparators`]: enough for every alphabet the paper
/// evaluates (`k ≤ 32` ⇒ at most 31 separators), rounded to a power of two
/// so the compare loop unrolls into whole SIMD lanes.
pub const FLAT_SEPARATOR_SLOTS: usize = 32;

/// A fixed-width, branchless view of up to [`FLAT_SEPARATOR_SLOTS`]
/// separators for the encode hot path.
///
/// `partition_point`'s binary search takes ~log₂(k) *dependent* branches per
/// value — on the paper's small alphabets (k ≤ 32) that is slower than
/// simply comparing against **every** boundary with no branching at all,
/// and the batched [`bin_indices`](Self::bin_indices) kernel turns those
/// compares into vectorized passes along the value axis. The boundaries live
/// in a fixed `[f64; 32]` padded with `+∞`, and [`bin_index`](Self::bin_index)
/// sums `(β < v)` over every slot with no data-dependent branch, which the
/// compiler auto-vectorizes. Padding never miscounts: `+∞ < v` is false for
/// every finite `v` and for `v = +∞` itself.
///
/// The result is defined to be **bit-identical** to
/// `separators.partition_point(|&b| b < v)` for every `f64` input, including
/// `±∞` (below/above every boundary) and `NaN` (all comparisons false ⇒ bin
/// 0, which is why callers must reject NaN *before* the search — see
/// `LookupTable::encode_value`). The binary search stays on as the `k > 32`
/// fallback and as the debug-assert reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatSeparators {
    /// The separators, padded to the right with `+∞`.
    boundaries: [f64; FLAT_SEPARATOR_SLOTS],
    /// How many leading slots hold real separators.
    len: usize,
}

impl FlatSeparators {
    /// Flattens `separators` (finite, non-decreasing — the `LookupTable`
    /// invariants), or `None` when there are more than
    /// [`FLAT_SEPARATOR_SLOTS`] of them (large-k tables keep the binary
    /// search).
    pub fn new(separators: &[f64]) -> Option<Self> {
        if separators.len() > FLAT_SEPARATOR_SLOTS {
            return None;
        }
        let mut boundaries = [f64::INFINITY; FLAT_SEPARATOR_SLOTS];
        boundaries[..separators.len()].copy_from_slice(separators);
        Some(FlatSeparators { boundaries, len: separators.len() })
    }

    /// Number of real separators held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no separators are held (a `k = 1` table cannot exist, so
    /// this is only true for the trivial empty slice).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The branchless Definition 3 bin selection: the number of boundaries
    /// strictly below `v`. Bit-identical to
    /// `separators.partition_point(|&b| b < v)` for every input, NaN
    /// included (NaN counts zero boundaries, like the binary search).
    ///
    /// Up to 31 separators this is a *fixed* five-step binary search over
    /// the padded 32-slot array: every step is a compare feeding an index
    /// add the compiler lowers to a conditional move, so unlike
    /// `partition_point` there is no data-dependent branch to mispredict —
    /// on random meter values that misprediction cost is what makes the
    /// classic search slow. Five steps cover counts 0..=31, which is every
    /// possible answer when at most 31 slots hold finite separators; the
    /// rare full 32-slot form falls back to a branchless linear count.
    #[inline]
    pub fn bin_index(&self, v: f64) -> usize {
        if self.len == FLAT_SEPARATOR_SLOTS {
            // All 32 slots real: count 32 is reachable, which the five-step
            // form cannot express. (Never hit via `LookupTable`: k ≤ 32
            // means at most 31 separators.)
            return self.boundaries.iter().map(|&b| (b < v) as usize).sum();
        }
        let b = &self.boundaries;
        let mut pos = 0usize;
        // Unconditional on purpose: for narrow tables the wide steps
        // compare against +∞ padding and add 0, and keeping every step
        // branch-free is what lets the compiler lower the whole ladder to
        // conditional moves. (Guarding the wide steps on `self.len` was
        // measured 4× *slower* — the guards block the cmov lowering.)
        pos += 16 * usize::from(b[15] < v);
        pos += 8 * usize::from(b[pos + 7] < v);
        pos += 4 * usize::from(b[pos + 3] < v);
        pos += 2 * usize::from(b[pos + 1] < v);
        pos += usize::from(b[pos] < v);
        pos
    }

    /// [`bin_index`](Self::bin_index) for tables with at most 15
    /// separators (k ≤ 16): the same cmov ladder minus the step-16 rung,
    /// one dependent load shorter. Callers dispatch on [`len`](Self::len)
    /// *once per batch* — selecting the ladder inside the per-value loop
    /// is exactly the guard that was measured 4× slower.
    ///
    /// # Panics
    /// Debug-asserts `len ≤ 15`; with more separators the missing rung
    /// would undercount.
    #[inline]
    pub fn bin_index_narrow(&self, v: f64) -> usize {
        debug_assert!(self.len <= 15, "narrow ladder needs len <= 15, got {}", self.len);
        let b = &self.boundaries;
        let mut pos = 0usize;
        pos += 8 * usize::from(b[7] < v);
        pos += 4 * usize::from(b[pos + 3] < v);
        pos += 2 * usize::from(b[pos + 1] < v);
        pos += usize::from(b[pos] < v);
        pos
    }

    /// Columnar variant of [`bin_index`](Self::bin_index): bins up to
    /// [`ENCODE_CHUNK`] values at once, writing each value's boundary count
    /// into the matching `counts` slot (slots past `values.len()` are left
    /// untouched).
    ///
    /// The loop nest is deliberately inverted from the scalar scan — the
    /// boundary loop *outside*, the value loop *inside* — so the compiler
    /// vectorizes along the long axis: one broadcast boundary compared
    /// against whole lanes of values, `k−1` strided passes over a
    /// cache-resident chunk. A k=4 table costs 3 vectorized passes instead
    /// of a 31-slot scalar scan per value, which is what makes the batch
    /// path win at *every* alphabet size, not just large ones.
    /// The counts are `u64` on purpose: an `f64` lane compare produces a
    /// 64-bit mask, so a same-width accumulator lets the vectorizer subtract
    /// the mask directly instead of packing lanes down to a narrower type.
    #[inline]
    pub fn bin_indices(&self, values: &[f64], counts: &mut [u64; ENCODE_CHUNK]) {
        let m = values.len().min(ENCODE_CHUNK);
        let (values, counts) = (&values[..m], &mut counts[..m]);
        counts.fill(0);
        for &b in &self.boundaries[..self.len] {
            for (c, &v) in counts.iter_mut().zip(values) {
                *c += (b < v) as u64;
            }
        }
    }
}

/// Chunk width of [`FlatSeparators::bin_indices`]: 64 values (512 bytes)
/// stay register/L1-resident across the per-boundary passes while giving
/// the vectorizer long enough runs to amortize loop overhead.
pub const ENCODE_CHUNK: usize = 64;

/// Uniform separators: `β_i = i * max / k` for `i = 1..k` (paper §2.2a:
/// "divide uniformly the range from zero to max in k subranges").
pub fn uniform_separators(max: f64, k: usize) -> Result<Vec<f64>> {
    validate_k(k)?;
    if !max.is_finite() || max <= 0.0 {
        return Err(Error::InvalidParameter {
            name: "max",
            reason: format!("must be positive and finite, got {max}"),
        });
    }
    Ok((1..k).map(|i| i as f64 * max / k as f64).collect())
}

/// Median separators: `β_i` = the `i/k`-quantile of `values`
/// (the boundary value between consecutive k-quantile subsets, §2.2b).
pub fn median_separators(values: &[f64], k: usize) -> Result<Vec<f64>> {
    validate_k(k)?;
    if values.is_empty() {
        return Err(Error::EmptyInput("median_separators"));
    }
    let mut ms = OrderedMultiset::new();
    for &v in values {
        ms.insert(v)?;
    }
    Ok(strictly_increasing(
        (1..k).map(|i| ms.quantile(i as f64 / k as f64).expect("non-empty")).collect(),
    ))
}

/// Distinct-median separators: k-quantiles of the distinct-value set (§2.2c).
pub fn distinct_median_separators(values: &[f64], k: usize) -> Result<Vec<f64>> {
    validate_k(k)?;
    if values.is_empty() {
        return Err(Error::EmptyInput("distinct_median_separators"));
    }
    let mut ms = OrderedMultiset::new();
    for &v in values {
        ms.insert(v)?;
    }
    Ok(strictly_increasing(
        (1..k).map(|i| ms.distinct_quantile(i as f64 / k as f64).expect("non-empty")).collect(),
    ))
}

/// Learns separators with the chosen `method` from a batch of historical
/// values (the paper uses the first two days of each house's data, §3).
pub fn learn_separators(method: SeparatorMethod, values: &[f64], k: usize) -> Result<Vec<f64>> {
    match method {
        SeparatorMethod::Uniform => {
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if values.is_empty() {
                return Err(Error::EmptyInput("learn_separators"));
            }
            uniform_separators(max.max(f64::MIN_POSITIVE), k)
        }
        SeparatorMethod::Median => median_separators(values, k),
        SeparatorMethod::DistinctMedian => distinct_median_separators(values, k),
    }
}

/// A training batch sorted **once**, answering the same quantile queries as
/// [`OrderedMultiset`] for every alphabet size. The paper's experiments
/// learn a table per `(house, method, k)` cell over the same two training
/// days; going through the multiset re-inserted (re-sorted) those days once
/// per cell. Build one `SortedSample` per house and reuse it across the
/// whole `k` grid.
#[derive(Debug, Clone)]
pub struct SortedSample {
    /// Values in their original (time) order — bin statistics sum in this
    /// order, keeping cached tables bit-identical to the uncached path.
    original: Vec<f64>,
    /// Values sorted ascending (total order).
    sorted: Vec<f64>,
    /// Distinct sorted values (bitwise dedup, matching the multiset's
    /// `FiniteF64` keys — `-0.0` and `+0.0` stay distinct).
    distinct: Vec<f64>,
}

impl SortedSample {
    /// Sorts a non-empty batch of finite values.
    pub fn new(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::EmptyInput("SortedSample::new"));
        }
        for &v in values {
            if !v.is_finite() {
                return Err(Error::InvalidParameter {
                    name: "value",
                    reason: format!("must be finite, got {v}"),
                });
            }
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mut distinct = Vec::new();
        for &v in &sorted {
            if distinct.last().map(|d: &f64| d.to_bits() != v.to_bits()).unwrap_or(true) {
                distinct.push(v);
            }
        }
        Ok(SortedSample { original: values.to_vec(), sorted, distinct })
    }

    /// Number of values (with multiplicity).
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false — construction rejects empty batches.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The values in their original order.
    pub fn values(&self) -> &[f64] {
        &self.original
    }

    /// Largest value.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Type-1 `q`-quantile over all values, identical to
    /// [`OrderedMultiset::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let target = ((q * n as f64).ceil() as usize).max(1);
        self.sorted[(target - 1).min(n - 1)]
    }

    /// `q`-quantile over the distinct-value set, identical to
    /// [`OrderedMultiset::distinct_quantile`].
    pub fn distinct_quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.distinct.len();
        let idx = ((q * n as f64).ceil() as usize).max(1) - 1;
        self.distinct[idx.min(n - 1)]
    }
}

/// [`learn_separators`] from a pre-sorted sample — same output, but the
/// `O(n log n)` work is paid once per sample instead of once per `(method, k)`.
pub fn learn_separators_from_sample(
    method: SeparatorMethod,
    sample: &SortedSample,
    k: usize,
) -> Result<Vec<f64>> {
    validate_k(k)?;
    match method {
        SeparatorMethod::Uniform => uniform_separators(sample.max().max(f64::MIN_POSITIVE), k),
        SeparatorMethod::Median => {
            Ok(strictly_increasing((1..k).map(|i| sample.quantile(i as f64 / k as f64)).collect()))
        }
        SeparatorMethod::DistinctMedian => Ok(strictly_increasing(
            (1..k).map(|i| sample.distinct_quantile(i as f64 / k as f64)).collect(),
        )),
    }
}

/// Streaming separator learner for the sensor side: feeds values one at a
/// time, then produces separators. `Exact` keeps an order-statistics multiset
/// (exact quantiles, memory ∝ distinct values); `Approximate` keeps one P²
/// estimator per boundary (constant memory) and supports only
/// [`SeparatorMethod::Median`] and [`SeparatorMethod::Uniform`].
#[derive(Debug, Clone)]
pub struct StreamingLearner(LearnerImpl);

#[derive(Debug, Clone)]
enum LearnerImpl {
    Exact {
        method: SeparatorMethod,
        k: usize,
        multiset: OrderedMultiset,
    },
    Approximate {
        method: SeparatorMethod,
        k: usize,
        estimators: Vec<P2Quantile>,
        max: f64,
        count: u64,
    },
}

impl StreamingLearner {
    /// Exact learner for any method.
    pub fn exact(method: SeparatorMethod, k: usize) -> Result<Self> {
        validate_k(k)?;
        Ok(StreamingLearner(LearnerImpl::Exact { method, k, multiset: OrderedMultiset::new() }))
    }

    /// Approximate constant-memory learner (Median or Uniform only —
    /// distinct-value quantiles have no constant-memory sketch here).
    pub fn approximate(method: SeparatorMethod, k: usize) -> Result<Self> {
        validate_k(k)?;
        if method == SeparatorMethod::DistinctMedian {
            return Err(Error::InvalidParameter {
                name: "method",
                reason: "distinctmedian is not supported by the approximate learner".to_string(),
            });
        }
        let estimators =
            (1..k).map(|i| P2Quantile::new(i as f64 / k as f64)).collect::<Result<Vec<_>>>()?;
        Ok(StreamingLearner(LearnerImpl::Approximate {
            method,
            k,
            estimators,
            max: f64::NEG_INFINITY,
            count: 0,
        }))
    }

    /// Feeds one observation.
    pub fn push(&mut self, v: f64) -> Result<()> {
        match &mut self.0 {
            LearnerImpl::Exact { multiset, .. } => multiset.insert(v),
            LearnerImpl::Approximate { estimators, max, count, .. } => {
                if !v.is_finite() {
                    return Err(Error::InvalidParameter {
                        name: "value",
                        reason: format!("must be finite, got {v}"),
                    });
                }
                for e in estimators.iter_mut() {
                    e.push(v);
                }
                *max = max.max(v);
                *count += 1;
                Ok(())
            }
        }
    }

    /// Number of observations consumed.
    pub fn count(&self) -> u64 {
        match &self.0 {
            LearnerImpl::Exact { multiset, .. } => multiset.len(),
            LearnerImpl::Approximate { count, .. } => *count,
        }
    }

    /// The learner's configured method.
    pub fn method(&self) -> SeparatorMethod {
        match &self.0 {
            LearnerImpl::Exact { method, .. } => *method,
            LearnerImpl::Approximate { method, .. } => *method,
        }
    }

    /// Produces the separators from everything seen so far.
    pub fn separators(&self) -> Result<Vec<f64>> {
        match &self.0 {
            LearnerImpl::Exact { method, k, multiset } => {
                if multiset.is_empty() {
                    return Err(Error::EmptyInput("StreamingLearner::separators"));
                }
                match method {
                    SeparatorMethod::Uniform => uniform_separators(
                        multiset.iter().last().map(|(v, _)| v).unwrap().max(f64::MIN_POSITIVE),
                        *k,
                    ),
                    SeparatorMethod::Median => Ok(strictly_increasing(
                        (1..*k)
                            .map(|i| multiset.quantile(i as f64 / *k as f64).expect("non-empty"))
                            .collect(),
                    )),
                    SeparatorMethod::DistinctMedian => Ok(strictly_increasing(
                        (1..*k)
                            .map(|i| {
                                multiset.distinct_quantile(i as f64 / *k as f64).expect("non-empty")
                            })
                            .collect(),
                    )),
                }
            }
            LearnerImpl::Approximate { method, k, estimators, max, count } => {
                if *count == 0 {
                    return Err(Error::EmptyInput("StreamingLearner::separators"));
                }
                match method {
                    SeparatorMethod::Uniform => uniform_separators(max.max(f64::MIN_POSITIVE), *k),
                    _ => {
                        // P² estimators run independently; enforce the same
                        // strictly-increasing invariant as the exact paths.
                        let seps: Vec<f64> =
                            estimators.iter().map(|e| e.estimate().expect("count > 0")).collect();
                        Ok(strictly_increasing(seps))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_splits_zero_to_max() {
        let s = uniform_separators(800.0, 8).unwrap();
        assert_eq!(s, vec![100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0]);
        assert!(uniform_separators(0.0, 8).is_err());
        assert!(uniform_separators(800.0, 3).is_err());
        assert!(uniform_separators(f64::INFINITY, 4).is_err());
    }

    #[test]
    fn median_separators_are_quantile_boundaries() {
        // 1..=8, k=4 ⇒ boundaries at the 2nd, 4th, 6th values.
        let v: Vec<f64> = (1..=8).map(|x| x as f64).collect();
        let s = median_separators(&v, 4).unwrap();
        assert_eq!(s, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn median_biased_by_repeats_distinct_is_not() {
        let mut v = vec![0.0; 96];
        v.extend([100.0, 200.0, 300.0, 400.0].iter());
        let med = median_separators(&v, 4).unwrap();
        // Plain median collapses onto the repeated value (the §2.2c bias
        // motivating distinctmedian); collapsed boundaries are nudged to the
        // next representable doubles so they stay strictly increasing.
        assert_eq!(med[0], 0.0);
        assert!(med[2] <= f64::MIN_POSITIVE, "still collapsed near the repeat: {med:?}");
        assert!(med[0] < med[1] && med[1] < med[2], "no duplicates: {med:?}");
        let dm = distinct_median_separators(&v, 4).unwrap();
        // Distinct values {0,100,200,300,400}: boundary i sits at the
        // ceil(5·i/4)-th distinct value ⇒ the 2nd, 3rd and 4th.
        assert_eq!(dm, vec![100.0, 200.0, 300.0]);
    }

    #[test]
    fn quantile_methods_never_emit_duplicate_or_decreasing_separators() {
        // Regression: heavy repeats and constant inputs used to yield
        // duplicate separators, i.e. several bins claiming the same range.
        let inputs: Vec<Vec<f64>> = vec![
            vec![7.5; 50], // constant
            {
                let mut v = vec![0.0; 96];
                v.extend([100.0, 200.0, 300.0, 400.0]);
                v
            },
            vec![-3.0; 10].into_iter().chain((0..10).map(f64::from)).collect(),
            vec![1.0, 1.0, 2.0, 2.0], // < k distinct values
        ];
        for v in &inputs {
            for method in [SeparatorMethod::Median, SeparatorMethod::DistinctMedian] {
                let s = learn_separators(method, v, 8).unwrap();
                for w in s.windows(2) {
                    assert!(w[0] < w[1], "{method} on {v:?}: duplicate/decreasing {s:?}");
                }
                // Streaming exact learner upholds the same invariant.
                let mut sl = StreamingLearner::exact(method, 8).unwrap();
                for &x in v {
                    sl.push(x).unwrap();
                }
                let s = sl.separators().unwrap();
                for w in s.windows(2) {
                    assert!(w[0] < w[1], "streaming {method} on {v:?}: {s:?}");
                }
            }
        }
        // Approximate learner too (median only).
        let mut sl = StreamingLearner::approximate(SeparatorMethod::Median, 8).unwrap();
        for _ in 0..100 {
            sl.push(42.0).unwrap();
        }
        let s = sl.separators().unwrap();
        for w in s.windows(2) {
            assert!(w[0] < w[1], "approximate on constants: {s:?}");
        }
    }

    #[test]
    fn separators_never_decrease() {
        let v = vec![5.0, 1.0, 3.0, 3.0, 3.0, 9.0, 2.0, 8.0, 7.0, 3.0];
        for method in SeparatorMethod::ALL {
            let s = learn_separators(method, &v, 8).unwrap();
            assert_eq!(s.len(), 7);
            for w in s.windows(2) {
                assert!(w[0] <= w[1], "{method}: {s:?}");
            }
        }
    }

    #[test]
    fn sorted_sample_matches_multiset_learning() {
        // Heavy repeats, unsorted input, < k distinct values — all the
        // cases where the quantile conventions could diverge.
        let inputs: Vec<Vec<f64>> = vec![
            vec![5.0, 1.0, 3.0, 3.0, 3.0, 9.0, 2.0, 8.0, 7.0, 3.0],
            {
                let mut v = vec![0.0; 96];
                v.extend([100.0, 200.0, 300.0, 400.0]);
                v
            },
            vec![7.5; 50],
            (0..1000).map(|i| ((i * 37) % 101) as f64).collect(),
        ];
        for v in &inputs {
            let sample = SortedSample::new(v).unwrap();
            assert_eq!(sample.len(), v.len());
            assert_eq!(sample.values(), &v[..]);
            for method in SeparatorMethod::ALL {
                for k in [2, 4, 8, 16] {
                    assert_eq!(
                        learn_separators_from_sample(method, &sample, k).unwrap(),
                        learn_separators(method, v, k).unwrap(),
                        "{method} k={k} on {v:?}"
                    );
                }
            }
        }
        assert!(SortedSample::new(&[]).is_err());
        assert!(SortedSample::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn learn_separators_rejects_empty() {
        for method in SeparatorMethod::ALL {
            assert!(learn_separators(method, &[], 4).is_err());
        }
    }

    #[test]
    fn streaming_exact_matches_batch() {
        let v: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        for method in SeparatorMethod::ALL {
            let batch = learn_separators(method, &v, 16).unwrap();
            let mut sl = StreamingLearner::exact(method, 16).unwrap();
            for &x in &v {
                sl.push(x).unwrap();
            }
            assert_eq!(sl.separators().unwrap(), batch, "{method}");
            assert_eq!(sl.count(), 1000);
        }
    }

    #[test]
    fn streaming_approximate_close_to_exact() {
        let v: Vec<f64> = (0..20_000).map(|i| ((i * 9973) % 4096) as f64).collect();
        let exact = median_separators(&v, 8).unwrap();
        let mut sl = StreamingLearner::approximate(SeparatorMethod::Median, 8).unwrap();
        for &x in &v {
            sl.push(x).unwrap();
        }
        let approx = sl.separators().unwrap();
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a - e).abs() < 150.0, "approx {a} vs exact {e}");
        }
        for w in approx.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn approximate_rejects_distinctmedian() {
        assert!(StreamingLearner::approximate(SeparatorMethod::DistinctMedian, 8).is_err());
    }

    #[test]
    fn flat_separators_match_partition_point_exactly() {
        // Every tricky input class: ties on boundaries, just above/below,
        // ±∞, NaN, subnormals, ±0.0 — the flat scan must agree bit-for-bit
        // with the binary search at every width up to the 32-slot cap.
        for n in [1usize, 3, 7, 15, 31, 32] {
            let seps: Vec<f64> = (0..n).map(|i| i as f64 * 10.0).collect();
            let flat = FlatSeparators::new(&seps).expect("fits in 32 slots");
            assert_eq!(flat.len(), n);
            assert!(!flat.is_empty());
            let mut probes: Vec<f64> = vec![
                f64::NEG_INFINITY,
                f64::INFINITY,
                f64::NAN,
                f64::MIN_POSITIVE,
                f64::MIN_POSITIVE / 2.0, // subnormal
                -0.0,
                0.0,
                -1e300,
                1e300,
            ];
            for &b in &seps {
                probes.extend([b, b.next_up(), b.next_down()]);
            }
            for &v in &probes {
                assert_eq!(flat.bin_index(v), seps.partition_point(|&b| b < v), "n={n} v={v}");
                if n <= 15 {
                    assert_eq!(
                        flat.bin_index_narrow(v),
                        seps.partition_point(|&b| b < v),
                        "n={n} narrow v={v}"
                    );
                }
            }
            // The columnar kernel agrees too, at every chunk fill level
            // (full, partial, and the singleton tail).
            let mut counts = [0u64; ENCODE_CHUNK];
            for chunk in probes.chunks(ENCODE_CHUNK) {
                flat.bin_indices(chunk, &mut counts);
                for (i, &v) in chunk.iter().enumerate() {
                    assert_eq!(
                        counts[i] as usize,
                        seps.partition_point(|&b| b < v),
                        "n={n} chunked v={v}"
                    );
                }
            }
            flat.bin_indices(&probes[..1], &mut counts);
            assert_eq!(counts[0] as usize, seps.partition_point(|&b| b < probes[0]));
        }
        // Above the cap the flat form is refused (binary search stays).
        assert!(FlatSeparators::new(&vec![0.0; 33]).is_none());
    }

    #[test]
    fn method_names_match_paper() {
        assert_eq!(SeparatorMethod::Uniform.name(), "uniform");
        assert_eq!(SeparatorMethod::Median.name(), "median");
        assert_eq!(SeparatorMethod::DistinctMedian.name(), "distinctmedian");
    }
}
