//! Drift-path guarantees: the streaming quantile sketch stays within its
//! provable rank-error bound on adversarial streams (constant runs,
//! ±∞-adjacent values, heavy duplicates), and epoch-versioned encodings
//! survive a store round trip — segments written under different epochs
//! decode independently from one persisted image, byte-identically at every
//! worker count.

use proptest::prelude::*;
use sms_core::pipeline::CodecBuilder;
use sms_core::segstore::SegmentStore;
use sms_core::separators::SeparatorMethod;
use sms_core::shard::{splitmix64, DriftConfig, ShardedEngineConfig, ShardedFleetEngine};
use sms_core::stats::{ExactQuantiles, QuantileSketch};
use sms_core::timeseries::TimeSeries;

/// Stream values `<= v` under the same total order the sketch uses.
fn true_rank_le(values: &[f64], v: f64) -> u64 {
    values.iter().filter(|x| x.total_cmp(&v).is_le()).count() as u64
}

/// Stream values strictly `< v`.
fn true_rank_lt(values: &[f64], v: f64) -> u64 {
    values.iter().filter(|x| x.total_cmp(&v).is_lt()).count() as u64
}

/// Adversarial streams: constant runs, heavy duplicates, values adjacent to
/// ±∞, and ±∞ themselves (the sketch accepts infinities as data — only NaN
/// errors, per the PR 6 policy).
fn adversarial_stream() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        (0u8..13, -1e9f64..1e9).prop_map(|(tag, r)| match tag {
            0..=2 => 42.0,
            3 | 4 => -7.5,
            5 => f64::MAX,
            6 => f64::MIN,
            7 => f64::INFINITY,
            8 => f64::NEG_INFINITY,
            _ => r,
        }),
        1..500,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every rank estimate is within the sketch's own advertised bound.
    #[test]
    fn sketch_rank_error_stays_within_advertised_bound(values in adversarial_stream()) {
        // k = 8 forces compactions even on short streams, so the bound is
        // exercised, not just the exact regime.
        let mut sk = QuantileSketch::new(8).unwrap();
        for &v in &values {
            sk.update(v).unwrap();
        }
        let bound = sk.rank_error_bound();
        for &v in &values {
            let approx = sk.rank(v) as i128;
            let exact = true_rank_le(&values, v) as i128;
            prop_assert!(
                (approx - exact).abs() <= bound as i128,
                "rank({v}) = {approx}, exact {exact}, bound {bound}"
            );
        }
    }

    /// Sketch quantiles agree with [`ExactQuantiles`] to within the rank
    /// bound: the value returned for `q` sits within `rank_error_bound`
    /// stream positions of the exact type-1 quantile.
    #[test]
    fn sketch_quantiles_match_exact_quantiles_in_rank_space(
        finite in prop::collection::vec(
            (0u8..12, -1e6f64..1e6).prop_map(|(tag, r)| match tag {
                0..=2 => 42.0,
                3 | 4 => 1e308,
                5 | 6 => -1e308,
                _ => r,
            }),
            1..400,
        ),
        qnum in 0usize..11,
    ) {
        let q = qnum as f64 / 10.0;
        let mut sk = QuantileSketch::new(8).unwrap();
        for &v in &finite {
            sk.update(v).unwrap();
        }
        let eq = ExactQuantiles::new(&finite).unwrap();
        let n = finite.len() as u64;
        // Type-1 target rank (the sketch's quantile semantics). The exact
        // estimator interpolates at position q·(n−1), so anchor it only to
        // its own lower index: the interpolated value dominates sorted[lo].
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let exact_v = eq.quantile(q);
        let lo_idx = (q * (n - 1) as f64).floor() as u64;
        prop_assert!(true_rank_le(&finite, exact_v) > lo_idx);

        let approx_v = sk.quantile(q).unwrap();
        let bound = sk.rank_error_bound();
        // The approximate quantile's true rank interval must overlap
        // [target - bound, target + bound].
        prop_assert!(
            true_rank_le(&finite, approx_v) + bound >= target,
            "quantile({q}) = {approx_v} ranks too low: le-rank {} < target {target} - bound {bound}",
            true_rank_le(&finite, approx_v)
        );
        prop_assert!(
            true_rank_lt(&finite, approx_v) <= target + bound,
            "quantile({q}) = {approx_v} ranks too high: lt-rank {} > target {target} + bound {bound}",
            true_rank_lt(&finite, approx_v)
        );
    }

    /// Splitting a stream at any point and merging the two sketches keeps
    /// the merged bound honest.
    #[test]
    fn merged_sketches_keep_the_bound(values in adversarial_stream(), split_at in 0usize..500) {
        let cut = split_at.min(values.len());
        let mut a = QuantileSketch::new(8).unwrap();
        let mut b = QuantileSketch::new(8).unwrap();
        for &v in &values[..cut] {
            a.update(v).unwrap();
        }
        for &v in &values[cut..] {
            b.update(v).unwrap();
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), values.len() as u64);
        let bound = a.rank_error_bound();
        for &v in values.iter().take(50) {
            let approx = a.rank(v) as i128;
            let exact = true_rank_le(&values, v) as i128;
            prop_assert!((approx - exact).abs() <= bound as i128);
        }
    }
}

/// A house stream: `n` samples at 900 s, values derived from splitmix64 and
/// shifted by `offset` (the drift injection).
fn house_chunk(house: u64, start_index: usize, n: usize, offset: f64) -> TimeSeries {
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let x = splitmix64(
                house.wrapping_mul(0x9E37_79B9).wrapping_add((start_index + i) as u64 + 7919),
            );
            offset + 100.0 + (x % 4000) as f64 / 10.0
        })
        .collect();
    TimeSeries::from_regular(start_index as i64 * 900, 900, &values).expect("regular series")
}

/// Encode a fleet under epoch 0, drift it across a cutover to epoch 1, store
/// both epochs' segments in ONE image, and decode each epoch independently
/// after a byte round trip — at every worker count, with identical bytes.
#[test]
fn epoch_segments_roundtrip_through_one_image_at_every_worker_count() {
    const HOUSES: u64 = 6;
    const PRE: usize = 256;
    const POST: usize = 256;

    let mut reference: Option<Vec<u8>> = None;
    for workers in [1usize, 2, 8] {
        let builder = CodecBuilder::new()
            .method(SeparatorMethod::Median)
            .alphabet_size(16)
            .unwrap()
            .no_aggregation();
        let config = ShardedEngineConfig::with_shards(3)
            .workers(workers)
            .drift(DriftConfig { threshold: 0.3, window: 64 });
        let mut engine = ShardedFleetEngine::new(builder, config).unwrap();

        let fleet_pre: Vec<(u64, TimeSeries)> =
            (0..HOUSES).map(|h| (h, house_chunk(h, 0, PRE, 0.0))).collect();
        let fleet_post: Vec<(u64, TimeSeries)> =
            (0..HOUSES).map(|h| (h, house_chunk(h, PRE, POST, 800.0))).collect();

        let enc_pre = engine.encode_batch(&fleet_pre).unwrap();
        let enc_post = engine.encode_batch(&fleet_post).unwrap();
        assert!(enc_pre.epochs.iter().all(|&e| e == 0), "no cutover before the drift");
        assert!(enc_post.epochs.iter().all(|&e| e == 1), "every house cuts to epoch 1");

        let mut store = SegmentStore::new();
        for (i, (house, _)) in fleet_pre.iter().enumerate() {
            store.append_epoch(*house, enc_pre.epochs[i], &enc_pre.series[i]).unwrap();
            store.append_epoch(*house, enc_post.epochs[i], &enc_post.series[i]).unwrap();
        }
        let image = store.to_bytes();
        match &reference {
            None => reference = Some(image.clone()),
            Some(expected) => assert_eq!(
                *expected, image,
                "store image differs at {workers} workers — epochs leaked topology"
            ),
        }

        // Round trip: both epochs decode independently from the one image.
        let mut reloaded = SegmentStore::from_bytes(&image).unwrap();
        for (i, (house, _)) in fleet_pre.iter().enumerate() {
            assert_eq!(reloaded.house_epochs(*house), vec![0, 1]);
            let bits = enc_pre.series[i].resolution_bits();
            for to_bits in [1, bits] {
                let got0 =
                    reloaded.read_epoch_truncated(*house, 0, i64::MIN, i64::MAX, to_bits).unwrap();
                assert_eq!(got0, enc_pre.series[i].truncate_resolution(to_bits).unwrap());
                let got1 =
                    reloaded.read_epoch_truncated(*house, 1, i64::MIN, i64::MAX, to_bits).unwrap();
                assert_eq!(got1, enc_post.series[i].truncate_resolution(to_bits).unwrap());
            }
            // An epoch never written reads back empty, not garbage.
            let none = reloaded.read_epoch_truncated(*house, 7, i64::MIN, i64::MAX, 1).unwrap();
            assert_eq!(none.len(), 0);
        }
    }
}
