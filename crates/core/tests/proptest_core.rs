//! Property-based tests for `sms-core`'s data structures, beyond the
//! cross-crate suite in the workspace root: multiset/quantile equivalences,
//! lookup-table laws under adversarial separators (duplicates allowed),
//! bit-packing size accounting, and wire-format totality.

use proptest::prelude::*;
use sms_core::alphabet::Alphabet;
use sms_core::encoder::{EncodedWindow, SensorMessage};
use sms_core::lookup::{LookupTable, SymbolSemantics};
use sms_core::separators::SeparatorMethod;
use sms_core::stats::{ExactQuantiles, FiniteF64, OrderedMultiset};
use sms_core::symbol::{Symbol, SymbolWriter};
use sms_core::wire::{encode_message, FrameDecoder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn finite_f64_is_a_total_order_embedding(mut xs in prop::collection::vec(-1e12f64..1e12, 2..60)) {
        let keys: Vec<FiniteF64> = xs.iter().map(|&v| FiniteF64::new(v).unwrap()).collect();
        // Sorting by key equals sorting by value.
        let mut by_key: Vec<f64> = {
            let mut k = keys.clone();
            k.sort();
            k.into_iter().map(|x| x.get()).collect()
        };
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Normalize -0.0 vs 0.0 ties: compare with bit-insensitive equality.
        for (a, b) in xs.iter().zip(by_key.iter_mut()) {
            prop_assert!(a == b, "{a} vs {b}");
        }
    }

    #[test]
    fn multiset_quantiles_match_type1_definition(values in prop::collection::vec(0.0f64..1000.0, 1..80), qnum in 1usize..20) {
        let q = qnum as f64 / 20.0;
        let mut ms = OrderedMultiset::new();
        for &v in &values {
            ms.insert(v).unwrap();
        }
        // Type-1 reference: smallest value whose cumulative count ≥ ceil(q n).
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let target = ((q * sorted.len() as f64).ceil() as usize).max(1).min(sorted.len());
        prop_assert_eq!(ms.quantile(q), Some(sorted[target - 1]));
    }

    #[test]
    fn exact_quantiles_are_monotone_in_q(values in prop::collection::vec(-500.0f64..500.0, 1..60)) {
        let eq = ExactQuantiles::new(&values).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let v = eq.quantile(i as f64 / 10.0);
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
        prop_assert_eq!(eq.quantile(0.0), *values.iter().min_by(|a, b| a.partial_cmp(b).unwrap()).unwrap());
        prop_assert_eq!(eq.quantile(1.0), *values.iter().max_by(|a, b| a.partial_cmp(b).unwrap()).unwrap());
    }

    #[test]
    fn lookup_from_arbitrary_sorted_separators_is_total(
        mut seps in prop::collection::vec(0.0f64..1000.0, 7),
        values in prop::collection::vec(-100.0f64..1100.0, 1..50),
    ) {
        // Adversarial: duplicates allowed after sorting.
        seps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let table = LookupTable::from_parts(
            SeparatorMethod::Uniform,
            Alphabet::with_size(8).unwrap(),
            seps.clone(),
            &values,
        )
        .unwrap();
        for &v in &values {
            let sym = table.encode_value(v).unwrap();
            prop_assert!(sym.rank() < 8);
            // Definition 3 invariants against the raw separators.
            let r = sym.rank() as usize;
            if r > 0 {
                prop_assert!(v > seps[r - 1], "v={v} rank={r} sep={}", seps[r - 1]);
            }
            if r < 7 {
                prop_assert!(v <= seps[r], "v={v} rank={r} sep={}", seps[r]);
            }
            // Decoding is total and finite for every symbol.
            for sem in [SymbolSemantics::RangeCenter, SymbolSemantics::RangeMean] {
                prop_assert!(table.decode_symbol(sym, sem).unwrap().is_finite());
            }
        }
    }

    #[test]
    fn bin_counts_sum_to_training_size(values in prop::collection::vec(0.0f64..100.0, 1..120), bits in 1u8..5) {
        for method in SeparatorMethod::ALL {
            let t = LookupTable::learn(method, Alphabet::with_resolution(bits).unwrap(), &values)
                .unwrap();
            prop_assert_eq!(t.bin_counts().iter().sum::<u64>(), values.len() as u64);
            // Training mean is preserved by count-weighted bin means.
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let weighted: f64 = t
                .bin_counts()
                .iter()
                .zip(t.bin_means())
                .map(|(&c, &m)| c as f64 * m)
                .sum::<f64>()
                / values.len() as f64;
            prop_assert!((weighted - mean).abs() < 1e-6, "{method}: {weighted} vs {mean}");
        }
    }

    #[test]
    fn writer_bit_accounting(ranks in prop::collection::vec(0u16..64, 0..120), bits in 1u8..7) {
        let k = 1u16 << bits;
        let mut w = SymbolWriter::new();
        for &r in &ranks {
            w.write(Symbol::from_rank(r % k, bits).unwrap());
        }
        prop_assert_eq!(w.bits_written(), ranks.len() * bits as usize);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len(), (ranks.len() * bits as usize).div_ceil(8));
    }

    #[test]
    fn wire_roundtrip_is_total_for_windows(
        start in -1_000_000i64..1_000_000,
        rank in 0u16..16,
        samples in 0u32..100_000,
    ) {
        let msg = SensorMessage::Window(EncodedWindow {
            window_start: start,
            symbol: Symbol::from_rank(rank, 4).unwrap(),
            samples,
        });
        let frame = encode_message(&msg).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        let out = dec.drain().unwrap();
        prop_assert_eq!(out, vec![msg]);
        prop_assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn wire_table_roundtrip(values in prop::collection::vec(0.0f64..5000.0, 8..100), bits in 1u8..5) {
        let table = LookupTable::learn(
            SeparatorMethod::Median,
            Alphabet::with_resolution(bits).unwrap(),
            &values,
        )
        .unwrap();
        let frame = encode_message(&SensorMessage::Table(table.clone())).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        match dec.drain().unwrap().pop().unwrap() {
            SensorMessage::Table(t) => prop_assert_eq!(t, table),
            other => prop_assert!(false, "unexpected message: {other:?}"),
        }
    }

    #[test]
    fn symbol_children_partition_parent_range(
        values in prop::collection::vec(0.0f64..1000.0, 16..120),
    ) {
        let table = LookupTable::learn(
            SeparatorMethod::Median,
            Alphabet::with_size(16).unwrap(),
            &values,
        )
        .unwrap();
        // For every 3-bit symbol, its two 4-bit children's ranges tile it.
        for rank in 0..8u16 {
            let parent = Symbol::from_rank(rank, 3).unwrap();
            let (l, r) = parent.children().unwrap();
            let (plo, phi) = table.range_of(parent).unwrap();
            let (llo, lhi) = table.range_of(l).unwrap();
            let (rlo, rhi) = table.range_of(r).unwrap();
            prop_assert!((plo - llo).abs() < 1e-12);
            prop_assert!((lhi - rlo).abs() < 1e-12, "children adjacent");
            prop_assert!((phi - rhi).abs() < 1e-12);
        }
    }
}
