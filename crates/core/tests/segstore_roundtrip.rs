//! Property tests for the bit-packed segment store: for every alphabet up
//! to k = 64 (6-bit symbols), packing a series and reading it back
//! truncated to any coarser resolution r must equal BOTH the in-memory
//! `truncate_resolution` of the original series AND a fresh encode of the
//! raw values through the coarsened lookup table — the paper's prefix
//! partial order made into a storage-level law (a truncated read is a pure
//! bit-slice, never a decode-then-truncate). The persisted image must
//! preserve all of it byte for byte.

use proptest::prelude::*;
use sms_core::alphabet::Alphabet;
use sms_core::horizontal::SymbolicSeries;
use sms_core::lookup::LookupTable;
use sms_core::segstore::SegmentStore;
use sms_core::separators::SeparatorMethod;
use sms_core::timeseries::TimeSeries;

/// Encodes `values` at `bits` resolution into a regular 900 s series.
fn encode_series(values: &[f64], bits: u8) -> (LookupTable, SymbolicSeries) {
    let table = LookupTable::learn(
        SeparatorMethod::Median,
        Alphabet::with_resolution(bits).unwrap(),
        values,
    )
    .unwrap();
    let ts = TimeSeries::from_regular(0, 900, values).unwrap();
    let series = sms_core::horizontal::horizontal_segmentation(&ts, &table).unwrap();
    (table, series)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_read_equals_reencode_at_coarser_resolution(
        values in prop::collection::vec(0.0f64..3000.0, 8..200),
        bits in 1u8..=6,
    ) {
        let (table, series) = encode_series(&values, bits);
        let mut store = SegmentStore::new();
        store.append(7, &series).unwrap();

        for r in 1..=bits {
            // pack → truncate-to-r → unpack ...
            let packed = store.read_truncated(7, i64::MIN, i64::MAX, r).unwrap();
            prop_assert_eq!(packed.resolution_bits(), r);
            // ... equals the in-memory truncation of the packed series ...
            let truncated = series.truncate_resolution(r).unwrap();
            prop_assert_eq!(packed.symbols(), truncated.symbols());
            prop_assert_eq!(packed.timestamps(), truncated.timestamps());
            // ... and equals encoding the raw values at resolution r.
            let coarse = table.coarsen(r).unwrap();
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(
                    packed.symbols()[i],
                    coarse.encode_value(v).unwrap(),
                    "value {v} at index {i}, {bits} -> {r} bits"
                );
            }
        }
    }

    #[test]
    fn persisted_image_preserves_truncated_reads(
        values in prop::collection::vec(0.0f64..3000.0, 8..120),
        bits in 1u8..=6,
        r in 1u8..=6,
    ) {
        let r = r.min(bits);
        let (_, series) = encode_series(&values, bits);
        let mut store = SegmentStore::new();
        store.append(3, &series).unwrap();
        let mut restored = SegmentStore::from_bytes(&store.to_bytes()).unwrap();
        let a = store.read_truncated(3, i64::MIN, i64::MAX, r).unwrap();
        let b = restored.read_truncated(3, i64::MIN, i64::MAX, r).unwrap();
        prop_assert_eq!(a.symbols(), b.symbols());
        prop_assert_eq!(a.timestamps(), b.timestamps());
    }

    #[test]
    fn time_window_reads_slice_exactly(
        values in prop::collection::vec(0.0f64..3000.0, 8..120),
        bits in 1u8..=6,
        lo in 0usize..100,
        span in 1usize..100,
    ) {
        let (_, series) = encode_series(&values, bits);
        let n = series.len();
        let lo = lo % n;
        let hi = (lo + span).min(n - 1);
        let mut store = SegmentStore::new();
        store.append(11, &series).unwrap();
        let t0 = series.timestamps()[lo];
        let t1 = series.timestamps()[hi];
        let window = store.read_range(11, t0, t1).unwrap();
        prop_assert_eq!(window.symbols(), &series.symbols()[lo..=hi]);
        prop_assert_eq!(window.timestamps(), &series.timestamps()[lo..=hi]);
    }

    #[test]
    fn recompression_roundtrips_any_alphabet(
        values in prop::collection::vec(0.0f64..3000.0, 8..200),
        bits in 1u8..=6,
    ) {
        let (_, series) = encode_series(&values, bits);
        let mut store = SegmentStore::new();
        store.append(1, &series).unwrap();
        store.recompress().unwrap();
        let m = store.segments()[0];
        let blob = store.recompress_segment(&m).unwrap();
        let (got_bits, ranks) = sms_core::segstore::decompress_segment(&blob).unwrap();
        prop_assert_eq!(got_bits, bits);
        prop_assert_eq!(ranks, series.ranks());
    }
}
