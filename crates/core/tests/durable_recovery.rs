//! Property tests for the crash-safe durability layer: whatever the
//! crash point, short write, or torn (even bit-flipped) WAL tail, recovery
//! must reconstruct exactly a committed prefix of the append stream —
//! covering every acknowledged record — and the recovered store must be
//! byte-identical to an uncrashed reference holding that prefix, at full
//! resolution and at every truncated resolution `r ∈ 1..=b`. The same law
//! must hold for workloads produced by the sharded engine at 1, 2 and 8
//! workers (whose output is required to be worker-count independent).

use proptest::prelude::*;
use sms_core::durable::{DurableConfig, DurableStore, FaultPlan, FaultStorage};
use sms_core::error::Result;
use sms_core::horizontal::SymbolicSeries;
use sms_core::pipeline::CodecBuilder;
use sms_core::segstore::SegmentStore;
use sms_core::separators::SeparatorMethod;
use sms_core::shard::{splitmix64, ShardedEngineConfig, ShardedFleetEngine};
use sms_core::symbol::Symbol;
use sms_core::timeseries::TimeSeries;

/// Builds one house's series from `(bits, ranks)`: regular timestamps,
/// 900 s interval.
fn series_from_ranks(bits: u8, ranks: &[u16]) -> SymbolicSeries {
    let mut s = SymbolicSeries::new(bits).unwrap();
    for (i, r) in ranks.iter().enumerate() {
        let sym = Symbol::from_rank(r % (1 << bits), bits).unwrap();
        s.push(i as i64 * 900, sym).unwrap();
    }
    s
}

/// Uncrashed reference store over the first `j` records.
fn prefix_store(records: &[(u64, SymbolicSeries)], j: usize) -> SegmentStore {
    let mut store = SegmentStore::new();
    for (house, series) in &records[..j] {
        store.append(*house, series).unwrap();
    }
    store
}

/// Runs the append workload against `storage` until it finishes or the
/// planned crash fires, reporting the acknowledged (durable) record count.
fn run_workload(
    storage: &mut FaultStorage,
    config: DurableConfig,
    records: &[(u64, SymbolicSeries)],
) -> u64 {
    let mut acked = 0u64;
    let mut go = || -> Result<()> {
        let (mut ds, _) = DurableStore::open(&mut *storage, config)?;
        for (house, series) in records {
            match ds.append(*house, series) {
                Ok(_) => acked = ds.durable_records(),
                Err(e) => {
                    acked = ds.durable_records();
                    return Err(e);
                }
            }
        }
        let out = ds.commit();
        acked = ds.durable_records();
        out
    };
    let _ = go();
    acked
}

/// Recovers from the post-crash surviving bytes and checks the prefix law:
/// `j >= acked`, byte-identity at full resolution, and truncated-read
/// identity at every `r ∈ 1..=bits` for every recovered house.
fn check_recovery(
    storage: &FaultStorage,
    config: DurableConfig,
    records: &[(u64, SymbolicSeries)],
    acked: u64,
) -> std::result::Result<(), TestCaseError> {
    let (mut recovered, report) = DurableStore::open(storage.crash_view(), config)
        .map_err(|e| TestCaseError::fail(format!("recovery must never fail, got: {e}")))?;
    let j = recovered.durable_records();
    prop_assert!(
        j >= acked && j <= records.len() as u64,
        "recovered {j} records, acked {acked} of {}",
        records.len()
    );
    prop_assert!(
        report.replayed <= j,
        "report claims {} replayed records but only {} recovered",
        report.replayed,
        j
    );
    let mut reference = prefix_store(records, j as usize);
    prop_assert!(
        recovered.store().to_bytes() == reference.to_bytes(),
        "recovered image differs from the {j}-record reference"
    );
    for (house, series) in &records[..j as usize] {
        for r in 1..=series.resolution_bits() {
            let got = recovered
                .store_mut()
                .read_truncated(*house, i64::MIN, i64::MAX, r)
                .map_err(|e| TestCaseError::fail(format!("truncated read failed: {e}")))?;
            let want = reference
                .read_truncated(*house, i64::MIN, i64::MAX, r)
                .map_err(|e| TestCaseError::fail(format!("reference read failed: {e}")))?;
            prop_assert!(
                got.symbols() == want.symbols() && got.timestamps() == want.timestamps(),
                "house {} diverges at {} bits after recovery",
                house,
                r
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random workloads, random commit/checkpoint cadence, random crash
    /// point with a short-written, possibly bit-flipped torn tail: recovery
    /// always lands on a committed prefix covering every acknowledged
    /// record, byte-identical to the reference at every resolution.
    #[test]
    fn torn_tail_recovery_is_a_committed_prefix(
        houses in prop::collection::vec(prop::collection::vec(0u16..64, 1..12), 1..10),
        bits in 2u8..=6,
        group_commit in 1usize..=5,
        checkpoint_every in 0u64..=9,
        crash_at in 1u64..=80,
        short_write_keep in prop::sample::select(vec![None, Some(0u64), Some(3), Some(17)]),
        corrupt_torn_byte in prop::bool::ANY,
        tear_seed in 0u64..=u64::MAX,
    ) {
        let records: Vec<(u64, SymbolicSeries)> = houses
            .iter()
            .enumerate()
            .map(|(h, ranks)| (h as u64, series_from_ranks(bits, ranks)))
            .collect();
        let config = DurableConfig::default()
            .group_commit(group_commit)
            .checkpoint_every(checkpoint_every);
        let plan = FaultPlan {
            crash_at_op: Some(crash_at),
            short_write_keep,
            tear_seed,
            corrupt_torn_byte,
        };
        let mut storage = FaultStorage::with_plan(plan);
        let acked = run_workload(&mut storage, config, &records);
        check_recovery(&storage, config, &records, acked)?;
    }
}

/// Exhaustive crash-point sweep over an engine-encoded workload, at every
/// worker count in {1, 2, 8}: the encode must be worker-independent, and
/// every crash point must recover to a byte-identical committed prefix.
#[test]
fn every_op_crash_sweep_is_worker_independent() {
    const HOUSES: usize = 10;
    let fleet: Vec<(u64, TimeSeries)> = (0..HOUSES)
        .map(|h| {
            let values: Vec<f64> = (0..48)
                .map(|i| 50.0 + (splitmix64(h as u64 ^ (i << 8)) % 4000) as f64 / 10.0)
                .collect();
            (h as u64, TimeSeries::from_regular(0, 900, &values).unwrap())
        })
        .collect();
    let builder = || {
        CodecBuilder::new()
            .method(SeparatorMethod::Median)
            .alphabet_size(16)
            .unwrap()
            .no_aggregation()
    };

    let mut reference_series: Option<Vec<SymbolicSeries>> = None;
    for workers in [1usize, 2, 8] {
        let config = ShardedEngineConfig::with_shards(4).workers(workers);
        let mut engine = ShardedFleetEngine::new(builder(), config).unwrap();
        let enc = engine.encode_batch(&fleet).unwrap();
        assert!(enc.quarantined.is_empty());
        match &reference_series {
            None => reference_series = Some(enc.series.clone()),
            Some(reference) => {
                for (a, b) in reference.iter().zip(&enc.series) {
                    assert_eq!(a.symbols(), b.symbols(), "{workers} workers changed the encode");
                }
            }
        }
        let records: Vec<(u64, SymbolicSeries)> = (0..HOUSES as u64).zip(enc.series).collect();
        let config = DurableConfig::default().group_commit(3).checkpoint_every(4);

        // Uncrashed run to count the ops the sweep must cover.
        let mut clean = FaultStorage::new();
        let acked = run_workload(&mut clean, config, &records);
        assert_eq!(acked, records.len() as u64);
        let total_ops = clean.ops();

        for crash_at in 1..=total_ops {
            let mut plan = FaultPlan::crash_at(crash_at, crash_at.wrapping_mul(0x9E37));
            if crash_at % 3 == 0 {
                plan.short_write_keep = Some(crash_at % 11);
            }
            if crash_at % 2 == 0 {
                plan.corrupt_torn_byte = true;
            }
            let mut storage = FaultStorage::with_plan(plan);
            let acked = run_workload(&mut storage, config, &records);
            check_recovery(&storage, config, &records, acked)
                .unwrap_or_else(|e| panic!("workers {workers}, crash at op {crash_at}: {e}"));
        }
    }
}
