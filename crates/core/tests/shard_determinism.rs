//! Cross-topology determinism for the sharded fleet engine: a fleet with
//! injected faults (empty series that fail encoding) must produce
//! byte-identical output — same symbols, same timestamps, same quarantine
//! set, and a byte-identical persisted segment-store image — at every
//! shard count in {1, 4, 16} crossed with every worker count in {1, 2, 8}.
//! Shard topology is an operational knob; it must never leak into data.

use sms_core::pipeline::CodecBuilder;
use sms_core::segstore::SegmentStore;
use sms_core::separators::SeparatorMethod;
use sms_core::shard::{splitmix64, ShardedEngineConfig, ShardedFleetEngine};
use sms_core::timeseries::TimeSeries;

fn builder() -> CodecBuilder {
    CodecBuilder::new().method(SeparatorMethod::Median).alphabet_size(16).unwrap().no_aggregation()
}

/// 120 houses; 13, 47 and 88 are faulted with empty series, which fail
/// encoding with a typed error and must quarantine identically everywhere.
fn faulted_fleet() -> Vec<(u64, TimeSeries)> {
    (0..120u64)
        .map(|house| {
            if house == 13 || house == 47 || house == 88 {
                return (house, TimeSeries::new());
            }
            let values: Vec<f64> = (0..96)
                .map(|i| {
                    let x = splitmix64(house.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64));
                    50.0 + (x % 4000) as f64 / 10.0
                })
                .collect();
            (house, TimeSeries::from_regular(0, 900, &values).expect("regular series"))
        })
        .collect()
}

/// Per-topology witness: every house's ranks, the quarantine set, and the
/// persisted store image.
type Witness = (Vec<Vec<u16>>, Vec<usize>, Vec<u8>);

#[test]
fn faulted_fleet_is_byte_identical_across_shard_and_worker_topologies() {
    let fleet = faulted_fleet();
    let mut reference: Option<Witness> = None;

    for shards in [1usize, 4, 16] {
        for workers in [1usize, 2, 8] {
            let cfg = ShardedEngineConfig::with_shards(shards).workers(workers);
            let mut engine = ShardedFleetEngine::new(builder(), cfg).unwrap();
            let out = engine.encode_batch(&fleet).unwrap();

            assert_eq!(out.series.len(), fleet.len(), "indices stay aligned");
            let ranks: Vec<Vec<u16>> = out.series.iter().map(|s| s.ranks()).collect();
            let quarantined: Vec<usize> = out.quarantined.iter().map(|q| q.house).collect();
            assert_eq!(
                quarantined,
                vec![13, 47, 88],
                "exactly the faulted houses quarantine, in input order, at {shards}x{workers}"
            );
            for &q in &quarantined {
                assert!(out.series[q].is_empty(), "quarantined house {q} gets a placeholder");
            }

            let mut store = SegmentStore::new();
            for (i, s) in out.series.iter().enumerate() {
                if !s.is_empty() {
                    store.append(fleet[i].0, s).unwrap();
                }
            }
            let image = store.to_bytes();

            match &reference {
                None => reference = Some((ranks, quarantined, image)),
                Some((r_ranks, r_quar, r_image)) => {
                    assert_eq!(
                        &quarantined, r_quar,
                        "quarantine set differs at {shards} shards x {workers} workers"
                    );
                    assert_eq!(
                        &ranks, r_ranks,
                        "symbols differ at {shards} shards x {workers} workers"
                    );
                    assert_eq!(
                        &image, r_image,
                        "store image differs at {shards} shards x {workers} workers"
                    );
                }
            }
        }
    }
}

#[test]
fn streaming_in_chunks_matches_one_shot_encode() {
    let fleet: Vec<(u64, TimeSeries)> =
        faulted_fleet().into_iter().filter(|(_, ts)| !ts.is_empty()).collect();

    let cfg = ShardedEngineConfig::with_shards(4).workers(2);
    let mut one_shot = ShardedFleetEngine::new(builder(), cfg.clone()).unwrap();
    let whole = one_shot.encode_batch(&fleet).unwrap();

    let mut chunked = ShardedFleetEngine::new(builder(), cfg).unwrap();
    let mut store_whole = SegmentStore::new();
    let mut store_chunked = SegmentStore::new();
    for (i, s) in whole.series.iter().enumerate() {
        if !s.is_empty() {
            store_whole.append(fleet[i].0, s).unwrap();
        }
    }
    for chunk in fleet.chunks(17) {
        let out = chunked.encode_batch(chunk).unwrap();
        for (i, s) in out.series.iter().enumerate() {
            if !s.is_empty() {
                store_chunked.append(chunk[i].0, s).unwrap();
            }
        }
    }
    assert_eq!(
        store_whole.to_bytes(),
        store_chunked.to_bytes(),
        "chunked streaming must persist the identical image"
    );
}
