//! A house: an appliance stock plus an occupancy profile, generating the
//! mains (total) power series that the paper's experiments consume (paper
//! §3: "we used the total power consumption of the house").

use crate::appliance::{
    Appliance, BaseLoad, Cooking, Dishwasher, Electronics, EvCharger, Fridge, Hvac, Laundry,
    Lighting, WaterHeater,
};
use crate::profiles::WeeklyProfile;
use crate::rng::gaussian;
use sms_core::error::{Error, Result};
use sms_core::timeseries::{TimeSeries, Timestamp};

/// Which occupancy rhythm a household follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occupancy {
    /// 9-to-5 workers: morning/evening peaks on weekdays.
    Working,
    /// Night-shift: inverted rhythm.
    NightShift,
    /// Home all day (retiree / home office).
    HomeAllDay,
}

impl Occupancy {
    fn profile(self) -> WeeklyProfile {
        match self {
            Occupancy::Working => WeeklyProfile::working(),
            Occupancy::NightShift => WeeklyProfile::night_shift(),
            Occupancy::HomeAllDay => WeeklyProfile::home_all_day(),
        }
    }
}

/// Declarative description of a house; turned into appliance models by
/// [`House::build`]. All power figures in watts.
#[derive(Debug, Clone)]
pub struct HouseConfig {
    /// Stable identifier (the class label in the paper's experiments).
    pub id: u32,
    /// Occupancy rhythm.
    pub occupancy: Occupancy,
    /// Overall consumption scale (1.0 = average household). Scales every
    /// appliance's rating, producing the big-vs-small-consumer axis that
    /// per-house median tables capture (paper Fig. 3 discussion).
    pub scale: f64,
    /// Fridge compressor watts (0 disables — every real house has one, but
    /// tests may want isolation).
    pub fridge_watts: f64,
    /// Always-on base load watts.
    pub base_watts: f64,
    /// Electronics active watts.
    pub electronics_watts: f64,
    /// Lighting full-on watts.
    pub lighting_watts: f64,
    /// Water heater element watts (0 = gas water heating).
    pub water_heater_watts: f64,
    /// Cooking peak watts (0 = gas stove).
    pub cooking_watts: f64,
    /// Dryer watts (0 = line drying).
    pub dryer_watts: f64,
    /// Dishwasher heater watts (0 = none).
    pub dishwasher_watts: f64,
    /// HVAC heating watts (0 = non-electric heating).
    pub hvac_heat_watts: f64,
    /// HVAC cooling watts (0 = no AC).
    pub hvac_cool_watts: f64,
    /// Laundry probability per weekday.
    pub laundry_prob: f64,
    /// Cooking enthusiasm multiplier.
    pub cooking_enthusiasm: f64,
    /// Household clock shift in hours (early risers < 0 < night owls).
    pub schedule_shift_hours: f64,
    /// EV charger draw (W); 0 = no electric vehicle.
    pub ev_charger_watts: f64,
}

impl HouseConfig {
    /// A plain average working household (useful default for tests).
    pub fn average(id: u32) -> Self {
        HouseConfig {
            id,
            occupancy: Occupancy::Working,
            scale: 1.0,
            fridge_watts: 120.0,
            base_watts: 15.0,
            electronics_watts: 140.0,
            lighting_watts: 280.0,
            water_heater_watts: 3000.0,
            cooking_watts: 2000.0,
            dryer_watts: 2400.0,
            dishwasher_watts: 1800.0,
            hvac_heat_watts: 0.0,
            hvac_cool_watts: 0.0,
            laundry_prob: 0.3,
            cooking_enthusiasm: 1.0,
            schedule_shift_hours: 0.0,
            ev_charger_watts: 0.0,
        }
    }
}

/// A simulated house ready to produce power readings.
#[derive(Debug)]
pub struct House {
    config: HouseConfig,
    appliances: Vec<Box<dyn Appliance>>,
    seed: u64,
}

impl House {
    /// Builds the appliance models from a config. `dataset_seed` decorrelates
    /// otherwise identical configs across datasets.
    pub fn build(config: HouseConfig, dataset_seed: u64) -> Self {
        let profile = config.occupancy.profile().shifted(config.schedule_shift_hours);
        let s = config.scale;
        let mut stream: u64 = (config.id as u64) << 32;
        let mut next = || {
            stream += 101;
            stream
        };
        let mut appliances: Vec<Box<dyn Appliance>> = Vec::new();
        if config.fridge_watts > 0.0 {
            appliances.push(Box::new(Fridge {
                rated_watts: config.fridge_watts * s,
                duty: 0.42,
                period_secs: 2400 + (config.id as i64 * 331) % 2400,
                stream: next(),
            }));
        }
        if config.base_watts > 0.0 {
            appliances.push(Box::new(BaseLoad { watts: config.base_watts * s, stream: next() }));
        }
        if config.electronics_watts > 0.0 {
            appliances.push(Box::new(Electronics {
                standby_watts: 10.0 * s,
                active_watts: config.electronics_watts * s,
                profile,
                stream: next(),
            }));
        }
        if config.lighting_watts > 0.0 {
            appliances.push(Box::new(Lighting {
                max_watts: config.lighting_watts * s,
                circuits: 6,
                profile,
                stream: next(),
            }));
        }
        if config.water_heater_watts > 0.0 {
            appliances.push(Box::new(WaterHeater {
                rated_watts: config.water_heater_watts * s,
                event_rate: 0.55,
                profile,
                stream: next(),
            }));
        }
        if config.cooking_watts > 0.0 {
            appliances.push(Box::new(Cooking {
                rated_watts: config.cooking_watts * s,
                enthusiasm: config.cooking_enthusiasm,
                profile,
                stream: next(),
            }));
        }
        if config.laundry_prob > 0.0 {
            appliances.push(Box::new(Laundry {
                washer_watts: 400.0 * s,
                washer_heat_watts: 1800.0 * s,
                dryer_watts: config.dryer_watts * s,
                weekday_prob: config.laundry_prob,
                stream: next(),
            }));
        }
        if config.dishwasher_watts > 0.0 {
            appliances.push(Box::new(Dishwasher {
                heater_watts: config.dishwasher_watts * s,
                daily_prob: 0.55,
                stream: next(),
            }));
        }
        if config.ev_charger_watts > 0.0 {
            appliances.push(Box::new(EvCharger {
                rated_watts: config.ev_charger_watts,
                daily_prob: 0.45,
                stream: next(),
            }));
        }
        if config.hvac_heat_watts > 0.0 || config.hvac_cool_watts > 0.0 {
            appliances.push(Box::new(Hvac {
                heat_watts: config.hvac_heat_watts * s,
                cool_watts: config.hvac_cool_watts * s,
                period_secs: 1200,
                stream: next(),
            }));
        }
        let seed = crate::rng::mix64(dataset_seed ^ ((config.id as u64) << 17));
        House { config, appliances, seed }
    }

    /// The house's configuration.
    pub fn config(&self) -> &HouseConfig {
        &self.config
    }

    /// The house id.
    pub fn id(&self) -> u32 {
        self.config.id
    }

    /// Number of active appliance models.
    pub fn appliance_count(&self) -> usize {
        self.appliances.len()
    }

    /// Total (mains) power at `t`, in watts: the sum over appliances plus a
    /// small measurement noise floor, quantized to the meter's 1 W
    /// resolution. Quantization matters: it makes standby levels repeat
    /// exactly, which is what separates the paper's `median` from its
    /// `distinctmedian` separators (REDD values are similarly discrete).
    pub fn power_at(&self, t: Timestamp) -> f64 {
        let mut w: f64 = self.appliances.iter().map(|a| a.power_at(t, self.seed)).sum();
        // Measurement noise: ±1% plus a ±2 W floor.
        w *= 1.0 + 0.01 * gaussian(self.seed, 0xFFFF, t as u64);
        w += 2.0 * gaussian(self.seed, 0xFFFE, t as u64);
        w.max(0.0).round()
    }

    /// Generates readings every `interval_secs` over `[start, start + duration_secs)`.
    pub fn generate(
        &self,
        start: Timestamp,
        duration_secs: i64,
        interval_secs: i64,
    ) -> Result<TimeSeries> {
        if interval_secs <= 0 || duration_secs < 0 {
            return Err(Error::InvalidParameter {
                name: "interval_secs/duration_secs",
                reason: "interval must be positive and duration non-negative".to_string(),
            });
        }
        let n = (duration_secs / interval_secs) as usize;
        let mut out = TimeSeries::with_capacity(n);
        let mut t = start;
        for _ in 0..n {
            out.push(t, self.power_at(t))?;
            t += interval_secs;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_generate() {
        let h = House::build(HouseConfig::average(1), 99);
        assert!(h.appliance_count() >= 8);
        let s = h.generate(0, 3600, 1).unwrap();
        assert_eq!(s.len(), 3600);
        assert!(s.min_value().unwrap() >= 0.0);
        assert!(s.max_value().unwrap() > 50.0, "something must be running");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = House::build(HouseConfig::average(1), 99).generate(0, 600, 1).unwrap();
        let b = House::build(HouseConfig::average(1), 99).generate(0, 600, 1).unwrap();
        let c = House::build(HouseConfig::average(1), 100).generate(0, 600, 1).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.values(), c.values());
    }

    #[test]
    fn random_access_matches_sequential() {
        let h = House::build(HouseConfig::average(2), 7);
        let seq = h.generate(1000, 100, 1).unwrap();
        for (i, (t, v)) in seq.iter().enumerate() {
            assert_eq!(t, 1000 + i as i64);
            assert_eq!(v, h.power_at(t), "power_at must be random-access");
        }
    }

    #[test]
    fn scale_scales_consumption() {
        let mut big_cfg = HouseConfig::average(1);
        big_cfg.scale = 3.0;
        let big = House::build(big_cfg, 5);
        let small = House::build(HouseConfig::average(1), 5);
        let bm = big.generate(0, 86_400, 10).unwrap().mean().unwrap();
        let sm = small.generate(0, 86_400, 10).unwrap().mean().unwrap();
        assert!(bm > sm * 2.0, "big {bm} vs small {sm}");
    }

    #[test]
    fn occupancy_changes_daily_shape() {
        let mut night_cfg = HouseConfig::average(3);
        night_cfg.occupancy = Occupancy::NightShift;
        let night = House::build(night_cfg, 5);
        let day = House::build(HouseConfig::average(3), 5);
        // Mean 02:00–04:00 power vs 19:00–21:00 power over a week.
        let mut night_night = 0.0;
        let mut night_evening = 0.0;
        let mut day_night = 0.0;
        let mut day_evening = 0.0;
        for d in 0..7i64 {
            let base = d * 86_400;
            night_night += night.generate(base + 2 * 3600, 2 * 3600, 60).unwrap().mean().unwrap();
            night_evening +=
                night.generate(base + 19 * 3600, 2 * 3600, 60).unwrap().mean().unwrap();
            day_night += day.generate(base + 2 * 3600, 2 * 3600, 60).unwrap().mean().unwrap();
            day_evening += day.generate(base + 19 * 3600, 2 * 3600, 60).unwrap().mean().unwrap();
        }
        let night_ratio = night_night / night_evening;
        let day_ratio = day_night / day_evening;
        assert!(
            night_ratio > day_ratio * 1.5,
            "night-shift house relatively busier at night: {night_ratio} vs {day_ratio}"
        );
    }

    #[test]
    fn generate_validates_parameters() {
        let h = House::build(HouseConfig::average(1), 1);
        assert!(h.generate(0, 100, 0).is_err());
        assert!(h.generate(0, -5, 1).is_err());
        assert_eq!(h.generate(0, 0, 1).unwrap().len(), 0);
    }
}
