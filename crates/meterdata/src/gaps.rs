//! Missing-data (gap) injection. Real deployments lose data to network
//! outages and meter resets; the REDD dataset "contains gaps (missing
//! values)" which is why the paper filters to days with ≥ 20 h of data
//! (§3.1). Gap injection is deterministic per seed and random-access, like
//! everything else in the simulator.

use crate::rng::{bernoulli, uniform_in};
use sms_core::error::{Error, Result};
use sms_core::timeseries::{TimeSeries, Timestamp, SECONDS_PER_DAY};

/// Gap-injection policy: up to one outage per day window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapConfig {
    /// Probability that a given day contains an outage.
    pub daily_outage_prob: f64,
    /// Minimum outage duration in seconds.
    pub min_secs: i64,
    /// Maximum outage duration in seconds.
    pub max_secs: i64,
    /// Noise stream separating gap decisions from load decisions.
    pub stream: u64,
}

impl GapConfig {
    /// Light gaps: rare, short outages (a healthy deployment).
    pub fn light() -> Self {
        GapConfig { daily_outage_prob: 0.08, min_secs: 300, max_secs: 3600, stream: 0x6A50 }
    }

    /// Moderate gaps: the typical REDD house.
    pub fn moderate() -> Self {
        GapConfig { daily_outage_prob: 0.25, min_secs: 900, max_secs: 3 * 3600, stream: 0x6A51 }
    }

    /// Severe gaps: the paper's house 5, "skipped because there is not
    /// enough data" in the forecasting experiment — most days fail the
    /// ≥ 20 h filter.
    pub fn severe() -> Self {
        GapConfig {
            daily_outage_prob: 0.95,
            min_secs: 5 * 3600,
            max_secs: 18 * 3600,
            stream: 0x6A52,
        }
    }

    /// No gaps at all.
    pub fn none() -> Self {
        GapConfig { daily_outage_prob: 0.0, min_secs: 0, max_secs: 0, stream: 0x6A53 }
    }

    /// Validates ranges.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.daily_outage_prob) {
            return Err(Error::InvalidParameter {
                name: "daily_outage_prob",
                reason: format!("must be in [0,1], got {}", self.daily_outage_prob),
            });
        }
        if self.daily_outage_prob > 0.0
            && (self.min_secs < 0
                || self.max_secs < self.min_secs
                || self.max_secs > SECONDS_PER_DAY)
        {
            return Err(Error::InvalidParameter {
                name: "min_secs/max_secs",
                reason: format!(
                    "need 0 <= min <= max <= 86400, got {}..{}",
                    self.min_secs, self.max_secs
                ),
            });
        }
        Ok(())
    }

    /// The outage interval for a given day (UTC day index), if any.
    pub fn outage_for_day(&self, seed: u64, day: i64) -> Option<(Timestamp, Timestamp)> {
        if self.daily_outage_prob <= 0.0 {
            return None;
        }
        if !bernoulli(seed, self.stream, day as u64, self.daily_outage_prob) {
            return None;
        }
        let duration = uniform_in(
            seed,
            self.stream ^ 1,
            day as u64,
            self.min_secs as f64,
            (self.max_secs + 1) as f64,
        ) as i64;
        let latest_start = (SECONDS_PER_DAY - duration).max(0);
        let start_offset =
            (uniform_in(seed, self.stream ^ 2, day as u64, 0.0, (latest_start + 1) as f64)) as i64;
        let start = day * SECONDS_PER_DAY + start_offset;
        Some((start, start + duration))
    }

    /// Whether timestamp `t` falls inside an injected outage.
    pub fn is_lost(&self, seed: u64, t: Timestamp) -> bool {
        let day = t.div_euclid(SECONDS_PER_DAY);
        // An outage from the previous day cannot spill over (duration ≤ 1 day
        // and start chosen so it ends within the day), so one lookup suffices.
        match self.outage_for_day(seed, day) {
            Some((s, e)) => (s..e).contains(&t),
            None => false,
        }
    }

    /// Removes lost samples from a series.
    pub fn apply(&self, series: &TimeSeries, seed: u64) -> Result<TimeSeries> {
        self.validate()?;
        let samples =
            series.samples().iter().copied().filter(|s| !self.is_lost(seed, s.t)).collect();
        TimeSeries::from_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day_series(days: i64, interval: i64) -> TimeSeries {
        let n = (days * SECONDS_PER_DAY / interval) as usize;
        TimeSeries::from_regular(0, interval, &vec![100.0; n]).unwrap()
    }

    #[test]
    fn none_is_identity() {
        let s = day_series(3, 60);
        let out = GapConfig::none().apply(&s, 42).unwrap();
        assert_eq!(out, s);
    }

    #[test]
    fn severe_removes_most_data() {
        let s = day_series(10, 60);
        let out = GapConfig::severe().apply(&s, 42).unwrap();
        let kept = out.len() as f64 / s.len() as f64;
        assert!(kept < 0.8, "severe gaps should bite: kept {kept}");
        assert!(!out.is_empty(), "but not erase everything");
    }

    #[test]
    fn light_removes_little() {
        let s = day_series(10, 60);
        let out = GapConfig::light().apply(&s, 42).unwrap();
        let kept = out.len() as f64 / s.len() as f64;
        assert!(kept > 0.95, "light gaps: kept {kept}");
    }

    #[test]
    fn outage_fits_within_its_day() {
        let cfg = GapConfig::moderate();
        for day in 0..200 {
            if let Some((s, e)) = cfg.outage_for_day(7, day) {
                assert!(s >= day * SECONDS_PER_DAY);
                assert!(e <= (day + 1) * SECONDS_PER_DAY, "day {day}: {s}..{e}");
                assert!(e - s >= cfg.min_secs);
                assert!(e - s <= cfg.max_secs);
            }
        }
    }

    #[test]
    fn outage_rate_matches_probability() {
        let cfg = GapConfig::moderate();
        let days_with = (0..2000).filter(|&d| cfg.outage_for_day(3, d).is_some()).count();
        let rate = days_with as f64 / 2000.0;
        assert!((rate - 0.25).abs() < 0.04, "rate {rate}");
    }

    #[test]
    fn deterministic_per_seed() {
        let s = day_series(5, 300);
        let a = GapConfig::moderate().apply(&s, 1).unwrap();
        let b = GapConfig::moderate().apply(&s, 1).unwrap();
        let c = GapConfig::moderate().apply(&s, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.len(), c.len());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = GapConfig::light();
        cfg.daily_outage_prob = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = GapConfig::light();
        cfg.max_secs = cfg.min_secs - 1;
        assert!(cfg.validate().is_err());
        let mut cfg = GapConfig::light();
        cfg.max_secs = SECONDS_PER_DAY + 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn is_lost_consistent_with_apply() {
        let cfg = GapConfig::moderate();
        let s = day_series(3, 600);
        let out = cfg.apply(&s, 11).unwrap();
        for (t, _) in out.iter() {
            assert!(!cfg.is_lost(11, t));
        }
    }
}
