//! Appliance behaviour models.
//!
//! Every appliance exposes `power_at(t)`: a deterministic, random-access
//! function of the timestamp, the house seed, and the appliance's noise
//! stream. The models are intentionally simple state machines driven by
//! hashed per-block decisions, but they reproduce the properties the paper's
//! experiments rely on: heavy standby mass near zero, episodic multi-kW
//! events, daily/weekly periodicity tied to occupancy, and an overall
//! log-normal-ish marginal distribution (paper Fig. 2).

use crate::profiles::{daylight_factor, winter_factor, WeeklyProfile};
use crate::rng::{bernoulli, gaussian, uniform, uniform_in};
use sms_core::timeseries::Timestamp;

/// A household load contributing to the mains reading.
pub trait Appliance: Send + Sync + std::fmt::Debug {
    /// Instantaneous power draw in watts at `t` (deterministic per seed).
    fn power_at(&self, t: Timestamp, seed: u64) -> f64;
    /// Short human-readable name.
    fn name(&self) -> &'static str;
}

/// Refrigerator: compressor duty cycle with per-cycle jitter plus a periodic
/// defrost heater.
#[derive(Debug, Clone)]
pub struct Fridge {
    /// Compressor draw when running (W), typically 80–200.
    pub rated_watts: f64,
    /// Fraction of each cycle the compressor runs, 0–1.
    pub duty: f64,
    /// Cycle period in seconds (typically 2400–5400).
    pub period_secs: i64,
    /// Noise stream id.
    pub stream: u64,
}

impl Appliance for Fridge {
    fn power_at(&self, t: Timestamp, seed: u64) -> f64 {
        let cycle = t.div_euclid(self.period_secs);
        let phase = t.rem_euclid(self.period_secs) as f64 / self.period_secs as f64;
        // Jitter the duty ±15% per cycle so cycles do not align forever.
        let duty = self.duty * uniform_in(seed, self.stream, cycle as u64, 0.85, 1.15);
        let mut w = if phase < duty {
            self.rated_watts * (1.0 + 0.03 * gaussian(seed, self.stream ^ 1, t as u64))
        } else {
            2.0 // electronics standby
        };
        // Defrost: one 30-minute, ~150 W heater event roughly every 2 days.
        let defrost_block = t.div_euclid(2 * 86_400);
        let defrost_start = (uniform(seed, self.stream ^ 2, defrost_block as u64)
            * (2.0 * 86_400.0 - 1800.0)) as i64;
        let in_block = t.rem_euclid(2 * 86_400);
        if (defrost_start..defrost_start + 1800).contains(&in_block) {
            w += 150.0;
        }
        w.max(0.0)
    }

    fn name(&self) -> &'static str {
        "fridge"
    }
}

/// Always-on base load: router, alarm, chargers.
#[derive(Debug, Clone)]
pub struct BaseLoad {
    /// Constant draw in watts.
    pub watts: f64,
    /// Noise stream id.
    pub stream: u64,
}

impl Appliance for BaseLoad {
    fn power_at(&self, t: Timestamp, seed: u64) -> f64 {
        (self.watts * (1.0 + 0.02 * gaussian(seed, self.stream, t as u64))).max(0.0)
    }

    fn name(&self) -> &'static str {
        "base"
    }
}

/// Consumer electronics: standby plus television/computer sessions decided
/// per half-hour block with probability proportional to household activity.
#[derive(Debug, Clone)]
pub struct Electronics {
    /// Standby draw (W).
    pub standby_watts: f64,
    /// Active (TV/PC) draw (W).
    pub active_watts: f64,
    /// Occupancy profile driving session probability.
    pub profile: WeeklyProfile,
    /// Noise stream id.
    pub stream: u64,
}

impl Appliance for Electronics {
    fn power_at(&self, t: Timestamp, seed: u64) -> f64 {
        let block = t.div_euclid(1800);
        let activity = self.profile.activity_at(t);
        let on = bernoulli(seed, self.stream, block as u64, (activity * 1.1).min(0.95));
        let mut w = self.standby_watts;
        if on {
            w += self.active_watts * (1.0 + 0.05 * gaussian(seed, self.stream ^ 1, t as u64));
        }
        w.max(0.0)
    }

    fn name(&self) -> &'static str {
        "electronics"
    }
}

/// Lighting: scales with occupancy and inversely with daylight, quantized to
/// discrete circuit levels (lights are switched, not dimmed continuously).
#[derive(Debug, Clone)]
pub struct Lighting {
    /// All-circuits-on draw (W).
    pub max_watts: f64,
    /// Number of independently switched circuits.
    pub circuits: u32,
    /// Occupancy profile.
    pub profile: WeeklyProfile,
    /// Noise stream id.
    pub stream: u64,
}

impl Appliance for Lighting {
    fn power_at(&self, t: Timestamp, seed: u64) -> f64 {
        let demand = self.profile.activity_at(t) * (1.0 - daylight_factor(t));
        // Re-decide the switched level every 10 minutes.
        let block = t.div_euclid(600);
        let jitter = uniform_in(seed, self.stream, block as u64, 0.7, 1.3);
        let level = (demand * jitter * self.circuits as f64).round().min(self.circuits as f64);
        (level / self.circuits as f64 * self.max_watts).max(0.0)
    }

    fn name(&self) -> &'static str {
        "lighting"
    }
}

/// Electric water heater: short high-power reheat events following hot-water
/// use, decided per 15-minute block.
#[derive(Debug, Clone)]
pub struct WaterHeater {
    /// Element draw when heating (W), typically 2000–4500.
    pub rated_watts: f64,
    /// Base probability of a draw event per active 15-minute block.
    pub event_rate: f64,
    /// Occupancy profile.
    pub profile: WeeklyProfile,
    /// Noise stream id.
    pub stream: u64,
}

impl Appliance for WaterHeater {
    fn power_at(&self, t: Timestamp, seed: u64) -> f64 {
        let block = t.div_euclid(900);
        let activity = self.profile.activity_at(block * 900);
        if !bernoulli(seed, self.stream, block as u64, self.event_rate * activity) {
            return 0.0;
        }
        // Heating run of 4–12 minutes from the block start.
        let duration = uniform_in(seed, self.stream ^ 1, block as u64, 240.0, 720.0) as i64;
        let offset = t.rem_euclid(900);
        if offset < duration {
            self.rated_watts * (1.0 + 0.02 * gaussian(seed, self.stream ^ 2, t as u64))
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "water_heater"
    }
}

/// Stove/oven cooking events around meal windows, with thermostat cycling.
#[derive(Debug, Clone)]
pub struct Cooking {
    /// Peak draw (W), typically 1200–3000.
    pub rated_watts: f64,
    /// Probability scale of cooking each meal (modulated by activity).
    pub enthusiasm: f64,
    /// Occupancy profile.
    pub profile: WeeklyProfile,
    /// Noise stream id.
    pub stream: u64,
}

/// Meal windows as (start_hour, end_hour, base probability weight).
const MEALS: [(i64, i64, f64); 3] = [(6, 9, 0.5), (11, 14, 0.4), (17, 21, 0.9)];

impl Appliance for Cooking {
    fn power_at(&self, t: Timestamp, seed: u64) -> f64 {
        let day = t.div_euclid(86_400);
        let second_of_day = t.rem_euclid(86_400);
        let mut w: f64 = 0.0;
        for (meal_idx, &(h0, h1, base_p)) in MEALS.iter().enumerate() {
            let idx = (day * 3 + meal_idx as i64) as u64;
            let window_mid = (h0 + h1) / 2 * 3600;
            let activity = self.profile.activity_at(day * 86_400 + window_mid);
            let p = (base_p * self.enthusiasm * (0.3 + activity)).min(0.95);
            if !bernoulli(seed, self.stream, idx, p) {
                continue;
            }
            let window_len = (h1 - h0) as f64 * 3600.0;
            let duration = uniform_in(seed, self.stream ^ 1, idx, 900.0, 4500.0);
            let start = h0 * 3600
                + (uniform(seed, self.stream ^ 2, idx) * (window_len - duration).max(0.0)) as i64;
            if (start..start + duration as i64).contains(&second_of_day) {
                // Thermostat cycling: ~2-minute period, 60% duty.
                let cyc = (second_of_day - start).rem_euclid(120);
                let duty = if cyc < 72 { 1.0 } else { 0.25 };
                w += self.rated_watts
                    * duty
                    * (1.0 + 0.04 * gaussian(seed, self.stream ^ 3, t as u64));
            }
        }
        w.max(0.0)
    }

    fn name(&self) -> &'static str {
        "cooking"
    }
}

/// Washing machine + optional tumble dryer: episodic weekly loads.
#[derive(Debug, Clone)]
pub struct Laundry {
    /// Washer motor draw (W), with a heating phase spike.
    pub washer_watts: f64,
    /// Washer water-heating spike draw (W).
    pub washer_heat_watts: f64,
    /// Dryer draw (W); 0 disables the dryer.
    pub dryer_watts: f64,
    /// Probability of doing laundry on a weekday; weekends are doubled.
    pub weekday_prob: f64,
    /// Noise stream id.
    pub stream: u64,
}

impl Appliance for Laundry {
    fn power_at(&self, t: Timestamp, seed: u64) -> f64 {
        let day = t.div_euclid(86_400);
        let weekend = WeeklyProfile::is_weekend(t);
        let p = if weekend { (self.weekday_prob * 2.0).min(0.9) } else { self.weekday_prob };
        if !bernoulli(seed, self.stream, day as u64, p) {
            return 0.0;
        }
        // Start between 08:00 and 20:00.
        let start =
            (8.0 * 3600.0 + uniform(seed, self.stream ^ 1, day as u64) * 12.0 * 3600.0) as i64;
        let s = t.rem_euclid(86_400) - start;
        let wash_len = 2700; // 45 min
        let mut w = 0.0;
        if (0..wash_len).contains(&s) {
            w += self.washer_watts;
            if s < 900 {
                w += self.washer_heat_watts; // heating phase in the first 15 min
            }
        }
        if self.dryer_watts > 0.0 {
            let dry_len = 3600;
            let ds = s - wash_len;
            if (0..dry_len).contains(&ds) {
                // Dryer heater cycles ~70% duty at 5-minute period.
                let duty = if ds.rem_euclid(300) < 210 { 1.0 } else { 0.12 };
                w += self.dryer_watts * duty;
            }
        }
        (w * (1.0 + 0.02 * gaussian(seed, self.stream ^ 2, t as u64))).max(0.0)
    }

    fn name(&self) -> &'static str {
        "laundry"
    }
}

/// Dishwasher: evening cycles alternating heater and motor phases.
#[derive(Debug, Clone)]
pub struct Dishwasher {
    /// Heater draw (W).
    pub heater_watts: f64,
    /// Probability of running per day.
    pub daily_prob: f64,
    /// Noise stream id.
    pub stream: u64,
}

impl Appliance for Dishwasher {
    fn power_at(&self, t: Timestamp, seed: u64) -> f64 {
        let day = t.div_euclid(86_400);
        if !bernoulli(seed, self.stream, day as u64, self.daily_prob) {
            return 0.0;
        }
        // Start between 19:00 and 22:00.
        let start =
            (19.0 * 3600.0 + uniform(seed, self.stream ^ 1, day as u64) * 3.0 * 3600.0) as i64;
        let s = t.rem_euclid(86_400) - start;
        let len = 5400; // 90 min
        if !(0..len).contains(&s) {
            return 0.0;
        }
        // Two heating phases (0–20 min, 50–70 min), motor otherwise.
        let m = s / 60;
        if (0..20).contains(&m) || (50..70).contains(&m) {
            self.heater_watts
        } else {
            90.0
        }
    }

    fn name(&self) -> &'static str {
        "dishwasher"
    }
}

/// Electric-vehicle charger: a few evening/overnight sessions per week at
/// a constant high draw with a taper at the end of charge — the most
/// distinctive episodic load in modern meter traces.
#[derive(Debug, Clone)]
pub struct EvCharger {
    /// Charger draw while bulk-charging (W), typically 3 600–11 000.
    pub rated_watts: f64,
    /// Probability of charging on a given day.
    pub daily_prob: f64,
    /// Noise stream id.
    pub stream: u64,
}

impl EvCharger {
    /// The charge level in `[0, 1]` contributed by `day`'s session at
    /// absolute time `t` (sessions start in the evening and may cross
    /// midnight, so callers probe both today's and yesterday's session).
    fn session_level(&self, day: i64, t: Timestamp, seed: u64) -> f64 {
        if !bernoulli(seed, self.stream, day as u64, self.daily_prob) {
            return 0.0;
        }
        // Plug in between 18:00 and 23:00; charge 2–6 hours.
        let start =
            (18.0 * 3600.0 + uniform(seed, self.stream ^ 1, day as u64) * 5.0 * 3600.0) as i64;
        let duration =
            uniform_in(seed, self.stream ^ 2, day as u64, 2.0 * 3600.0, 6.0 * 3600.0) as i64;
        let s = t - (day * 86_400 + start);
        if !(0..duration).contains(&s) {
            return 0.0;
        }
        // Constant-current bulk phase, then a linear taper over the last 20%.
        let taper_start = duration * 4 / 5;
        if s < taper_start {
            1.0
        } else {
            1.0 - 0.8 * (s - taper_start) as f64 / (duration - taper_start) as f64
        }
    }
}

impl Appliance for EvCharger {
    fn power_at(&self, t: Timestamp, seed: u64) -> f64 {
        let day = t.div_euclid(86_400);
        // A session started yesterday evening may still be running.
        let level = self.session_level(day, t, seed).max(self.session_level(day - 1, t, seed));
        if level <= 0.0 {
            return 0.0;
        }
        (self.rated_watts * level * (1.0 + 0.01 * gaussian(seed, self.stream ^ 3, t as u64)))
            .max(0.0)
    }

    fn name(&self) -> &'static str {
        "ev_charger"
    }
}

/// Electric space heating/cooling with seasonal thermostat duty cycling.
#[derive(Debug, Clone)]
pub struct Hvac {
    /// Heating element draw (W); 0 disables heating.
    pub heat_watts: f64,
    /// Cooling (AC) draw (W); 0 disables cooling.
    pub cool_watts: f64,
    /// Thermostat cycle period in seconds.
    pub period_secs: i64,
    /// Noise stream id.
    pub stream: u64,
}

impl Appliance for Hvac {
    fn power_at(&self, t: Timestamp, seed: u64) -> f64 {
        let winter = winter_factor(t);
        let summer = 1.0 - winter;
        // Duty grows with season severity; night setback reduces it.
        let hour = t.rem_euclid(86_400) / 3600;
        let setback = if (0..6).contains(&hour) { 0.6 } else { 1.0 };
        let cycle = t.div_euclid(self.period_secs);
        let phase = t.rem_euclid(self.period_secs) as f64 / self.period_secs as f64;
        let jitter = uniform_in(seed, self.stream, cycle as u64, 0.85, 1.15);
        let mut w = 0.0;
        if self.heat_watts > 0.0 {
            let duty = (winter.powf(1.5) * 0.75 * setback * jitter).min(1.0);
            if phase < duty {
                w += self.heat_watts;
            }
        }
        if self.cool_watts > 0.0 {
            let duty = ((summer - 0.55).max(0.0) * 1.6 * setback * jitter).min(1.0);
            if phase >= 0.5 && phase - 0.5 < duty {
                w += self.cool_watts;
            }
        }
        (w * (1.0 + 0.02 * gaussian(seed, self.stream ^ 1, t as u64))).max(0.0)
    }

    fn name(&self) -> &'static str {
        "hvac"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xC0FFEE;

    fn mean_power(a: &dyn Appliance, from: Timestamp, to: Timestamp, step: i64) -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        let mut t = from;
        while t < to {
            sum += a.power_at(t, SEED);
            n += 1;
            t += step;
        }
        sum / n as f64
    }

    #[test]
    fn all_appliances_deterministic_and_nonnegative() {
        let profile = WeeklyProfile::working();
        let apps: Vec<Box<dyn Appliance>> = vec![
            Box::new(Fridge { rated_watts: 120.0, duty: 0.4, period_secs: 3000, stream: 1 }),
            Box::new(BaseLoad { watts: 15.0, stream: 2 }),
            Box::new(Electronics { standby_watts: 12.0, active_watts: 150.0, profile, stream: 3 }),
            Box::new(Lighting { max_watts: 300.0, circuits: 6, profile, stream: 4 }),
            Box::new(WaterHeater { rated_watts: 3000.0, event_rate: 0.5, profile, stream: 5 }),
            Box::new(Cooking { rated_watts: 2000.0, enthusiasm: 1.0, profile, stream: 6 }),
            Box::new(Laundry {
                washer_watts: 400.0,
                washer_heat_watts: 1800.0,
                dryer_watts: 2500.0,
                weekday_prob: 0.3,
                stream: 7,
            }),
            Box::new(Dishwasher { heater_watts: 1800.0, daily_prob: 0.5, stream: 8 }),
            Box::new(Hvac { heat_watts: 2000.0, cool_watts: 1200.0, period_secs: 1200, stream: 9 }),
        ];
        for a in &apps {
            for t in (0..86_400).step_by(997) {
                let p1 = a.power_at(t, SEED);
                let p2 = a.power_at(t, SEED);
                assert_eq!(p1, p2, "{} not deterministic at {t}", a.name());
                assert!(p1 >= 0.0, "{} negative power {p1}", a.name());
                assert!(p1 < 20_000.0, "{} implausible power {p1}", a.name());
            }
        }
    }

    #[test]
    fn fridge_duty_cycle_near_configured() {
        let f = Fridge { rated_watts: 120.0, duty: 0.4, period_secs: 3000, stream: 1 };
        let mut on = 0;
        let n = 50_000;
        for t in 0..n {
            if f.power_at(t, SEED) > 50.0 {
                on += 1;
            }
        }
        let frac = on as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.08, "duty fraction {frac}");
    }

    #[test]
    fn fridge_differs_across_seeds() {
        let f = Fridge { rated_watts: 120.0, duty: 0.4, period_secs: 3000, stream: 1 };
        let a: Vec<f64> = (0..5000).map(|t| f.power_at(t, 1)).collect();
        let b: Vec<f64> = (0..5000).map(|t| f.power_at(t, 2)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn lighting_dark_at_noon_bright_evening() {
        let l = Lighting {
            max_watts: 300.0,
            circuits: 6,
            profile: WeeklyProfile::working(),
            stream: 4,
        };
        // Average over many evenings/noons to smooth block jitter. Use a
        // mid-winter week (short days) so 19:00 is dark.
        let base = 10 * 86_400;
        let noon = mean_power(&l, base + 12 * 3600, base + 12 * 3600 + 600, 13);
        let evening = mean_power(&l, base + 19 * 3600, base + 19 * 3600 + 600, 13);
        assert!(evening > noon, "evening {evening} vs noon {noon}");
    }

    #[test]
    fn cooking_only_in_meal_windows() {
        let c = Cooking {
            rated_watts: 2000.0,
            enthusiasm: 1.0,
            profile: WeeklyProfile::working(),
            stream: 6,
        };
        for day in 0..30 {
            for t in [3 * 3600, 10 * 3600 + 1800, 15 * 3600, 22 * 3600] {
                assert_eq!(c.power_at(day * 86_400 + t, SEED), 0.0, "no cooking outside meals");
            }
        }
        // Over a month, dinner should happen often.
        let mut dinner_days = 0;
        for day in 0..30i64 {
            let active = (17 * 3600..21 * 3600)
                .step_by(60)
                .any(|s| c.power_at(day * 86_400 + s, SEED) > 100.0);
            if active {
                dinner_days += 1;
            }
        }
        assert!(dinner_days > 15, "dinner on most days: {dinner_days}/30");
    }

    #[test]
    fn water_heater_rate_scales_with_activity() {
        let w = WaterHeater {
            rated_watts: 3000.0,
            event_rate: 0.6,
            profile: WeeklyProfile::working(),
            stream: 5,
        };
        // Night (03:00) vs evening (19:00) mean power across 60 days.
        let mut night = 0.0;
        let mut evening = 0.0;
        for day in 0..60i64 {
            night += mean_power(&w, day * 86_400 + 3 * 3600, day * 86_400 + 4 * 3600, 60);
            evening += mean_power(&w, day * 86_400 + 19 * 3600, day * 86_400 + 20 * 3600, 60);
        }
        assert!(evening > night * 2.0, "evening {evening} vs night {night}");
    }

    #[test]
    fn laundry_more_on_weekends() {
        let l = Laundry {
            washer_watts: 400.0,
            washer_heat_watts: 1800.0,
            dryer_watts: 2500.0,
            weekday_prob: 0.25,
            stream: 7,
        };
        let mut weekday_runs = 0;
        let mut weekend_runs = 0;
        for day in 0..140i64 {
            let ran = (8 * 3600..21 * 3600)
                .step_by(300)
                .any(|s| l.power_at(day * 86_400 + s, SEED) > 200.0);
            if ran {
                if WeeklyProfile::is_weekend(day * 86_400) {
                    weekend_runs += 1;
                } else {
                    weekday_runs += 1;
                }
            }
        }
        // 100 weekdays at p=0.25 ≈ 25; 40 weekend days at p=0.5 ≈ 20.
        let weekday_rate = weekday_runs as f64 / 100.0;
        let weekend_rate = weekend_runs as f64 / 40.0;
        assert!(weekend_rate > weekday_rate, "{weekend_rate} vs {weekday_rate}");
    }

    #[test]
    fn hvac_seasonal() {
        let h = Hvac { heat_watts: 2000.0, cool_watts: 0.0, period_secs: 1200, stream: 9 };
        let jan = mean_power(&h, 15 * 86_400, 16 * 86_400, 113);
        let jul = mean_power(&h, 196 * 86_400, 197 * 86_400, 113);
        assert!(jan > 500.0, "winter heating runs hard: {jan}");
        assert!(jul < 100.0, "summer heating nearly off: {jul}");
    }

    #[test]
    fn ev_charger_sessions_have_bulk_and_taper() {
        let ev = EvCharger { rated_watts: 7200.0, daily_prob: 1.0, stream: 12 };
        // Find a session and verify the shape. Sessions may cross midnight,
        // so scan a window well past it and only break on gaps.
        let mut found = false;
        for day in 0..5i64 {
            let base = day * 86_400;
            let mut on: Vec<(i64, f64)> = Vec::new();
            for s in (17 * 3600..30 * 3600).step_by(60) {
                let w = ev.power_at(base + s, SEED);
                if w > 100.0 {
                    on.push((s, w));
                } else if !on.is_empty() {
                    break; // end of this day's contiguous session
                }
            }
            if on.len() > 60 {
                found = true;
                // Bulk phase near rated power.
                assert!(on[on.len() / 4].1 > 6000.0, "bulk phase: {:?}", on[on.len() / 4]);
                // Taper: the last reading is well below the bulk level.
                assert!(
                    on[on.len() - 1].1 < on[on.len() / 4].1 * 0.6,
                    "taper at end: {} vs {}",
                    on[on.len() - 1].1,
                    on[on.len() / 4].1
                );
            }
        }
        assert!(found, "daily_prob = 1 must charge");
    }

    #[test]
    fn ev_charger_respects_probability() {
        let ev = EvCharger { rated_watts: 7200.0, daily_prob: 0.0, stream: 12 };
        for t in (0..2 * 86_400).step_by(600) {
            assert_eq!(ev.power_at(t, SEED), 0.0);
        }
    }

    #[test]
    fn dishwasher_runs_in_evening_window() {
        let d = Dishwasher { heater_watts: 1800.0, daily_prob: 1.0, stream: 8 };
        for day in 0..10i64 {
            // Must be off in the morning.
            assert_eq!(d.power_at(day * 86_400 + 8 * 3600, SEED), 0.0);
            // Must run at some point between 19:00 and 23:59.
            let ran =
                (19 * 3600..86_400).step_by(60).any(|s| d.power_at(day * 86_400 + s, SEED) > 80.0);
            assert!(ran, "day {day}");
        }
    }
}
