//! Statistical validation of the synthetic substrate — the evidence behind
//! DESIGN.md's claim that the simulator preserves the four properties the
//! paper's experiments rely on. Each check is a public function so the
//! fidelity report can be regenerated (and unit tests pin the outcomes).

use sms_core::error::{Error, Result};
use sms_core::stats::LogNormalFit;
use sms_core::timeseries::TimeSeries;

/// Sample autocorrelation of a series' values at integer lag `k` (in
/// samples). Returns `None` for degenerate series.
pub fn autocorrelation(values: &[f64], lag: usize) -> Option<f64> {
    let n = values.len();
    if lag >= n || n < 2 {
        return None;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let var: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
    if var <= 0.0 {
        return None;
    }
    let cov: f64 = (0..n - lag).map(|i| (values[i] - mean) * (values[i + lag] - mean)).sum();
    Some(cov / var)
}

/// Daily-periodicity score: autocorrelation of the hourly profile at a lag
/// of 24 hours. Near 1 = strongly periodic days.
pub fn daily_periodicity(series: &TimeSeries) -> Result<f64> {
    let hourly = sms_core::vertical::aggregate_by_window(
        series,
        3600,
        sms_core::vertical::Aggregation::Mean,
        1,
    )?;
    let values = hourly.values();
    autocorrelation(&values, 24).ok_or(Error::EmptyInput("daily_periodicity: series too short"))
}

/// Fidelity report over one house's series.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityReport {
    /// Log-normal KS distance of the power-level marginal (paper Fig. 2).
    pub lognormal_ks: f64,
    /// Fitted `sigma` of `ln X` (spread of the marginal).
    pub lognormal_sigma: f64,
    /// Autocorrelation at a 24 h lag of the hourly profile.
    pub daily_periodicity: f64,
    /// Autocorrelation at a 1-hour lag of the hourly profile (short-range
    /// memory that lag-based forecasting exploits).
    pub hourly_autocorrelation: f64,
    /// Fraction of days meeting the paper's ≥ 20 h completeness filter.
    pub complete_day_fraction: f64,
    /// Fraction of values that repeat exactly (meter quantization mass) —
    /// what separates `median` from `distinctmedian`.
    pub repeated_value_fraction: f64,
}

/// Computes the fidelity report for one house.
pub fn fidelity_report(series: &TimeSeries, interval_secs: i64) -> Result<FidelityReport> {
    let values = series.values();
    if values.len() < 100 {
        return Err(Error::EmptyInput("fidelity_report: need at least 100 samples"));
    }
    let fit = LogNormalFit::fit(&values)?;
    let ks = fit.ks_statistic(&values)?;
    let hourly = sms_core::vertical::aggregate_by_window(
        series,
        3600,
        sms_core::vertical::Aggregation::Mean,
        1,
    )?;
    let hourly_values = hourly.values();
    let daily =
        autocorrelation(&hourly_values, 24).ok_or(Error::EmptyInput("fidelity_report: < 1 day"))?;
    let hourly_ac = autocorrelation(&hourly_values, 1)
        .ok_or(Error::EmptyInput("fidelity_report: < 2 hours"))?;

    let days = series.split_days();
    let complete =
        days.iter().filter(|(_, d)| d.coverage_seconds(interval_secs) >= 20 * 3600).count();
    let complete_day_fraction =
        if days.is_empty() { 0.0 } else { complete as f64 / days.len() as f64 };

    // Repeated-value mass via the distinct count.
    let mut sorted = values.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite meter values"));
    let mut distinct = 1usize;
    for w in sorted.windows(2) {
        if w[0] != w[1] {
            distinct += 1;
        }
    }
    let repeated_value_fraction = 1.0 - distinct as f64 / values.len() as f64;

    Ok(FidelityReport {
        lognormal_ks: ks,
        lognormal_sigma: fit.sigma,
        daily_periodicity: daily,
        hourly_autocorrelation: hourly_ac,
        complete_day_fraction,
        repeated_value_fraction,
    })
}

/// Renders a multi-house fidelity table.
pub fn render_fidelity(reports: &[(u32, FidelityReport)]) -> String {
    let mut s = format!(
        "{:<7} {:>8} {:>8} {:>10} {:>9} {:>10} {:>10}\n",
        "house", "KS(logN)", "sigma", "period(24h)", "AC(1h)", "days≥20h", "repeats"
    );
    for (id, r) in reports {
        s += &format!(
            "{:<7} {:>8.3} {:>8.2} {:>10.2} {:>9.2} {:>9.0}% {:>9.0}%\n",
            format!("h{id}"),
            r.lognormal_ks,
            r.lognormal_sigma,
            r.daily_periodicity,
            r.hourly_autocorrelation,
            r.complete_day_fraction * 100.0,
            r.repeated_value_fraction * 100.0,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::redd_like;

    #[test]
    fn autocorrelation_basics() {
        // Perfect period-2 alternation: AC(1) ≈ −1, AC(2) ≈ 1.
        let v: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert!(autocorrelation(&v, 1).unwrap() < -0.9);
        assert!(autocorrelation(&v, 2).unwrap() > 0.9);
        assert!(autocorrelation(&v, 200).is_none());
        assert!(autocorrelation(&[1.0, 1.0, 1.0], 1).is_none(), "constant series degenerate");
    }

    #[test]
    fn simulator_meets_fidelity_requirements() {
        // The four DESIGN.md properties, checked on houses 1 and 4.
        let ds = redd_like(42, 8, 60).generate().unwrap();
        for house in [1u32, 4] {
            let r = fidelity_report(ds.house(house).unwrap(), 60).unwrap();
            assert!(r.lognormal_ks < 0.25, "h{house}: roughly log-normal, KS {}", r.lognormal_ks);
            assert!(
                r.lognormal_sigma > 0.5,
                "h{house}: broad marginal, sigma {}",
                r.lognormal_sigma
            );
            assert!(
                r.daily_periodicity > 0.15,
                "h{house}: daily rhythm, AC24 {}",
                r.daily_periodicity
            );
            assert!(
                r.hourly_autocorrelation > 0.2,
                "h{house}: short-range memory, AC1 {}",
                r.hourly_autocorrelation
            );
            assert!(
                r.complete_day_fraction > 0.7,
                "h{house}: mostly complete days, {}",
                r.complete_day_fraction
            );
            assert!(
                r.repeated_value_fraction > 0.3,
                "h{house}: quantization mass, {}",
                r.repeated_value_fraction
            );
        }
        // House 5's uplink is broken: the completeness fraction must be low.
        let r5 = fidelity_report(ds.house(5).unwrap(), 60).unwrap();
        assert!(
            r5.complete_day_fraction < 0.4,
            "house 5 chronically gappy: {}",
            r5.complete_day_fraction
        );
    }

    #[test]
    fn render_produces_table() {
        let ds = redd_like(7, 4, 120).generate().unwrap();
        let reports: Vec<(u32, FidelityReport)> = ds
            .records()
            .iter()
            .map(|r| (r.house_id, fidelity_report(&r.series, 120).unwrap()))
            .collect();
        let txt = render_fidelity(&reports);
        assert!(txt.contains("h1"));
        assert!(txt.contains("h6"));
        assert!(txt.contains("KS(logN)"));
    }

    #[test]
    fn report_rejects_tiny_series() {
        let s = TimeSeries::from_regular(0, 1, &[1.0; 10]).unwrap();
        assert!(fidelity_report(&s, 1).is_err());
    }
}
