//! # meterdata — synthetic smart-meter data substrate
//!
//! The paper evaluates on the REDD dataset (6 houses, 1 Hz mains power,
//! 1–2 months, with gaps). REDD is not redistributable, so this crate stands
//! in with a **deterministic appliance-level simulator** that reproduces the
//! statistical properties the paper's experiments rely on:
//!
//! * approximately **log-normal** power-level marginals (paper Fig. 2) —
//!   heavy standby mass near zero plus episodic multi-kW events;
//! * **per-house distinctive statistics** (appliance stock, occupancy
//!   rhythm, consumption scale), the signal behind the paper's
//!   classification experiment;
//! * **daily/weekly periodicity** and autocorrelation, the signal behind
//!   the forecasting experiment;
//! * **missing-data gaps**, exercising the ≥ 20 h/day completeness filter —
//!   including one house (id 5) too gappy to forecast, as in the paper.
//!
//! Everything is a pure function of `(seed, timestamp)` — random access, no
//! sequential simulation state — so arbitrary sub-ranges generate in O(n).
//!
//! ```
//! use meterdata::generator::redd_like;
//!
//! // 6 REDD-like houses, 3 days at 10-second sampling.
//! let dataset = redd_like(42, 3, 10).generate().unwrap();
//! assert_eq!(dataset.house_count(), 6);
//! let complete = dataset.paper_complete_days(); // the ≥ 20 h filter
//! assert!(!complete.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod appliance;
pub mod dataset;
pub mod gaps;
pub mod generator;
pub mod house;
pub mod io;
pub mod profiles;
pub mod rng;
pub mod validation;

pub use dataset::{HouseDay, HouseRecord, MeterDataset};
pub use gaps::GapConfig;
pub use generator::{cer_like, redd_like, smart_star_like, DatasetSpec};
pub use house::{House, HouseConfig, Occupancy};
